"""Table 3 reproduction: generated March tests, their complexity and
generation time for the paper's six fault lists.

Paper (PIII 650 MHz, C + Fortran):

    SAF                       -> 4n   (MATS,    0.49 s)
    SAF+TF                    -> 5n   (MATS+,   0.53 s)
    SAF+TF+ADF                -> 6n   (MATS++,  0.61 s)
    SAF+TF+ADF+CFin           -> 6n   (March X, 0.69 s)
    SAF+TF+ADF+CFin+CFid      -> 10n  (March C-, 0.85 s)
    CFin                      -> 5n   (not found in literature, 0.57 s)

Each benchmark asserts the reproduced complexity and records our
generation time.  ``python benchmarks/bench_table3.py`` prints the
whole table without the benchmark machinery.
"""

import pytest

from repro.core import MarchTestGenerator
from repro.faults import FaultList

ROWS = [
    (("SAF",), 4, "MATS (4n)"),
    (("SAF", "TF"), 5, "MATS+ (5n)"),
    (("SAF", "TF", "ADF"), 6, "MATS++ (6n)"),
    (("SAF", "TF", "ADF", "CFIN"), 6, "MarchX (6n)"),
    (("SAF", "TF", "ADF", "CFIN", "CFID"), 10, "MarchC- (10n)"),
    (("CFIN",), 5, "Not Found"),
]


def _generate(names):
    return MarchTestGenerator().generate(FaultList.from_names(*names))


@pytest.mark.parametrize(
    "names, expected, known",
    ROWS,
    ids=["+".join(r[0]) for r in ROWS],
)
def test_table3_row(benchmark, names, expected, known):
    report = benchmark.pedantic(
        _generate, args=(names,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert report.complexity == expected, (
        f"{'+'.join(names)}: got {report.complexity_label},"
        f" paper reports {expected}n"
    )
    assert report.verified
    assert report.non_redundant


def main():
    print(f"{'Fault list':30s} {'ours':>5s} {'paper':>6s}"
          f" {'time':>8s}  known equivalent")
    for names, expected, known in ROWS:
        report = _generate(names)
        flag = "ok" if report.complexity == expected else "DIFF"
        print(
            f"{'+'.join(names):30s} {report.complexity_label:>5s}"
            f" {str(expected) + 'n':>6s} {report.elapsed_seconds:7.2f}s"
            f"  {report.equivalent_known or known} [{flag}]"
        )
        print(f"{'':30s} {report.test}")


if __name__ == "__main__":
    main()
