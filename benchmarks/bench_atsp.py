"""ATSP solver scaling (the paper's [12] substrate).

The paper reports that exact ATSP solvers handle the ~50-node regime
"with very low computation time"; its own TPGs stay below ~25 nodes.
These benches measure our exact solvers across sizes and check the
heuristic's quality against the optimum.
"""

import random

import pytest

from repro.atsp.branch_bound import branch_and_bound_cycle
from repro.atsp.held_karp import held_karp_cycle
from repro.atsp.heuristics import nearest_neighbor_with_or_opt
from repro.atsp.solver import solve_cycle


def random_matrix(n, seed=42, high=100):
    rng = random.Random(seed)
    return [
        [0 if r == c else rng.randint(1, high) for c in range(n)]
        for r in range(n)
    ]


@pytest.mark.parametrize("size", [8, 11, 13])
def test_held_karp_scaling(benchmark, size):
    cost = random_matrix(size)
    tour, total = benchmark(held_karp_cycle, cost)
    assert sorted(tour) == list(range(size))


@pytest.mark.parametrize("size", [10, 20, 30])
def test_branch_bound_scaling(benchmark, size):
    cost = random_matrix(size)
    tour, total = benchmark.pedantic(
        branch_and_bound_cycle, args=(cost,), rounds=1, iterations=1,
        warmup_rounds=0,
    )
    assert sorted(tour) == list(range(size))


def test_branch_bound_matches_held_karp(benchmark):
    cost = random_matrix(12, seed=7)
    _, expected = held_karp_cycle(cost)
    _, total = benchmark(branch_and_bound_cycle, cost)
    assert total == expected


@pytest.mark.parametrize("size", [30, 60])
def test_heuristic_scaling(benchmark, size):
    cost = random_matrix(size, seed=3)
    tour, total = benchmark(nearest_neighbor_with_or_opt, cost)
    assert sorted(tour) == list(range(size))


def test_heuristic_quality_gap(benchmark):
    """Tour-quality ablation: heuristic vs exact on 12 nodes."""
    gaps = []

    def measure():
        for seed in range(5):
            cost = random_matrix(12, seed=seed)
            _, optimum = held_karp_cycle(cost)
            _, heuristic = nearest_neighbor_with_or_opt(cost)
            gaps.append(heuristic / optimum if optimum else 1.0)
        return gaps

    result = benchmark.pedantic(
        measure, rounds=1, iterations=1, warmup_rounds=0
    )
    assert all(g >= 1.0 for g in result)
    assert sum(result) / len(result) < 1.6  # or-opt keeps the gap modest


def test_auto_facade_on_paper_scale(benchmark):
    # ~50 nodes: the regime the paper quotes for exact solvers.
    cost = random_matrix(48, seed=9)
    tour, total = benchmark.pedantic(
        solve_cycle, args=(cost,), kwargs={"method": "branch_bound"},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert sorted(tour) == list(range(48))
