"""Ablations of the design choices DESIGN.md calls out.

* the f.4.4 start-state constraint on vs off;
* the local optimizer (tighten) on vs off;
* exact ATSP vs the nearest-neighbour heuristic.
"""

import pytest

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.faults import FaultList

ROW2 = ("SAF", "TF")
ROW4 = ("SAF", "TF", "ADF", "CFIN")


def _generate(names, **kwargs):
    config = GeneratorConfig(**kwargs)
    return MarchTestGenerator(config).generate(FaultList.from_names(*names))


class TestStartConstraint:
    """f.4.4: restricting tours to uniform 00/11 starts."""

    def test_with_constraint(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW2,), kwargs={"prefer_uniform_start": True},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert report.complexity == 5

    def test_without_constraint(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW2,), kwargs={"prefer_uniform_start": False},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        # Correctness is preserved; optimality is recovered by the
        # later phases even without the paper's shortcut.
        assert report.verified
        assert report.complexity >= 5


class TestTighten:
    def test_with_tighten(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW4,), kwargs={"tighten": True},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert report.complexity == 6

    def test_without_tighten_or_polish(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW4,),
            kwargs={"tighten": False, "polish": False},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert report.verified
        # Raw pipeline output is never shorter than the optimized one.
        assert report.complexity >= 6


class TestAtspMethod:
    @pytest.mark.parametrize("method", ["held_karp", "branch_bound", "heuristic"])
    def test_method(self, benchmark, method):
        report = benchmark.pedantic(
            _generate, args=(ROW2,), kwargs={"atsp_method": method},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert report.verified
        assert report.complexity == 5


class TestWeightMode:
    """f.4.1 ablation: Hamming setup-cost weights vs uniform weights."""

    def test_hamming_weights(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW2,), kwargs={"weight_mode": "hamming"},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        assert report.complexity == 5

    def test_uniform_weights(self, benchmark):
        report = benchmark.pedantic(
            _generate, args=(ROW2,), kwargs={"weight_mode": "uniform"},
            rounds=1, iterations=1, warmup_rounds=0,
        )
        # Correctness survives; the tour loses the setup-cost signal,
        # so the raw GTS may be longer before optimization recovers it.
        assert report.verified
        assert report.complexity >= 5
