"""Extension benches: the paper's future-work directions, implemented.

* dual-port (multi-port) memories: weak-fault simulation and two-port
  March generation;
* word-oriented memories: background expansion and word-level fault
  simulation.

These have no paper-side numbers to match; the benches document the
cost of each capability and assert its correctness properties.
"""

from repro.faults.instances import CouplingIdempotentInstance
from repro.march.catalog import MARCH_C_MINUS
from repro.multiport import (
    MARCH_2PF,
    covers_all_weak_faults,
    weak_fault_cases,
)
from repro.multiport.generate import Search2PStats, generate_march_2p
from repro.word import data_backgrounds, detects_case as word_detects


def test_weak_fault_simulation(benchmark):
    ok, missed = benchmark(covers_all_weak_faults, MARCH_2PF, 4)
    assert ok, missed


def test_two_port_generation_reduced(benchmark):
    """Generation against the same-cell weak faults (fast subset)."""
    targets = [
        fc for fc in weak_fault_cases(3)
        if fc.name.startswith(("wRR", "wWL"))
    ]
    stats = Search2PStats()
    found = benchmark.pedantic(
        generate_march_2p,
        kwargs={
            "size": 3, "max_complexity": 4, "budget": 50000,
            "stats": stats, "cases": targets,
        },
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert found is not None
    assert found.complexity <= 4


def test_two_port_generation_full(benchmark):
    """Full weak-fault list: the generator reaches a 5n two-port test."""
    stats = Search2PStats()
    found = benchmark.pedantic(
        generate_march_2p,
        kwargs={"size": 3, "max_complexity": 5, "budget": 150000,
                "stats": stats},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert found is not None
    assert found.complexity == 5
    ok, missed = covers_all_weak_faults(found, 4)
    assert ok, missed


def test_word_level_simulation(benchmark):
    make = lambda: CouplingIdempotentInstance(1, 0, True, 1)
    detected = benchmark(
        word_detects, MARCH_C_MINUS, make, 3, 8
    )
    assert detected
    assert len(data_backgrounds(8)) == 4
