"""Figures 1-3: memory model construction and fault injection.

* Figure 1 -- the fault-free two-cell Mealy machine M0;
* Figure 2 -- the faulty machine M1 for the <up,0> coupling fault;
* Figure 3 -- the BFE decomposition of <up,0>.

These benches regenerate the structures and assert the figures' facts
(state counts, single-edge deviation, two BFEs).
"""

from repro.faults import CouplingIdempotentFault
from repro.faults.bfe import delta_bfe
from repro.memory.mealy import good_machine
from repro.memory.operations import write
from repro.memory.state import MemoryState
from repro.patterns.test_pattern import patterns_for_bfe


def test_figure1_m0_construction(benchmark):
    machine = benchmark(good_machine, ("i", "j"))
    concrete = [s for s in machine.states if s.is_concrete]
    assert len(concrete) == 4
    # 7 inputs per state (r_i, r_j, w0/w1 each cell, T).
    assert len(machine.inputs) == 7


def test_figure2_m1_single_deviation(benchmark):
    m0 = good_machine(("i", "j"))
    bfe = delta_bfe(
        MemoryState.parse("01"), write("i", 1), MemoryState.parse("-0"),
        "CFid<up,0> i->j",
    )
    m1 = benchmark(bfe.apply_to, m0, "M1")
    assert len(m1.deviations_from(m0)) == 1


def test_figure3_bfe_decomposition(benchmark):
    fault = CouplingIdempotentFault(primitives=("up",), values=(0,))

    def decompose():
        classes = fault.classes()
        return [tp for cls in classes for m in cls for tp in patterns_for_bfe(m)]

    patterns = benchmark(decompose)
    # Two BFEs (i aggressor / j aggressor), one TP each -- Figure 3 and
    # the TP1/TP2 of Section 3.
    assert {str(p) for p in patterns} == {"(01, w1i, r1j)", "(10, w1j, r1i)"}
