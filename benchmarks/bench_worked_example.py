"""Section 4's worked example, end to end.

Fault list {<up,1>, <up,0>}: the paper walks it from TPs through the
12-operation GTS and the rewrite phases to a non-redundant 8n March
test.  This bench regenerates the pipeline and asserts the 8n outcome.
"""

from repro.core import MarchTestGenerator
from repro.faults import CouplingIdempotentFault, FaultList


def test_worked_example_8n(benchmark):
    faults = FaultList(
        [CouplingIdempotentFault(primitives=("up",), values=(0, 1))]
    )

    report = benchmark.pedantic(
        MarchTestGenerator().generate, args=(faults,),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert report.complexity == 8  # the paper's 8n March test
    assert report.verified
    assert report.non_redundant
    assert report.gts.length == 12  # the paper's 12-operation GTS
