"""March linearity: run time scales linearly with memory size.

The paper's opening claim: "March Tests have proven to be faster,
simpler, regularly structured and linear in complexity."  This bench
executes March C- on growing memories (fault-free and with one injected
fault) and checks the operation count is exactly ``complexity * n``.
"""

import pytest

from repro.export import trace_length
from repro.faults.instances import StuckAtInstance
from repro.march.catalog import MARCH_C_MINUS
from repro.memory.array import MemoryArray
from repro.simulator.engine import run_march


@pytest.mark.parametrize("size", [64, 256, 1024, 4096])
def test_march_execution_scales_linearly(benchmark, size):
    def execute():
        memory = MemoryArray(size)
        return run_march(MARCH_C_MINUS.concrete_order_variants()[0], memory)

    run = benchmark(execute)
    assert not run.detected
    reads_per_cell = 5  # March C- has five verifying reads per cell
    assert len(run.reads) == reads_per_cell * size
    assert trace_length(MARCH_C_MINUS, size) == 10 * size


def test_faulty_run_large_memory(benchmark):
    size = 2048

    def execute():
        memory = MemoryArray(size, fault=StuckAtInstance(size // 2, 0))
        return run_march(MARCH_C_MINUS.concrete_order_variants()[0], memory)

    run = benchmark(execute)
    assert run.detected
    assert run.first_detection.address == size // 2
