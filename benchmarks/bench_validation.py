"""Section 6 validation instruments: fault simulation, coverage matrix
and the set-covering non-redundancy check.

The paper validates every generated test with an ad-hoc fault simulator
and checks non-redundancy via Set Covering over the Coverage Matrix;
these benches time both instruments on the Table 3 row-5 workload.
"""

from repro.faults import FaultList
from repro.march.catalog import MARCH_C, MARCH_C_MINUS
from repro.simulator.coverage import coverage_matrix, is_non_redundant
from repro.simulator.faultsim import simulate_fault_list


def row5_faults():
    return FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")


def test_fault_simulation_throughput(benchmark):
    faults = row5_faults()
    report = benchmark(simulate_fault_list, MARCH_C_MINUS, faults, 3)
    assert report.complete


def test_coverage_matrix_construction(benchmark):
    faults = row5_faults()
    cases = faults.instances(3)
    cm = benchmark.pedantic(
        coverage_matrix, args=(MARCH_C_MINUS, cases, 3),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert cm.covers_all
    assert cm.is_non_redundant()


def test_set_covering_flags_march_c_redundancy(benchmark):
    """March C's extra read is the canonical redundant block."""
    faults = row5_faults()
    cases = faults.instances(3)

    def analyze():
        cm = coverage_matrix(MARCH_C, cases, 3)
        return cm.covers_all, cm.is_non_redundant()

    covers, non_redundant = benchmark.pedantic(
        analyze, rounds=1, iterations=1, warmup_rounds=0
    )
    assert covers
    assert not non_redundant  # March C- removes exactly this redundancy


def test_demotion_necessity_check(benchmark):
    faults = row5_faults()
    cases = faults.instances(3)
    verdict = benchmark.pedantic(
        is_non_redundant, args=(MARCH_C_MINUS, cases, 3),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert verdict
