"""Section 2's contrast: pipeline vs bounded exhaustive search.

Earlier generators ([2][3][4]) enumerate a transition tree of candidate
March tests -- exhaustive and increasingly slow as the target length
grows.  The paper's pipeline avoids that search.  These benches measure
both strategies on the same fault lists; the pipeline must produce an
equally short test, and the exhaustive baseline's candidate counter
documents the search-space blow-up.
"""

import pytest

from repro.core import MarchTestGenerator
from repro.core.exhaustive import SearchStats, exhaustive_search
from repro.core.optimize import make_verifier
from repro.faults import FaultList


@pytest.mark.parametrize(
    "names, optimum",
    [(("SAF",), 4), (("SAF", "TF"), 5)],
    ids=["SAF", "SAF+TF"],
)
def test_pipeline(benchmark, names, optimum):
    faults = FaultList.from_names(*names)
    report = benchmark.pedantic(
        MarchTestGenerator().generate, args=(faults,),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert report.complexity == optimum


@pytest.mark.parametrize(
    "names, optimum",
    [(("SAF",), 4), (("SAF", "TF"), 5)],
    ids=["SAF", "SAF+TF"],
)
def test_exhaustive_baseline(benchmark, names, optimum):
    faults = FaultList.from_names(*names)
    verify = make_verifier(faults.instances(2), 2)
    stats = SearchStats()

    found = benchmark.pedantic(
        exhaustive_search, args=(verify,),
        kwargs={"max_complexity": optimum, "stats": stats},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert found is not None and found.complexity == optimum
    # The baseline tests orders of magnitude more candidates than the
    # pipeline explores selections.
    assert stats.candidates_tested > 10


def test_exhaustive_blowup_on_8n_target(benchmark):
    """The transition-tree pathology: deeper targets explode."""
    from repro.faults import CouplingIdempotentFault

    faults = FaultList(
        [CouplingIdempotentFault(primitives=("up",), values=(0, 1))]
    )
    verify = make_verifier(faults.instances(2), 2)
    stats = SearchStats()

    found = benchmark.pedantic(
        exhaustive_search, args=(verify,),
        kwargs={"max_complexity": 8, "stats": stats},
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert found is not None and found.complexity == 8
    assert stats.candidates_tested > 1000
