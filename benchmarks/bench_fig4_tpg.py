"""Figure 4: the Test Pattern Graph for {<up,1>, <up,0>}.

Rebuilds the 4-node weighted TPG, checks its structural facts (weights
from f.4.1, the two 0-weight edges, V! = 24 possible GTSs from f.4.2)
and times construction plus the ATSP solve over it.
"""

from repro.atsp.solver import solve_path
from repro.faults import CouplingIdempotentFault
from repro.patterns.test_pattern import patterns_for_bfe
from repro.patterns.tpg import TestPatternGraph


def build_figure4():
    fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))
    graph = TestPatternGraph()
    for cls in fault.classes():
        for member in cls.members:
            for tp in patterns_for_bfe(member):
                graph.add(tp, cls.name)
    return graph


def test_figure4_construction(benchmark):
    graph = benchmark(build_figure4)
    assert len(graph) == 4
    assert graph.gts_count() == 24  # f.4.2

    matrix = graph.weight_matrix()
    zero_edges = sum(
        1 for r in range(4) for c in range(4) if r != c and matrix[r][c] == 0
    )
    assert zero_edges == 2


def test_figure4_optimal_tour(benchmark):
    graph = build_figure4()
    matrix = graph.weight_matrix()
    starts = [graph.start_weight(k) for k in range(len(graph))]

    order, cost = benchmark(solve_path, matrix, starts)
    # Optimal GTS: 2 power-up writes + 2 bridging writes -> with the 8
    # pattern operations this is the paper's 12-operation GTS.
    assert cost == 4
    assert sorted(order) == [0, 1, 2, 3]
