"""Shared benchmark helpers."""

import pytest

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.faults import FaultList


def generate_once(*names, **config_kwargs):
    """Run the generator once for a named fault list."""
    config = GeneratorConfig(**config_kwargs)
    return MarchTestGenerator(config).generate(FaultList.from_names(*names))


@pytest.fixture
def bench_once(benchmark):
    """Benchmark a callable with a single measured round.

    Generation is seconds-scale; one round keeps the harness fast while
    still recording wall-clock, matching the paper's single CPU-time
    column.
    """

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                                  iterations=1, warmup_rounds=0)

    return run
