"""Section 5: the effect of BFE-equivalence-class enumeration.

The paper enumerates E = prod |Ci| TP selections and keeps the best
GTS.  This bench compares generation with the enumeration on (the
default) against the single greedy selection, on the CFin fault list
whose classes each hold two alternatives.
"""

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.core.selection import selection_space_size
from repro.faults import FaultList


def test_selection_space_formula():
    faults = FaultList.from_names("CFIN")
    assert selection_space_size(faults.classes()) == 2 ** 4  # E = prod |Ci|


def _generate(enumerate_classes: bool):
    config = GeneratorConfig(
        equivalence_enumeration=enumerate_classes,
    )
    return MarchTestGenerator(config).generate(FaultList.from_names("CFIN"))


def test_with_enumeration(benchmark):
    report = benchmark.pedantic(
        _generate, args=(True,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert report.verified
    assert report.complexity == 5
    assert report.selections_explored > 1


def test_without_enumeration(benchmark):
    report = benchmark.pedantic(
        _generate, args=(False,), rounds=1, iterations=1, warmup_rounds=0
    )
    assert report.verified
    assert report.selections_explored == 1
    # The greedy selection may or may not reach 5n before polishing;
    # with the full pipeline it must never beat the enumerated result.
    assert report.complexity >= 5
