"""Generation-time scaling with fault-list size.

The paper's Table 3 suggests generation time grows mildly with the
fault list (0.49 s -> 0.85 s).  This bench sweeps synthetic fault lists
of increasing class count (random user-defined pair faults through
:class:`GenericPairFault`) and records generation time; the library
must stay in the seconds regime across the sweep.
"""

import random

import pytest

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.faults.bfe import delta_bfe
from repro.faults.faultlist import BFEClass, FaultList
from repro.faults.generic import GenericPairFault
from repro.memory.operations import write
from repro.memory.state import MemoryState


def random_delta_bfe(rng: random.Random):
    state = MemoryState.parse(
        f"{rng.randint(0, 1)}{rng.randint(0, 1)}"
    )
    cell = rng.choice(("i", "j"))
    value = rng.randint(0, 1)
    op = write(cell, value)
    good = state.apply(op)
    faulty = good
    choices = [(True, False), (False, True), (True, True)]
    flip_i, flip_j = rng.choice(choices)
    if flip_i:
        faulty = faulty.set("i", 1 - int(good["i"]))
    if flip_j:
        faulty = faulty.set("j", 1 - int(good["j"]))
    return delta_bfe(state, op, faulty, label="synthetic")


def synthetic_fault_list(classes: int, seed: int = 0) -> FaultList:
    rng = random.Random(seed)
    seen = set()
    bfe_classes = []
    while len(bfe_classes) < classes:
        bfe = random_delta_bfe(rng)
        key = str(bfe)
        if key in seen:
            continue
        seen.add(key)
        bfe_classes.append(BFEClass(f"syn{len(bfe_classes)}", (bfe,)))
    return FaultList([GenericPairFault("SYN", bfe_classes)])


CONFIG = GeneratorConfig(selection_limit=16, polish=False,
                         check_redundancy=False)


@pytest.mark.parametrize("classes", [1, 2, 4, 8])
def test_generation_scaling(benchmark, classes):
    faults = synthetic_fault_list(classes, seed=classes)
    report = benchmark.pedantic(
        MarchTestGenerator(CONFIG).generate, args=(faults,),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    assert report.verified
    assert report.complexity >= 2


def test_tpg_growth_stays_small():
    """Even a 12-class synthetic list yields a compact TPG -- the node
    de-duplication the paper's Section 5 machinery relies on."""
    from repro.core.selection import enumerate_selections

    faults = synthetic_fault_list(12, seed=12)
    selection = next(enumerate_selections(faults.classes(), 1))
    assert len(selection.patterns) <= 12
