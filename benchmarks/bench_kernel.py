"""SimulationKernel vs. the legacy per-call simulation path.

Workload: the full ``detection_matrix`` of eight catalog March tests
against the paper's Table 3 fault list (SAF+TF+ADF+CFin+CFid), at the
historical size 3 and at size 8 where bit-parallel lane packing pays.

Compared paths:

* **legacy**       -- the pre-refactor loop: variants re-enumerated and
  a fresh ``MemoryArray`` allocated per (order-variant, fault-variant);
* **cold**         -- a fresh kernel (serial backend): pooled memories,
  per-test variant hoisting, batched evaluation;
* **warm**         -- the same kernel again: pure fault-dictionary
  lookups;
* **process**      -- a fresh kernel with the multiprocessing backend;
* **bitparallel**  -- a fresh kernel with the word-packed backend: all
  lane-packable fault instances advance in one machine word per march
  operation.

``python benchmarks/bench_kernel.py`` prints the comparison table and
writes the machine-readable ``BENCH_kernel.json`` next to the repo
root (per-backend wall-clock, speedup ratios, workload metadata) so
the performance trajectory is tracked across PRs instead of living in
print-only output.  The ``test_*_guard`` checks double as the CI smoke
benchmark: they fail when the warm-cache path stops being >= 3x faster
than legacy, when the bit-parallel cold path stops being >= 3x faster
than the serial cold path at size 8, or when the cold path regresses
past a generous wall-clock ceiling.
"""

import json
import pathlib
import platform
import sys
import time

from repro.faults import FaultList
from repro.kernel import SimulationKernel
from repro.march.catalog import (
    MARCH_A,
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS_PLUS,
    MSCAN,
)

# The frozen legacy baseline is shared with the equivalence suite so
# the speedup guard and the byte-identity properties can never compare
# against two diverging "legacy" definitions.
sys.path.insert(
    0,
    str(pathlib.Path(__file__).resolve().parent.parent / "tests" / "kernel"),
)
from legacy_reference import legacy_detection_matrix  # noqa: E402

TESTS = [
    MATS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
    MSCAN,
]
SIZE = 3
#: The bit-parallel acceptance workload: lane packing pays off once the
#: coupling-fault population grows quadratically with the memory size.
SIZE_LARGE = 8

#: Acceptance floor: warm-cache detection_matrix vs. the legacy path.
REQUIRED_WARM_SPEEDUP = 3.0
#: Acceptance floor: bit-parallel cold vs. serial cold at SIZE_LARGE
#: (the PR's target is >= 10x; 3x is the regression guard so slow
#: shared CI runners do not flake).
REQUIRED_BITPARALLEL_SPEEDUP = 3.0
#: CI wall-clock ceiling for one cold kernel matrix (seconds); the
#: measured value is ~0.1 s on a laptop, so 10 s only catches gross
#: regressions on slow shared runners.
COLD_WALL_CLOCK_CEILING = 10.0

#: Machine-readable benchmark record, tracked across PRs.
BENCH_JSON_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
)


def table3_faults():
    return FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")


# -- measured scenarios --------------------------------------------------------


def run_legacy(faults):
    return legacy_detection_matrix(TESTS, faults, SIZE)


def run_kernel_cold(faults, backend="serial", size=SIZE):
    return SimulationKernel(backend=backend).detection_matrix(
        TESTS, faults, size
    )


def make_warm_kernel(faults):
    kernel = SimulationKernel()
    kernel.detection_matrix(TESTS, faults, SIZE)
    return kernel


def run_kernel_warm(kernel, faults):
    return kernel.detection_matrix(TESTS, faults, SIZE)


# -- pytest-benchmark entry points --------------------------------------------


def test_legacy_path(bench_once):
    bench_once(run_legacy, table3_faults())


def test_kernel_cold_serial(bench_once):
    bench_once(run_kernel_cold, table3_faults())


def test_kernel_cold_process(bench_once):
    bench_once(run_kernel_cold, table3_faults(), backend="process")


def test_kernel_cold_bitparallel(bench_once):
    bench_once(run_kernel_cold, table3_faults(), backend="bitparallel")


def test_kernel_cold_bitparallel_large(bench_once):
    bench_once(
        run_kernel_cold, table3_faults(), backend="bitparallel",
        size=SIZE_LARGE,
    )


def test_kernel_warm(bench_once):
    faults = table3_faults()
    kernel = make_warm_kernel(faults)
    bench_once(run_kernel_warm, kernel, faults)


# -- CI smoke guards -----------------------------------------------------------


def _best_of(repeats, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_warm_cache_speedup_guard():
    """Acceptance criterion: warm kernel >= 3x faster than legacy."""
    faults = table3_faults()
    legacy_seconds, legacy_matrix = _best_of(3, run_legacy, faults)
    kernel = make_warm_kernel(faults)
    warm_seconds, warm_matrix = _best_of(3, run_kernel_warm, kernel, faults)
    assert warm_matrix == legacy_matrix
    speedup = legacy_seconds / warm_seconds
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm kernel only {speedup:.1f}x faster than legacy"
        f" ({warm_seconds * 1e3:.2f} ms vs {legacy_seconds * 1e3:.2f} ms)"
    )


def test_bitparallel_cold_speedup_guard():
    """Acceptance criterion: bit-parallel cold >= 3x serial cold at size 8.

    Verdicts must stay byte-identical; the speedup floor is the
    regression guard below the PR's measured ~15-20x.
    """
    faults = table3_faults()
    serial_seconds, serial_matrix = _best_of(
        1, run_kernel_cold, faults, size=SIZE_LARGE
    )
    packed_seconds, packed_matrix = _best_of(
        2, run_kernel_cold, faults, backend="bitparallel", size=SIZE_LARGE
    )
    assert packed_matrix == serial_matrix
    speedup = serial_seconds / packed_seconds
    assert speedup >= REQUIRED_BITPARALLEL_SPEEDUP, (
        f"bitparallel cold only {speedup:.1f}x faster than serial cold"
        f" at size {SIZE_LARGE} ({packed_seconds * 1e3:.2f} ms vs"
        f" {serial_seconds * 1e3:.2f} ms)"
    )


def test_cold_wall_clock_guard():
    """Wall-clock regression guard for the uncached kernel path."""
    seconds, _ = _best_of(2, run_kernel_cold, table3_faults())
    assert seconds < COLD_WALL_CLOCK_CEILING, (
        f"cold kernel detection_matrix took {seconds:.2f}s"
        f" (ceiling {COLD_WALL_CLOCK_CEILING}s)"
    )


# -- machine-readable record ---------------------------------------------------


def collect_benchmarks():
    """Measure every scenario once; return the BENCH_kernel payload."""
    faults = table3_faults()
    legacy_seconds, _ = _best_of(3, run_legacy, faults)
    cold_seconds, _ = _best_of(3, run_kernel_cold, faults)
    process_seconds, _ = _best_of(1, run_kernel_cold, faults, "process")
    packed_seconds, _ = _best_of(3, run_kernel_cold, faults, "bitparallel")
    kernel = make_warm_kernel(faults)
    warm_seconds, _ = _best_of(3, run_kernel_warm, kernel, faults)
    serial_large_seconds, _ = _best_of(
        1, run_kernel_cold, faults, size=SIZE_LARGE
    )
    packed_large_seconds, _ = _best_of(
        2, run_kernel_cold, faults, backend="bitparallel", size=SIZE_LARGE
    )
    return {
        "schema": 1,
        "benchmark": "bench_kernel",
        "generated_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "guards": {
            "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
            "required_bitparallel_cold_speedup": (
                REQUIRED_BITPARALLEL_SPEEDUP
            ),
            "cold_wall_clock_ceiling_seconds": COLD_WALL_CLOCK_CEILING,
        },
        "workloads": {
            "table3_size3": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "seconds": {
                    "legacy": legacy_seconds,
                    "cold_serial": cold_seconds,
                    "cold_process": process_seconds,
                    "cold_bitparallel": packed_seconds,
                    "warm_cache": warm_seconds,
                },
                "speedup_vs_legacy": {
                    "cold_serial": legacy_seconds / cold_seconds,
                    "cold_process": legacy_seconds / process_seconds,
                    "cold_bitparallel": legacy_seconds / packed_seconds,
                    "warm_cache": legacy_seconds / warm_seconds,
                },
            },
            "table3_size8": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE_LARGE)),
                "size": SIZE_LARGE,
                "seconds": {
                    "cold_serial": serial_large_seconds,
                    "cold_bitparallel": packed_large_seconds,
                },
                "speedup_vs_cold_serial": {
                    "cold_bitparallel": (
                        serial_large_seconds / packed_large_seconds
                    ),
                },
            },
        },
    }


def write_bench_json(payload, path=BENCH_JSON_PATH):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main():
    payload = collect_benchmarks()
    small = payload["workloads"]["table3_size3"]
    large = payload["workloads"]["table3_size8"]
    print(
        f"detection_matrix: {small['tests']} tests x"
        f" {small['fault_cases']} fault cases at size {small['size']}"
    )
    for label, key in [
        ("legacy per-call", "legacy"),
        ("kernel cold (serial)", "cold_serial"),
        ("kernel cold (process)", "cold_process"),
        ("kernel cold (bitparallel)", "cold_bitparallel"),
        ("kernel warm cache", "warm_cache"),
    ]:
        seconds = small["seconds"][key]
        speedup = small["speedup_vs_legacy"].get(key, 1.0) if key != "legacy" \
            else 1.0
        print(f"  {label:26s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    print(
        f"detection_matrix: {large['tests']} tests x"
        f" {large['fault_cases']} fault cases at size {large['size']}"
    )
    for label, key in [
        ("kernel cold (serial)", "cold_serial"),
        ("kernel cold (bitparallel)", "cold_bitparallel"),
    ]:
        seconds = large["seconds"][key]
        speedup = large["speedup_vs_cold_serial"].get(key, 1.0)
        print(f"  {label:26s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    path = write_bench_json(payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
