"""SimulationKernel vs. the legacy per-call simulation path.

Workload: the full ``detection_matrix`` of eight catalog March tests
against the paper's Table 3 fault list (SAF+TF+ADF+CFin+CFid), at the
historical size 3 and at size 8 where bit-parallel lane packing pays.

Compared paths:

* **legacy**       -- the pre-refactor loop: variants re-enumerated and
  a fresh ``MemoryArray`` allocated per (order-variant, fault-variant);
* **cold**         -- a fresh kernel (serial backend): pooled memories,
  per-test variant hoisting, batched evaluation;
* **warm**         -- the same kernel again: pure fault-dictionary
  lookups;
* **process**      -- a fresh kernel with the multiprocessing backend;
* **bitparallel**  -- a fresh kernel with the word-packed backend: all
  lane-packable fault instances advance in one machine word per march
  operation;
* **store warm start** -- two *separate processes* running the same
  workload against one persistent fault-dictionary store
  (``--store``): the first simulates and writes through, the second
  answers every verdict from disk without touching a backend;
* **service warm read** -- the same two-client warm start through a
  live verdict-service daemon (``repro serve``) over its Unix socket:
  no client opens SQLite, the second client answers every verdict
  from the service (``table3_size3_service`` in the JSON record);
* **service async warm read** -- the event-loop daemon measured
  against its own SQLite data path: the hot-LRU warm read vs the same
  daemon with the hot tier disabled (``--hot-lru-size 0``, which is
  the threaded daemon's warm-read throughput), plus one pipelined
  burst vs chunked blocking round trips
  (``table3_size3_service_async``).

``python benchmarks/bench_kernel.py`` prints the comparison table and
writes the machine-readable ``BENCH_kernel.json`` next to the repo
root (per-backend wall-clock, speedup ratios, workload metadata) so
the performance trajectory is tracked across PRs instead of living in
print-only output.  The ``test_*_guard`` checks double as the CI smoke
benchmark: they fail when the warm-cache path stops being >= 3x faster
than legacy, when the bit-parallel cold path stops being >= 3x faster
than the serial cold path at size 8, when the second cold-process
store run stops being >= 3x faster than the first, or when the cold
path regresses past a generous wall-clock ceiling.
"""

import json
import multiprocessing
import os
import pathlib
import platform
import queue as queue_module
import sys
import tempfile
import time

from repro.faults import FaultList
from repro.kernel import SimulationKernel
from repro.simulator.tilengine import numpy_available, numpy_version
from repro.store.campaign import CampaignSpec, normalized_manifest, \
    run_campaign
from repro.store.resilience import RetryPolicy
from repro.store.service import ServiceStore, VerdictService, _wire_key
from repro.store.store import decode_verdict
from repro.march.catalog import (
    MARCH_A,
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS_PLUS,
    MSCAN,
)

# The frozen legacy baseline is shared with the equivalence suite so
# the speedup guard and the byte-identity properties can never compare
# against two diverging "legacy" definitions.
sys.path.insert(
    0,
    str(pathlib.Path(__file__).resolve().parent.parent / "tests" / "kernel"),
)
from legacy_reference import legacy_detection_matrix  # noqa: E402

TESTS = [
    MATS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
    MSCAN,
]
SIZE = 3
#: The bit-parallel acceptance workload: lane packing pays off once the
#: coupling-fault population grows quadratically with the memory size.
SIZE_LARGE = 8

#: Acceptance floor: warm-cache detection_matrix vs. the legacy path.
REQUIRED_WARM_SPEEDUP = 3.0
#: Acceptance floor: second cold-process run of the Table 3 workload
#: with ``--store`` vs. the first (the PR's measured ratio is ~8-15x;
#: 3x is the regression guard so slow shared CI disks do not flake).
REQUIRED_STORE_WARM_SPEEDUP = 3.0
#: Acceptance floor: the event-loop daemon's hot-LRU warm read vs the
#: same daemon with the hot tier disabled (``--hot-lru-size 0``: every
#: read answered from SQLite, which is the threaded daemon's warm-read
#: data path).  1.0x is the contract -- the async rework must never be
#: slower than what it replaced -- and the measured ratio, recorded as
#: ``hot_lru_speedup``, is the trajectory number.
REQUIRED_HOT_LRU_SPEEDUP = 1.0
#: Acceptance floor: bit-parallel cold vs. serial cold at SIZE_LARGE
#: (the PR's target is >= 10x; 3x is the regression guard so slow
#: shared CI runners do not flake).
REQUIRED_BITPARALLEL_SPEEDUP = 3.0
#: Acceptance floor: lane-tiled (NumPy) cold vs. serial cold at
#: SIZE_LARGE.  Unlike the bignum guard this one is the PR's headline
#: number itself: the measured value is ~13-14x, and the vectorized
#: path's ratio is stable across runner speeds because numerator and
#: denominator scale with the same machine.
REQUIRED_TILED_SPEEDUP = 10.0
#: The scaling workloads: memory sizes the bignum engine handles but
#: only the tiled engine makes routinely cheap (quadratic coupling
#: population at 64; linear models at 256).
SIZE_SCALE = 64
SIZE_SCALE_LINEAR = 256
#: CI wall-clock ceiling for one cold kernel matrix (seconds); the
#: measured value is ~0.1 s on a laptop, so 10 s only catches gross
#: regressions on slow shared runners.
COLD_WALL_CLOCK_CEILING = 10.0

#: Acceptance ceiling of the telemetry layer: the instrumented serial
#: Table 3 matrix (live registry + tracer) must stay within 5% of the
#: uninstrumented run.  Both sides run on the same machine back to
#: back, so the ratio does not flake with runner speed; best-of-5
#: keeps scheduler noise out of the numerator.
TELEMETRY_OVERHEAD_CEILING = 1.05

#: Acceptance floor: ``repro campaign --jobs 4`` vs the sequential run
#: of the same spec.  Only meaningful with real cores to fan out to,
#: so the guard skips below FANOUT_MIN_CPUS (CI's ubuntu runners have
#: 4); the determinism half of the contract is checked regardless.
REQUIRED_FANOUT_SPEEDUP = 2.0
FANOUT_JOBS = 4
FANOUT_MIN_CPUS = 4

#: Machine-readable benchmark record, tracked across PRs.
BENCH_JSON_PATH = (
    pathlib.Path(__file__).resolve().parent.parent / "BENCH_kernel.json"
)


def table3_faults():
    return FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")


def scale_faults():
    """The size-64 workload: quadratic coupling population, no ADF --
    decoder pair enumeration at size 64 is a case-count explosion that
    measures plan *construction*, not the engines' per-op scaling."""
    return FaultList.from_names("SAF", "TF", "CFIN", "CFID")


def scale_linear_faults():
    """The size-256 workload: linear single-cell models only.

    Deliberately a *crossover* record, not a victory lap: with only
    ~1.5k lanes (25 tiles) the bignum engine's 25-word ints are cheap
    and NumPy's per-op dispatch dominates, so ``bitparallel`` wins this
    one.  Recording it keeps the backend-choice guidance in the README
    honest -- the tiled engine's advantage is lane *population*, not
    memory size per se."""
    return FaultList.from_names("SAF", "TF", "RDF")


# -- measured scenarios --------------------------------------------------------


def run_legacy(faults):
    return legacy_detection_matrix(TESTS, faults, SIZE)


def run_kernel_cold(faults, backend="serial", size=SIZE):
    return SimulationKernel(backend=backend).detection_matrix(
        TESTS, faults, size
    )


def measure_engine_scaling(size, faults, repeats=1):
    """Engine-level MarchC- verdict pass: bignum vs tiled, no kernel.

    Returns the workload record for BENCH_kernel.json, or ``None``
    without NumPy.  Engine-level on purpose: at these sizes the
    one-time lane-plan compilation (shared by both engines) dominates a
    single cold kernel run, and this record tracks the engines' per-op
    scaling, not plan construction.  No speedup guard is enforced --
    the numbers are trajectory data; ``guard_enforced`` says so
    explicitly, mirroring the campaign_fanout honesty fields.
    """
    if not numpy_available():
        return None
    from repro.simulator.bitengine import PackedSimulation
    from repro.simulator.tilengine import TiledSimulation

    cases = faults.instances(size)
    packed = PackedSimulation(cases, size)
    tiled = TiledSimulation(cases, size)
    bignum_seconds, bignum = _best_of(
        repeats, packed.worst_case_verdicts, MARCH_C_MINUS
    )
    tiled_seconds, tiled_verdicts = _best_of(
        repeats, tiled.worst_case_verdicts, MARCH_C_MINUS
    )
    assert tiled_verdicts == bignum, f"size-{size} verdicts diverged"
    return {
        "test": "MarchC-",
        "fault_cases": len(cases),
        "lanes": tiled.lanes,
        "tiles": tiled.tiles,
        "size": size,
        "seconds": {
            "bitparallel": bignum_seconds,
            "bitparallel_np": tiled_seconds,
        },
        "tiled_speedup_vs_bitparallel": bignum_seconds / tiled_seconds,
        "guard_enforced": False,
        "skipped_reason": (
            "informational scaling record: verdict identity is asserted,"
            " the ratio is trajectory data without a floor"
        ),
    }


def run_kernel_cold_instrumented(faults, size=SIZE):
    """The cold serial matrix with a live metrics registry + tracer."""
    from repro.telemetry import Telemetry

    return SimulationKernel(
        backend="serial", telemetry=Telemetry()
    ).detection_matrix(TESTS, faults, size)


def make_warm_kernel(faults):
    kernel = SimulationKernel()
    kernel.detection_matrix(TESTS, faults, SIZE)
    return kernel


def run_kernel_warm(kernel, faults):
    return kernel.detection_matrix(TESTS, faults, SIZE)


# -- cross-process store warm start --------------------------------------------
#
# The acceptance workload of the persistence subsystem: the Table 3
# matrix, serial backend, one process at a time against one shared
# ``--store`` file.  Each run happens in a forked child so its LRU and
# module state are genuinely cold -- exactly what a repeated CLI
# invocation sees; only the store file carries state across runs.


def _store_run_worker(store_path, channel):
    kernel = SimulationKernel(backend="serial", store=store_path)
    try:
        started = time.perf_counter()
        matrix = kernel.detection_matrix(TESTS, table3_faults(), SIZE)
        seconds = time.perf_counter() - started
    finally:
        kernel.close()
    channel.put((seconds, json.dumps(matrix, sort_keys=True)))


def measure_store_warm_start(store_path):
    """Run the workload twice in fresh processes; [(seconds, matrix)]."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        context = None
    runs = []
    for _ in range(2):
        if context is None:  # pragma: no cover - in-process approximation
            class _Inline:
                def put(self, item):
                    self.item = item

            channel = _Inline()
            _store_run_worker(store_path, channel)
            runs.append(channel.item)
            continue
        channel = context.Queue()
        process = context.Process(
            target=_store_run_worker, args=(store_path, channel)
        )
        process.start()
        try:
            # Bounded get: a child that dies before putting (store
            # error, OOM kill) must fail the benchmark, not hang it.
            result = channel.get(timeout=300)
        except queue_module.Empty:
            # A *stuck* child must be killed, or multiprocessing's
            # atexit join would hang the interpreter anyway.
            process.terminate()
            process.join(timeout=10)
            raise RuntimeError(
                "store benchmark child produced no result"
                f" (exitcode {process.exitcode})"
            ) from None
        process.join()
        if process.exitcode != 0:
            raise RuntimeError(
                f"store benchmark child exited {process.exitcode}"
            )
        runs.append(result)
    return runs


# -- campaign fan-out ----------------------------------------------------------
#
# The parallelism acceptance workload: the Table 3 sweep fanned out as
# one (test, backend, size) job per worker.  Serial backend at sizes
# where per-job work dwarfs pool startup, no store -- every job
# simulates its own cell, so jobs=1 vs jobs=N compares pure scheduling,
# not cache luck.


def fanout_spec():
    return CampaignSpec.from_dict({
        "name": "fanout-bench",
        "tests": [
            "MATS", "MATS++", "MarchX", "MarchY",
            "MarchC-", "MarchA", "MarchB", "MSCAN",
        ],
        "faults": ["SAF", "TF", "ADF", "CFIN", "CFID"],
        "sizes": [7, 8],
        "backends": ["serial"],
    })


def measure_campaign_fanout(jobs):
    """(seconds, normalized manifest) of one fan-out run."""
    started = time.perf_counter()
    manifest = run_campaign(fanout_spec(), jobs=jobs)
    seconds = time.perf_counter() - started
    assert manifest["totals"]["failed"] == 0, manifest["totals"]
    return seconds, normalized_manifest(manifest)


def fanout_guard_fields(cpus):
    """The honesty fields of the ``campaign_fanout`` bench record.

    Below FANOUT_MIN_CPUS the >= 2x wall-clock guard is *skipped*, so
    the recorded ratio (often sub-1x on a 1-CPU runner) is an
    unenforced measurement, not a regression.  The record must say so,
    or trajectory readers ingest it as one.
    """
    if cpus >= FANOUT_MIN_CPUS:
        return {"guard_enforced": True, "skipped_reason": None}
    return {
        "guard_enforced": False,
        "skipped_reason": (
            f"{cpus} CPU(s) < {FANOUT_MIN_CPUS} (FANOUT_MIN_CPUS): the"
            f" >= {REQUIRED_FANOUT_SPEEDUP}x wall-clock guard was not"
            " enforced; fanout_speedup is informational only"
        ),
    }


# -- verdict-service warm read -------------------------------------------------
#
# The acceptance workload of the service subsystem: the Table 3 matrix
# through a live verdict-service daemon over its Unix socket.  The
# first client simulates and writes through the socket; the second
# must answer every verdict from the service without touching a
# backend -- the cross-process --store warm start, minus any
# client-side SQLite open.


def measure_service_warm_read():
    """((first_s, second_s), matrices) through one verdict service."""
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        service = VerdictService(
            root / "service-store.sqlite", root / "verdict.sock"
        )
        service.start()
        try:
            runs = []
            for _ in range(2):
                kernel = SimulationKernel(
                    backend="serial", store=service.url
                )
                try:
                    started = time.perf_counter()
                    matrix = kernel.detection_matrix(
                        TESTS, table3_faults(), SIZE
                    )
                    seconds = time.perf_counter() - started
                finally:
                    kernel.close()
                runs.append(
                    (seconds, json.dumps(matrix, sort_keys=True))
                )
        finally:
            service.stop()
    return runs


def measure_service_retry_read():
    """Warm read through one injected disconnect+reconnect.

    Returns ``((warm_s, warm_matrix), (retry_s, retry_matrix),
    retries)``.  The retry client pre-connects (ping), the daemon is
    then stopped and a fresh one started on the same socket, and the
    timed warm read rides out the dead cached connection through the
    client's :class:`RetryPolicy` -- one transient failure, one
    backoff sleep, one reconnect.  The delta against the plain warm
    read is the whole cost of resilience on the happy path.
    """
    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        store_path = root / "service-store.sqlite"
        sock = root / "verdict.sock"
        service = VerdictService(store_path, sock)
        service.start()
        try:
            kernel = SimulationKernel(backend="serial", store=service.url)
            try:  # populate the store once
                kernel.detection_matrix(TESTS, table3_faults(), SIZE)
            finally:
                kernel.close()
            kernel = SimulationKernel(backend="serial", store=service.url)
            try:  # plain warm read: the baseline
                started = time.perf_counter()
                warm_matrix = kernel.detection_matrix(
                    TESTS, table3_faults(), SIZE
                )
                warm_seconds = time.perf_counter() - started
            finally:
                kernel.close()
            kernel = SimulationKernel(
                backend="serial",
                store=service.url,
                store_retry=RetryPolicy(
                    base_delay=0.01, jitter=0.0, seed=0
                ),
            )
            try:
                kernel.store.ping()  # cache a soon-to-be-dead socket
                service.stop()
                service = VerdictService(store_path, sock)
                service.start()
                started = time.perf_counter()
                retry_matrix = kernel.detection_matrix(
                    TESTS, table3_faults(), SIZE
                )
                retry_seconds = time.perf_counter() - started
                retries = kernel.store.retries
            finally:
                kernel.close()
        finally:
            service.stop()
    return (
        (warm_seconds, json.dumps(warm_matrix, sort_keys=True)),
        (retry_seconds, json.dumps(retry_matrix, sort_keys=True)),
        retries,
    )


def measure_service_async_read():
    """Warm Table 3 reads through the event-loop daemon, three ways.

    Returns ``(no_lru, hot_lru, pipeline)``:

    * ``no_lru`` -- ``(seconds, matrix_json)`` with the hot tier
      disabled (``hot_lru_size=0``): every read answered from SQLite,
      which is the threaded daemon's warm-read data path and therefore
      the throughput the async rework must not regress;
    * ``hot_lru`` -- the same warm read with the default hot LRU and
      the working set faulted in: every read a dictionary hit inside
      the daemon, SQLite untouched;
    * ``pipeline`` -- ``(round_trips_s, pipelined_s, frames)`` for the
      same verdict population fetched as chunked blocking round trips
      vs one pipelined burst of the identical ``get_many`` frames.
    """
    faults = table3_faults()

    def warm_read(service):
        kernel = SimulationKernel(backend="serial", store=service.url)
        try:
            return kernel.detection_matrix(TESTS, faults, SIZE)
        finally:
            kernel.close()

    with tempfile.TemporaryDirectory() as scratch:
        root = pathlib.Path(scratch)
        store_path = root / "service-store.sqlite"
        sock = root / "verdict.sock"
        service = VerdictService(store_path, sock, hot_lru_size=0)
        service.start()
        try:
            warm_read(service)  # populate: simulate once, write through
            no_lru_seconds, no_lru_matrix = _best_of(3, warm_read, service)
        finally:
            service.stop()
        service = VerdictService(store_path, sock)
        service.start()
        try:
            warm_read(service)  # fault the working set into the hot tier
            hot_seconds, hot_matrix = _best_of(3, warm_read, service)
            pipeline_record = measure_pipelined_reads(service, faults)
        finally:
            service.stop()
    return (
        (no_lru_seconds, json.dumps(no_lru_matrix, sort_keys=True)),
        (hot_seconds, json.dumps(hot_matrix, sort_keys=True)),
        pipeline_record,
    )


def measure_pipelined_reads(service, faults, chunk=16):
    """Chunked blocking round trips vs one pipelined burst.

    The key population is recovered from an in-memory kernel run of
    the same workload (byte-identical to the served verdicts by the
    service guards), then fetched twice through one client: a
    ``get_many`` per chunk waiting each round trip out, and the
    identical frames down :meth:`ServiceStore.pipeline` back-to-back.
    Returns ``(round_trips_s, pipelined_s, frames)`` after asserting
    both reads returned the same verdicts.
    """
    memory = SimulationKernel()
    memory.detection_matrix(TESTS, faults, SIZE)
    keys = sorted(memory.cache.snapshot(), key=_wire_key)
    chunks = [keys[i:i + chunk] for i in range(0, len(keys), chunk)]
    frames = [
        {"op": "get_many", "keys": [_wire_key(key) for key in batch]}
        for batch in chunks
    ]

    def round_trips(client):
        found = {}
        for batch in chunks:
            found.update(client.get_many(batch))
        return found

    def pipelined(client):
        found = {}
        for response in client.pipeline(frames):
            assert response.get("ok"), f"pipelined read refused: {response}"
            for row in response.get("found", ()):
                found[tuple(row[:4])] = decode_verdict(row[4])
        return found

    client = ServiceStore(service.url)
    try:
        round_trip_seconds, sequential = _best_of(3, round_trips, client)
        pipelined_seconds, piped = _best_of(3, pipelined, client)
    finally:
        client.close()
    assert len(sequential) == len(keys), "round-trip read lost verdicts"
    assert piped == {
        tuple(_wire_key(key)): value for key, value in sequential.items()
    }, "pipelined read diverged from blocking round trips"
    return round_trip_seconds, pipelined_seconds, len(frames)


# -- pytest-benchmark entry points --------------------------------------------


def test_legacy_path(bench_once):
    bench_once(run_legacy, table3_faults())


def test_kernel_cold_serial(bench_once):
    bench_once(run_kernel_cold, table3_faults())


def test_kernel_cold_process(bench_once):
    bench_once(run_kernel_cold, table3_faults(), backend="process")


def test_kernel_cold_bitparallel(bench_once):
    bench_once(run_kernel_cold, table3_faults(), backend="bitparallel")


def test_kernel_cold_bitparallel_large(bench_once):
    bench_once(
        run_kernel_cold, table3_faults(), backend="bitparallel",
        size=SIZE_LARGE,
    )


def test_kernel_cold_bitparallel_np_large(bench_once):
    import pytest

    if not numpy_available():
        pytest.skip("NumPy not installed (the [fast] extra)")
    bench_once(
        run_kernel_cold, table3_faults(), backend="bitparallel-np",
        size=SIZE_LARGE,
    )


def test_kernel_warm(bench_once):
    faults = table3_faults()
    kernel = make_warm_kernel(faults)
    bench_once(run_kernel_warm, kernel, faults)


# -- CI smoke guards -----------------------------------------------------------


def _best_of(repeats, fn, *args, **kwargs):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_warm_cache_speedup_guard():
    """Acceptance criterion: warm kernel >= 3x faster than legacy."""
    faults = table3_faults()
    legacy_seconds, legacy_matrix = _best_of(3, run_legacy, faults)
    kernel = make_warm_kernel(faults)
    warm_seconds, warm_matrix = _best_of(3, run_kernel_warm, kernel, faults)
    assert warm_matrix == legacy_matrix
    speedup = legacy_seconds / warm_seconds
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm kernel only {speedup:.1f}x faster than legacy"
        f" ({warm_seconds * 1e3:.2f} ms vs {legacy_seconds * 1e3:.2f} ms)"
    )


def test_bitparallel_cold_speedup_guard():
    """Acceptance criterion: bit-parallel cold >= 3x serial cold at size 8.

    Verdicts must stay byte-identical; the speedup floor is the
    regression guard below the PR's measured ~15-20x.
    """
    faults = table3_faults()
    serial_seconds, serial_matrix = _best_of(
        1, run_kernel_cold, faults, size=SIZE_LARGE
    )
    packed_seconds, packed_matrix = _best_of(
        2, run_kernel_cold, faults, backend="bitparallel", size=SIZE_LARGE
    )
    assert packed_matrix == serial_matrix
    speedup = serial_seconds / packed_seconds
    assert speedup >= REQUIRED_BITPARALLEL_SPEEDUP, (
        f"bitparallel cold only {speedup:.1f}x faster than serial cold"
        f" at size {SIZE_LARGE} ({packed_seconds * 1e3:.2f} ms vs"
        f" {serial_seconds * 1e3:.2f} ms)"
    )


def test_tiled_cold_speedup_guard():
    """Acceptance criterion of the lane-tiled backend: cold
    ``bitparallel-np`` >= 10x serial cold at size 8, byte-identical
    verdicts.  Unlike the other guards this floor *is* the PR target:
    both sides of the ratio run on the same machine, so it does not
    flake with runner speed."""
    import pytest

    if not numpy_available():
        pytest.skip("NumPy not installed (the [fast] extra)")
    faults = table3_faults()
    serial_seconds, serial_matrix = _best_of(
        1, run_kernel_cold, faults, size=SIZE_LARGE
    )
    tiled_seconds, tiled_matrix = _best_of(
        3, run_kernel_cold, faults, backend="bitparallel-np",
        size=SIZE_LARGE,
    )
    assert tiled_matrix == serial_matrix
    speedup = serial_seconds / tiled_seconds
    assert speedup >= REQUIRED_TILED_SPEEDUP, (
        f"bitparallel-np cold only {speedup:.1f}x faster than serial cold"
        f" at size {SIZE_LARGE} ({tiled_seconds * 1e3:.2f} ms vs"
        f" {serial_seconds * 1e3:.2f} ms)"
    )


def test_scaling_records_have_identical_verdicts():
    """The size-64/size-256 records assert engine agreement internally;
    run them (small repeats) so CI exercises the identity even though
    no speedup floor applies."""
    import pytest

    if not numpy_available():
        pytest.skip("NumPy not installed (the [fast] extra)")
    record = measure_engine_scaling(SIZE_SCALE, scale_faults())
    assert record["lanes"] > 10_000  # genuinely out of bignum comfort
    linear = measure_engine_scaling(
        SIZE_SCALE_LINEAR, scale_linear_faults()
    )
    assert linear["tiles"] >= 2


def test_store_warm_start_speedup_guard():
    """Acceptance criterion of the persistence subsystem: the second
    cold-process run of the Table 3 workload with ``--store`` is >= 3x
    faster than the first, with byte-identical verdicts."""
    with tempfile.TemporaryDirectory() as scratch:
        store_path = str(pathlib.Path(scratch) / "bench-store.sqlite")
        (first_seconds, first_matrix), (second_seconds, second_matrix) = (
            measure_store_warm_start(store_path)
        )
    assert first_matrix == second_matrix, "store-served verdicts diverged"
    in_memory = json.dumps(
        SimulationKernel().detection_matrix(TESTS, table3_faults(), SIZE),
        sort_keys=True,
    )
    assert second_matrix == in_memory, "store diverged from in-memory"
    speedup = first_seconds / second_seconds
    assert speedup >= REQUIRED_STORE_WARM_SPEEDUP, (
        f"store-backed second process only {speedup:.1f}x faster than the"
        f" first ({second_seconds * 1e3:.2f} ms vs"
        f" {first_seconds * 1e3:.2f} ms)"
    )


def test_campaign_fanout_deterministic_and_fast():
    """Acceptance criterion of the fan-out subsystem: ``--jobs 4``
    produces the same normalized manifest as the sequential run, and
    (given real cores) is >= 2x faster wall-clock."""
    import pytest

    sequential_seconds, sequential_manifest = measure_campaign_fanout(1)
    fanned_seconds, fanned_manifest = measure_campaign_fanout(FANOUT_JOBS)
    assert json.dumps(fanned_manifest, sort_keys=True) == json.dumps(
        sequential_manifest, sort_keys=True
    ), "fan-out changed the campaign's content, not just its wall-clock"
    cpus = os.cpu_count() or 1
    if cpus < FANOUT_MIN_CPUS:
        pytest.skip(
            f"{cpus} CPU(s): no cores to fan out to"
            " (determinism half of the contract verified above)"
        )
    speedup = sequential_seconds / fanned_seconds
    assert speedup >= REQUIRED_FANOUT_SPEEDUP, (
        f"campaign --jobs {FANOUT_JOBS} only {speedup:.1f}x faster than"
        f" sequential ({fanned_seconds * 1e3:.0f} ms vs"
        f" {sequential_seconds * 1e3:.0f} ms)"
    )


def test_service_warm_read_guard():
    """Acceptance criterion of the verdict service: socket-served
    verdicts are byte-identical to in-memory simulation, and the two
    clients of one daemon agree with each other."""
    (first_seconds, first_matrix), (second_seconds, second_matrix) = (
        measure_service_warm_read()
    )
    assert first_matrix == second_matrix, "service-served verdicts diverged"
    in_memory = json.dumps(
        SimulationKernel().detection_matrix(TESTS, table3_faults(), SIZE),
        sort_keys=True,
    )
    assert second_matrix == in_memory, "service diverged from in-memory"


def test_service_retry_read_guard():
    """A mid-read daemon restart must cost a reconnect, never a
    verdict: the retried matrix is byte-identical to the plain warm
    read and at least one retry actually happened."""
    (_, warm_matrix), (_, retry_matrix), retries = (
        measure_service_retry_read()
    )
    assert retries >= 1, (
        "the daemon restart never forced a retry; the measurement"
        " exercised nothing"
    )
    assert retry_matrix == warm_matrix, (
        "riding out a reconnect changed the verdicts"
    )


def test_service_async_read_guard():
    """Acceptance criterion of the event-loop daemon: with the hot LRU
    on, the warm Table 3 read is at least as fast as the same daemon
    answering from SQLite (the threaded daemon's warm-read data path),
    and byte-identical to in-memory simulation either way."""
    (no_lru_seconds, no_lru_matrix), (hot_seconds, hot_matrix), piped = (
        measure_service_async_read()
    )
    assert hot_matrix == no_lru_matrix, "hot-LRU verdicts diverged"
    in_memory = json.dumps(
        SimulationKernel().detection_matrix(TESTS, table3_faults(), SIZE),
        sort_keys=True,
    )
    assert hot_matrix == in_memory, "service diverged from in-memory"
    speedup = no_lru_seconds / hot_seconds
    assert speedup >= REQUIRED_HOT_LRU_SPEEDUP, (
        f"hot-LRU warm read only {speedup:.2f}x the SQLite data path"
        f" ({hot_seconds * 1e3:.2f} ms vs {no_lru_seconds * 1e3:.2f} ms)"
    )
    round_trip_seconds, pipelined_seconds, frames = piped
    assert frames >= 2, "pipelining measured on a single frame"
    assert pipelined_seconds > 0 and round_trip_seconds > 0


def test_fanout_record_marks_unenforced_guard():
    """The bench record must flag a skipped fan-out guard: a sub-1x
    ratio measured on a 1-CPU runner is a skipped check, not a
    regression, and trajectory readers need the marker to tell them
    apart."""
    enforced = fanout_guard_fields(FANOUT_MIN_CPUS)
    assert enforced == {"guard_enforced": True, "skipped_reason": None}
    skipped = fanout_guard_fields(FANOUT_MIN_CPUS - 1)
    assert skipped["guard_enforced"] is False
    assert "not" in skipped["skipped_reason"]


def test_telemetry_overhead_guard():
    """Acceptance criterion of the telemetry layer: instrumenting the
    serial Table 3 matrix costs at most 5% wall-clock, and the
    verdicts stay byte-identical."""
    faults = table3_faults()
    plain_seconds, plain_matrix = _best_of(
        5, run_kernel_cold, faults
    )
    instrumented_seconds, instrumented_matrix = _best_of(
        5, run_kernel_cold_instrumented, faults
    )
    assert instrumented_matrix == plain_matrix, (
        "telemetry changed the verdicts"
    )
    overhead = instrumented_seconds / plain_seconds
    assert overhead <= TELEMETRY_OVERHEAD_CEILING, (
        f"instrumented serial cold run is {overhead:.3f}x the"
        f" uninstrumented one ({instrumented_seconds * 1e3:.2f} ms vs"
        f" {plain_seconds * 1e3:.2f} ms; ceiling"
        f" {TELEMETRY_OVERHEAD_CEILING}x)"
    )


def test_cold_wall_clock_guard():
    """Wall-clock regression guard for the uncached kernel path."""
    seconds, _ = _best_of(2, run_kernel_cold, table3_faults())
    assert seconds < COLD_WALL_CLOCK_CEILING, (
        f"cold kernel detection_matrix took {seconds:.2f}s"
        f" (ceiling {COLD_WALL_CLOCK_CEILING}s)"
    )


# -- machine-readable record ---------------------------------------------------


def collect_benchmarks():
    """Measure every scenario once; return the BENCH_kernel payload."""
    faults = table3_faults()
    legacy_seconds, _ = _best_of(3, run_legacy, faults)
    cold_seconds, _ = _best_of(3, run_kernel_cold, faults)
    process_seconds, _ = _best_of(1, run_kernel_cold, faults, "process")
    packed_seconds, _ = _best_of(3, run_kernel_cold, faults, "bitparallel")
    kernel = make_warm_kernel(faults)
    warm_seconds, _ = _best_of(3, run_kernel_warm, kernel, faults)
    instrumented_seconds, _ = _best_of(
        3, run_kernel_cold_instrumented, faults
    )
    serial_large_seconds, _ = _best_of(
        1, run_kernel_cold, faults, size=SIZE_LARGE
    )
    packed_large_seconds, _ = _best_of(
        2, run_kernel_cold, faults, backend="bitparallel", size=SIZE_LARGE
    )
    if numpy_available():
        tiled_large_seconds, _ = _best_of(
            3, run_kernel_cold, faults, backend="bitparallel-np",
            size=SIZE_LARGE,
        )
    else:  # degraded environment: record the absence, not a fake number
        tiled_large_seconds = None
    size64_record = measure_engine_scaling(SIZE_SCALE, scale_faults())
    size256_record = measure_engine_scaling(
        SIZE_SCALE_LINEAR, scale_linear_faults()
    )
    if size256_record is not None:
        size256_record["skipped_reason"] = (
            "informational crossover record: at ~1.5k lanes the bignum"
            " engine's small ints beat NumPy's per-op dispatch; the tiled"
            " engine pays off with lane population, not memory size"
        )
    with tempfile.TemporaryDirectory() as scratch:
        store_runs = measure_store_warm_start(
            str(pathlib.Path(scratch) / "bench-store.sqlite")
        )
    store_first_seconds = store_runs[0][0]
    store_second_seconds = store_runs[1][0]
    service_runs = measure_service_warm_read()
    service_first_seconds = service_runs[0][0]
    service_second_seconds = service_runs[1][0]
    (retry_warm_seconds, _), (retry_read_seconds, _), retry_count = (
        measure_service_retry_read()
    )
    (
        (async_no_lru_seconds, _),
        (async_hot_seconds, _),
        (async_round_trip_seconds, async_pipelined_seconds, async_frames),
    ) = measure_service_async_read()
    fanout_sequential_seconds, _ = measure_campaign_fanout(1)
    fanout_parallel_seconds, _ = measure_campaign_fanout(FANOUT_JOBS)
    cpus = os.cpu_count() or 1
    payload = {
        "schema": 1,
        "benchmark": "bench_kernel",
        # repro-lint: disable=injectable-clock -- benchmark report stamp
        "generated_unix": round(time.time(), 3),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "numpy": numpy_version(),
        "guards": {
            "required_warm_speedup": REQUIRED_WARM_SPEEDUP,
            "required_bitparallel_cold_speedup": (
                REQUIRED_BITPARALLEL_SPEEDUP
            ),
            "required_tiled_cold_speedup": REQUIRED_TILED_SPEEDUP,
            "required_store_warm_speedup": REQUIRED_STORE_WARM_SPEEDUP,
            "required_hot_lru_speedup": REQUIRED_HOT_LRU_SPEEDUP,
            "required_campaign_fanout_speedup": REQUIRED_FANOUT_SPEEDUP,
            "campaign_fanout_min_cpus": FANOUT_MIN_CPUS,
            "cold_wall_clock_ceiling_seconds": COLD_WALL_CLOCK_CEILING,
            "telemetry_overhead_ceiling": TELEMETRY_OVERHEAD_CEILING,
        },
        "workloads": {
            "table3_size3": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "seconds": {
                    "legacy": legacy_seconds,
                    "cold_serial": cold_seconds,
                    "cold_process": process_seconds,
                    "cold_bitparallel": packed_seconds,
                    "warm_cache": warm_seconds,
                },
                "speedup_vs_legacy": {
                    "cold_serial": legacy_seconds / cold_seconds,
                    "cold_process": legacy_seconds / process_seconds,
                    "cold_bitparallel": legacy_seconds / packed_seconds,
                    "warm_cache": legacy_seconds / warm_seconds,
                },
            },
            "table3_size3_telemetry": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "backend": "serial",
                "seconds": {
                    "cold_serial": cold_seconds,
                    "cold_serial_instrumented": instrumented_seconds,
                },
                "telemetry_overhead_ratio": (
                    instrumented_seconds / cold_seconds
                ),
                "guard_enforced": True,
            },
            "table3_size8": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE_LARGE)),
                "size": SIZE_LARGE,
                "seconds": {
                    "cold_serial": serial_large_seconds,
                    "cold_bitparallel": packed_large_seconds,
                },
                "speedup_vs_cold_serial": {
                    "cold_bitparallel": (
                        serial_large_seconds / packed_large_seconds
                    ),
                },
            },
            "table3_size3_store": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "backend": "serial",
                "seconds": {
                    "first_cold_process": store_first_seconds,
                    "second_cold_process": store_second_seconds,
                },
                "cross_process_warm_speedup": (
                    store_first_seconds / store_second_seconds
                ),
            },
            "table3_size3_service": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "backend": "serial",
                "transport": "unix-socket",
                "seconds": {
                    "first_cold_client": service_first_seconds,
                    "second_warm_client": service_second_seconds,
                },
                "service_warm_speedup": (
                    service_first_seconds / service_second_seconds
                ),
            },
            "table3_size3_service_retry": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "backend": "serial",
                "transport": "unix-socket",
                "retries": retry_count,
                "seconds": {
                    "warm_client": retry_warm_seconds,
                    "warm_client_through_reconnect": retry_read_seconds,
                },
                "reconnect_overhead_ratio": (
                    retry_read_seconds / retry_warm_seconds
                ),
            },
            "table3_size3_service_async": {
                "tests": len(TESTS),
                "fault_cases": len(faults.instances(SIZE)),
                "size": SIZE,
                "backend": "serial",
                "transport": "unix-socket",
                "daemon": "event-loop",
                "pipeline_frames": async_frames,
                "seconds": {
                    "warm_read_sqlite_path": async_no_lru_seconds,
                    "warm_read_hot_lru": async_hot_seconds,
                    "chunked_round_trips": async_round_trip_seconds,
                    "pipelined_burst": async_pipelined_seconds,
                },
                "hot_lru_speedup": (
                    async_no_lru_seconds / async_hot_seconds
                ),
                "pipelining_speedup": (
                    async_round_trip_seconds / async_pipelined_seconds
                ),
                "guard_enforced": True,
            },
            "campaign_fanout": {
                "jobs": len(fanout_spec().jobs()),
                "workers": FANOUT_JOBS,
                "cpus": cpus,
                "backend": "serial",
                "sizes": [7, 8],
                "seconds": {
                    "sequential": fanout_sequential_seconds,
                    "parallel": fanout_parallel_seconds,
                },
                "fanout_speedup": (
                    fanout_sequential_seconds / fanout_parallel_seconds
                ),
                **fanout_guard_fields(cpus),
            },
        },
    }
    workloads = payload["workloads"]
    if tiled_large_seconds is not None:
        workloads["table3_size8_tiled"] = {
            "tests": len(TESTS),
            "fault_cases": len(faults.instances(SIZE_LARGE)),
            "size": SIZE_LARGE,
            "seconds": {
                "cold_serial": serial_large_seconds,
                "cold_bitparallel": packed_large_seconds,
                "cold_bitparallel_np": tiled_large_seconds,
            },
            "speedup_vs_cold_serial": {
                "cold_bitparallel": (
                    serial_large_seconds / packed_large_seconds
                ),
                "cold_bitparallel_np": (
                    serial_large_seconds / tiled_large_seconds
                ),
            },
            "guard_enforced": True,
        }
    else:
        workloads["table3_size8_tiled"] = {
            "guard_enforced": False,
            "skipped_reason": (
                "NumPy not installed (the [fast] extra): the"
                " bitparallel-np backend degraded, nothing to measure"
            ),
        }
    if size64_record is not None:
        workloads["size64_tiled"] = size64_record
    if size256_record is not None:
        workloads["size256_tiled_linear"] = size256_record
    return payload


def write_bench_json(payload, path=BENCH_JSON_PATH):
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def main():
    payload = collect_benchmarks()
    small = payload["workloads"]["table3_size3"]
    large = payload["workloads"]["table3_size8"]
    print(
        f"detection_matrix: {small['tests']} tests x"
        f" {small['fault_cases']} fault cases at size {small['size']}"
    )
    for label, key in [
        ("legacy per-call", "legacy"),
        ("kernel cold (serial)", "cold_serial"),
        ("kernel cold (process)", "cold_process"),
        ("kernel cold (bitparallel)", "cold_bitparallel"),
        ("kernel warm cache", "warm_cache"),
    ]:
        seconds = small["seconds"][key]
        speedup = small["speedup_vs_legacy"].get(key, 1.0) if key != "legacy" \
            else 1.0
        print(f"  {label:26s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    print(
        f"detection_matrix: {large['tests']} tests x"
        f" {large['fault_cases']} fault cases at size {large['size']}"
    )
    tiled = payload["workloads"]["table3_size8_tiled"]
    large_rows = [
        ("kernel cold (serial)", "cold_serial"),
        ("kernel cold (bitparallel)", "cold_bitparallel"),
    ]
    if tiled.get("seconds"):
        large = tiled  # superset of table3_size8, same measurements
        large_rows.append(("kernel cold (bitparallel-np)", "cold_bitparallel_np"))
    for label, key in large_rows:
        seconds = large["seconds"][key]
        speedup = large["speedup_vs_cold_serial"].get(key, 1.0)
        print(f"  {label:28s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    if not tiled.get("seconds"):
        print(f"  (bitparallel-np skipped: {tiled['skipped_reason']})")
    for name in ("size64_tiled", "size256_tiled_linear"):
        record = payload["workloads"].get(name)
        if record is None:
            continue
        print(
            f"{name}: {record['test']} x {record['fault_cases']} cases"
            f" at size {record['size']} ({record['lanes']} lanes,"
            f" {record['tiles']} tiles)"
        )
        for label, key in [
            ("engine (bitparallel)", "bitparallel"),
            ("engine (bitparallel-np)", "bitparallel_np"),
        ]:
            seconds = record["seconds"][key]
            speedup = record["tiled_speedup_vs_bitparallel"] \
                if key == "bitparallel_np" else 1.0
            print(f"  {label:28s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    telemetry = payload["workloads"]["table3_size3_telemetry"]
    print(
        f"telemetry overhead (serial cold, live registry + tracer):"
        f" {telemetry['telemetry_overhead_ratio']:.3f}x"
        f" (ceiling {TELEMETRY_OVERHEAD_CEILING}x)"
    )
    store = payload["workloads"]["table3_size3_store"]
    print(
        f"cross-process --store warm start ({store['tests']} tests x"
        f" {store['fault_cases']} cases, {store['backend']} backend)"
    )
    print(
        f"  {'first process (simulates)':26s}"
        f" {store['seconds']['first_cold_process'] * 1e3:9.2f} ms"
    )
    print(
        f"  {'second process (store)':26s}"
        f" {store['seconds']['second_cold_process'] * 1e3:9.2f} ms"
        f"   {store['cross_process_warm_speedup']:7.1f}x"
    )
    service = payload["workloads"]["table3_size3_service"]
    print(
        f"verdict-service warm read ({service['tests']} tests x"
        f" {service['fault_cases']} cases, {service['backend']} backend,"
        " unix socket)"
    )
    print(
        f"  {'first client (simulates)':26s}"
        f" {service['seconds']['first_cold_client'] * 1e3:9.2f} ms"
    )
    print(
        f"  {'second client (service)':26s}"
        f" {service['seconds']['second_warm_client'] * 1e3:9.2f} ms"
        f"   {service['service_warm_speedup']:7.1f}x"
    )
    retry = payload["workloads"]["table3_size3_service_retry"]
    print(
        f"verdict-service retry read ({retry['tests']} tests x"
        f" {retry['fault_cases']} cases, one daemon restart mid-read,"
        f" {retry['retries']} retr"
        f"{'y' if retry['retries'] == 1 else 'ies'})"
    )
    print(
        f"  {'warm read (no faults)':26s}"
        f" {retry['seconds']['warm_client'] * 1e3:9.2f} ms"
    )
    print(
        f"  {'warm read + reconnect':26s}"
        f" {retry['seconds']['warm_client_through_reconnect'] * 1e3:9.2f} ms"
        f"   {retry['reconnect_overhead_ratio']:7.2f}x overhead"
    )
    async_record = payload["workloads"]["table3_size3_service_async"]
    print(
        f"verdict-service async warm read ({async_record['tests']} tests x"
        f" {async_record['fault_cases']} cases, event-loop daemon,"
        f" {async_record['pipeline_frames']} pipelined frames)"
    )
    print(
        f"  {'warm read (SQLite path)':26s}"
        f" {async_record['seconds']['warm_read_sqlite_path'] * 1e3:9.2f} ms"
    )
    print(
        f"  {'warm read (hot LRU)':26s}"
        f" {async_record['seconds']['warm_read_hot_lru'] * 1e3:9.2f} ms"
        f"   {async_record['hot_lru_speedup']:7.1f}x"
    )
    print(
        f"  {'chunked round trips':26s}"
        f" {async_record['seconds']['chunked_round_trips'] * 1e3:9.2f} ms"
    )
    print(
        f"  {'pipelined burst':26s}"
        f" {async_record['seconds']['pipelined_burst'] * 1e3:9.2f} ms"
        f"   {async_record['pipelining_speedup']:7.1f}x"
    )
    fanout = payload["workloads"]["campaign_fanout"]
    print(
        f"campaign fan-out ({fanout['jobs']} jobs, serial backend,"
        f" sizes {fanout['sizes']}, {fanout['cpus']} CPU(s))"
    )
    print(
        f"  {'sequential (--jobs 1)':26s}"
        f" {fanout['seconds']['sequential'] * 1e3:9.2f} ms"
    )
    fanned_label = f"fanned out (--jobs {fanout['workers']})"
    print(
        f"  {fanned_label:26s}"
        f" {fanout['seconds']['parallel'] * 1e3:9.2f} ms"
        f"   {fanout['fanout_speedup']:7.1f}x"
    )
    if not fanout["guard_enforced"]:
        print(f"  (guard skipped: {fanout['skipped_reason']})")
    path = write_bench_json(payload)
    print(f"wrote {path}")


if __name__ == "__main__":
    main()
