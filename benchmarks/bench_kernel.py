"""SimulationKernel vs. the legacy per-call simulation path.

Workload: the full ``detection_matrix`` of eight catalog March tests
against the paper's Table 3 fault list (SAF+TF+ADF+CFin+CFid).

Compared paths:

* **legacy**   -- the pre-refactor loop: variants re-enumerated and a
  fresh ``MemoryArray`` allocated per (order-variant, fault-variant);
* **cold**     -- a fresh kernel (serial backend): pooled memories,
  per-test variant hoisting, batched evaluation;
* **warm**     -- the same kernel again: pure fault-dictionary lookups;
* **process**  -- a fresh kernel with the multiprocessing backend.

``python benchmarks/bench_kernel.py`` prints the comparison table
without the pytest-benchmark machinery.  The ``test_*_guard`` checks
double as the CI smoke benchmark: they fail when the warm-cache path
stops being >= 3x faster than legacy or when the cold path regresses
past a generous wall-clock ceiling.
"""

import pathlib
import sys
import time

from repro.faults import FaultList
from repro.kernel import SimulationKernel
from repro.march.catalog import (
    MARCH_A,
    MARCH_B,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS_PLUS,
    MSCAN,
)

# The frozen legacy baseline is shared with the equivalence suite so
# the speedup guard and the byte-identity properties can never compare
# against two diverging "legacy" definitions.
sys.path.insert(
    0,
    str(pathlib.Path(__file__).resolve().parent.parent / "tests" / "kernel"),
)
from legacy_reference import legacy_detection_matrix  # noqa: E402

TESTS = [
    MATS,
    MATS_PLUS_PLUS,
    MARCH_X,
    MARCH_Y,
    MARCH_C_MINUS,
    MARCH_A,
    MARCH_B,
    MSCAN,
]
SIZE = 3

#: Acceptance floor: warm-cache detection_matrix vs. the legacy path.
REQUIRED_WARM_SPEEDUP = 3.0
#: CI wall-clock ceiling for one cold kernel matrix (seconds); the
#: measured value is ~0.1 s on a laptop, so 10 s only catches gross
#: regressions on slow shared runners.
COLD_WALL_CLOCK_CEILING = 10.0


def table3_faults():
    return FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")


# -- measured scenarios --------------------------------------------------------


def run_legacy(faults):
    return legacy_detection_matrix(TESTS, faults, SIZE)


def run_kernel_cold(faults, backend="serial"):
    return SimulationKernel(backend=backend).detection_matrix(
        TESTS, faults, SIZE
    )


def make_warm_kernel(faults):
    kernel = SimulationKernel()
    kernel.detection_matrix(TESTS, faults, SIZE)
    return kernel


def run_kernel_warm(kernel, faults):
    return kernel.detection_matrix(TESTS, faults, SIZE)


# -- pytest-benchmark entry points --------------------------------------------


def test_legacy_path(bench_once):
    bench_once(run_legacy, table3_faults())


def test_kernel_cold_serial(bench_once):
    bench_once(run_kernel_cold, table3_faults())


def test_kernel_cold_process(bench_once):
    bench_once(run_kernel_cold, table3_faults(), backend="process")


def test_kernel_warm(bench_once):
    faults = table3_faults()
    kernel = make_warm_kernel(faults)
    bench_once(run_kernel_warm, kernel, faults)


# -- CI smoke guards -----------------------------------------------------------


def _best_of(repeats, fn, *args):
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_warm_cache_speedup_guard():
    """Acceptance criterion: warm kernel >= 3x faster than legacy."""
    faults = table3_faults()
    legacy_seconds, legacy_matrix = _best_of(3, run_legacy, faults)
    kernel = make_warm_kernel(faults)
    warm_seconds, warm_matrix = _best_of(3, run_kernel_warm, kernel, faults)
    assert warm_matrix == legacy_matrix
    speedup = legacy_seconds / warm_seconds
    assert speedup >= REQUIRED_WARM_SPEEDUP, (
        f"warm kernel only {speedup:.1f}x faster than legacy"
        f" ({warm_seconds * 1e3:.2f} ms vs {legacy_seconds * 1e3:.2f} ms)"
    )


def test_cold_wall_clock_guard():
    """Wall-clock regression guard for the uncached kernel path."""
    seconds, _ = _best_of(2, run_kernel_cold, table3_faults())
    assert seconds < COLD_WALL_CLOCK_CEILING, (
        f"cold kernel detection_matrix took {seconds:.2f}s"
        f" (ceiling {COLD_WALL_CLOCK_CEILING}s)"
    )


def main():
    faults = table3_faults()
    legacy_seconds, _ = _best_of(3, run_legacy, faults)
    cold_seconds, _ = _best_of(3, run_kernel_cold, faults)
    process_seconds, _ = _best_of(1, run_kernel_cold, faults, "process")
    kernel = make_warm_kernel(faults)
    warm_seconds, _ = _best_of(3, run_kernel_warm, kernel, faults)
    cases = len(faults.instances(SIZE))
    print(
        f"detection_matrix: {len(TESTS)} tests x {cases} fault cases"
        f" at size {SIZE}"
    )
    rows = [
        ("legacy per-call", legacy_seconds, 1.0),
        ("kernel cold (serial)", cold_seconds, legacy_seconds / cold_seconds),
        ("kernel cold (process)", process_seconds,
         legacy_seconds / process_seconds),
        ("kernel warm cache", warm_seconds, legacy_seconds / warm_seconds),
    ]
    for label, seconds, speedup in rows:
        print(f"  {label:24s} {seconds * 1e3:9.2f} ms   {speedup:7.1f}x")
    print(f"  {kernel.stats}")


if __name__ == "__main__":
    main()
