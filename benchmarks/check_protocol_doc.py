#!/usr/bin/env python
"""Keep docs/PROTOCOL.md and the service implementation in lockstep.

Compatibility shim: the real check is now the ``wire-contract`` rule of
the ``repro lint`` suite (:mod:`repro.devtools.lint.rules.wire`), which
extracts the same three op sets -- ``SERVICE_OPS``, the literals
``VerdictService._dispatch`` compares against, and the op table of
``docs/PROTOCOL.md`` -- and requires pairwise agreement in both
directions.  This script survives so existing invocations (and muscle
memory) keep working; it simply runs that one rule over ``service.py``.

Run from the repository root::

    PYTHONPATH=src python benchmarks/check_protocol_doc.py

Exit status 0 when the contract holds, 1 with the findings when it
drifted.  Equivalent to::

    PYTHONPATH=src python -m repro lint --rule wire-contract src/repro
"""

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
SOURCE = REPO / "src" / "repro" / "store" / "service.py"


def main() -> int:
    from repro.devtools.lint import run_lint

    result = run_lint([str(SOURCE)], only=["wire-contract"])
    if result.findings:
        print("protocol doc contract BROKEN:")
        for finding in result.findings:
            print(f"  - {finding.render()}")
        print(
            "fix: update docs/PROTOCOL.md's op table and"
            " repro.store.service.SERVICE_OPS together"
        )
        return 1
    print(
        "protocol doc contract holds: SERVICE_OPS, _dispatch and"
        " docs/PROTOCOL.md agree (wire-contract rule)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
