#!/usr/bin/env python
"""Keep docs/PROTOCOL.md and the service implementation in lockstep.

Three sets must agree, or the spec has drifted from the code:

1. ``SERVICE_OPS`` -- the registry the module exports as its op list;
2. the ops ``VerdictService._dispatch`` actually compares against
   (parsed from the source, so a handler added without registering it
   is caught too);
3. the ops documented in the op table of ``docs/PROTOCOL.md``.

Run from the repository root (CI job ``docs-contract``)::

    PYTHONPATH=src python benchmarks/check_protocol_doc.py

Exit status 0 when the contract holds, 1 with a diff when it drifted.
"""

import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
DOC = REPO / "docs" / "PROTOCOL.md"
SOURCE = REPO / "src" / "repro" / "store" / "service.py"


def registry_ops():
    from repro.store.service import SERVICE_OPS

    return set(SERVICE_OPS)


def dispatched_ops():
    """Every literal the dispatcher compares the request op against."""
    source = SOURCE.read_text(encoding="utf-8")
    match = re.search(
        r"def _dispatch\(.*?\n(.*?)\n    def ", source, re.DOTALL
    )
    if not match:
        raise SystemExit(f"cannot locate _dispatch in {SOURCE}")
    return set(re.findall(r'op == "([a-z_]+)"', match.group(1)))


def documented_ops():
    """First-column op names of the PROTOCOL.md op table."""
    ops = set()
    for line in DOC.read_text(encoding="utf-8").splitlines():
        cell = re.match(r"\|\s*`([a-z_]+)`\s*\|", line)
        if cell:
            ops.add(cell.group(1))
    return ops


def main() -> int:
    registry = registry_ops()
    dispatched = dispatched_ops()
    documented = documented_ops()
    failures = []
    for left_name, left, right_name, right in (
        ("SERVICE_OPS", registry, "_dispatch", dispatched),
        ("SERVICE_OPS", registry, "docs/PROTOCOL.md", documented),
    ):
        missing = left - right
        extra = right - left
        if missing:
            failures.append(
                f"{right_name} is missing op(s) {sorted(missing)}"
                f" present in {left_name}"
            )
        if extra:
            failures.append(
                f"{right_name} has op(s) {sorted(extra)}"
                f" absent from {left_name}"
            )
    if failures:
        print("protocol doc contract BROKEN:")
        for failure in failures:
            print(f"  - {failure}")
        print(
            "fix: update docs/PROTOCOL.md's op table and"
            " repro.store.service.SERVICE_OPS together"
        )
        return 1
    print(
        f"protocol doc contract holds: {len(registry)} ops"
        f" ({', '.join(sorted(registry))}) agree across SERVICE_OPS,"
        " _dispatch and docs/PROTOCOL.md"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
