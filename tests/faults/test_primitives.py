"""Tests for the <S, F> fault primitive notation."""

import pytest

from repro.faults.primitives import (
    Effect,
    FaultPrimitive,
    Sensitization,
    parse_primitive,
)


class TestParsing:
    @pytest.mark.parametrize(
        "text, sens, effect",
        [
            ("<up,0>", Sensitization.UP, Effect.FORCE_0),
            ("<down,1>", Sensitization.DOWN, Effect.FORCE_1),
            ("<updown,inv>", Sensitization.ANY_TRANSITION, Effect.INVERT),
            ("<0,inv>", Sensitization.ZERO, Effect.INVERT),
            ("<1,0>", Sensitization.ONE, Effect.FORCE_0),
            ("<up,stay>", Sensitization.UP, Effect.NO_CHANGE),
            ("<r,inv>", Sensitization.READ, Effect.INVERT),
            ("<T,0>", Sensitization.WAIT, Effect.FORCE_0),
        ],
    )
    def test_parse(self, text, sens, effect):
        primitive = parse_primitive(text)
        assert primitive.sensitization is sens
        assert primitive.effect is effect

    def test_parse_aliases(self):
        assert parse_primitive("<^,~>").sensitization is Sensitization.UP
        assert parse_primitive("<^,~>").effect is Effect.INVERT

    def test_parse_semicolon_separator(self):
        assert parse_primitive("<up;0>").effect is Effect.FORCE_0

    @pytest.mark.parametrize("bad", ["<up>", "<up,0,1>", "<sideways,0>", "<up,5>"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_primitive(bad)

    def test_str_roundtrip(self):
        primitive = parse_primitive("<up,0>")
        assert parse_primitive(str(primitive)) == primitive


class TestSemantics:
    def test_transition_classification(self):
        assert Sensitization.UP.is_transition
        assert Sensitization.ANY_TRANSITION.is_transition
        assert not Sensitization.ZERO.is_transition
        assert Sensitization.ZERO.is_state

    def test_sensitizing_writes(self):
        assert FaultPrimitive(
            Sensitization.UP, Effect.FORCE_0
        ).sensitizing_writes == ((0, 1),)
        assert FaultPrimitive(
            Sensitization.ANY_TRANSITION, Effect.INVERT
        ).sensitizing_writes == ((0, 1), (1, 0))
        assert FaultPrimitive(
            Sensitization.ZERO, Effect.FORCE_1
        ).sensitizing_writes == ()

    def test_effect_apply(self):
        assert Effect.FORCE_0.apply(1) == 0
        assert Effect.FORCE_1.apply(0) == 1
        assert Effect.INVERT.apply(0) == 1
        assert Effect.INVERT.apply(1) == 0
        assert Effect.INVERT.apply("-") == "-"
        assert Effect.NO_CHANGE.apply(1) == 1
