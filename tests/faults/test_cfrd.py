"""Tests for the read-coupling fault model (CFrd)."""

import pytest

from repro.core import MarchTestGenerator
from repro.faults import FaultList
from repro.faults.instances import ReadCouplingInstance
from repro.faults.library import ReadCouplingFault
from repro.march.catalog import MARCH_C_MINUS, MATS
from repro.memory.array import MemoryArray
from repro.simulator.faultsim import simulate_fault_list


class TestInstance:
    def test_reading_aggressor_forces_victim(self):
        memory = MemoryArray(3, fault=ReadCouplingInstance(0, 2, 1))
        memory.write(0, 0)
        memory.write(2, 0)
        assert memory.read(0) == 0       # aggressor reads fine
        assert memory.raw[2] == 1        # but the victim was forced

    def test_other_reads_harmless(self):
        memory = MemoryArray(3, fault=ReadCouplingInstance(0, 2, 1))
        memory.write(1, 0)
        memory.write(2, 0)
        memory.read(1)
        assert memory.raw[2] == 0

    def test_distinct_cells_required(self):
        with pytest.raises(ValueError):
            ReadCouplingInstance(1, 1, 0)


class TestModel:
    def test_classes(self):
        classes = ReadCouplingFault().classes()
        assert len(classes) == 4  # 2 forced values x 2 directions
        assert all(cls.cardinality == 1 for cls in classes)

    def test_registry(self):
        faults = FaultList.from_names("CFRD")
        assert faults.names == ("CFRD",)
        assert len(faults.instances(3)) == 12

    def test_march_c_minus_covers_cfrd(self):
        faults = FaultList.from_names("CFRD")
        assert simulate_fault_list(MARCH_C_MINUS, faults, 3).complete

    def test_mats_misses_cfrd(self):
        faults = FaultList.from_names("CFRD")
        assert not simulate_fault_list(MATS, faults, 3).complete


class TestGeneration:
    def test_generated_test_is_minimal_and_verified(self):
        faults = FaultList.from_names("CFRD")
        report = MarchTestGenerator().generate(faults)
        assert report.verified
        assert report.complexity == 6
        assert any("lower bound" in note for note in report.notes)

    def test_excitation_reads_flagged_by_redundancy_check(self):
        """A CFrd test needs reads as *excitations*; demoting their
        verification is harmless, so the Section-6 criterion reports
        them -- an interesting, documented corner."""
        faults = FaultList.from_names("CFRD")
        report = MarchTestGenerator().generate(faults)
        assert report.non_redundant is False
