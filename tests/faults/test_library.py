"""Tests for the fault model library and fault lists."""

import pytest

from repro.faults import (
    MODEL_REGISTRY,
    AddressDecoderFault,
    BFEClass,
    CouplingIdempotentFault,
    CouplingInversionFault,
    CouplingStateFault,
    FaultList,
    StuckAtFault,
    TransitionFault,
    UserDefinedFault,
    delta_bfe,
)
from repro.memory.operations import write
from repro.memory.state import MemoryState


class TestStuckAt:
    def test_two_classes_with_two_alternatives_each(self):
        classes = StuckAtFault().classes()
        assert len(classes) == 2
        assert all(cls.cardinality == 2 for cls in classes)
        assert all(cls.cell_symmetric for cls in classes)

    def test_instances_cover_cells_and_polarities(self):
        cases = StuckAtFault().instances(3)
        assert len(cases) == 6
        names = {c.name for c in cases}
        assert "SA0@0" in names and "SA1@2" in names


class TestTransitionFault:
    def test_singleton_classes(self):
        classes = TransitionFault().classes()
        assert len(classes) == 2
        assert all(cls.cardinality == 1 for cls in classes)

    def test_shares_deviation_with_stuck_at(self):
        # TF<up> and SA0's delta alternative are the same BFE -- the
        # node sharing the paper's Section 5 machinery exploits.
        from repro.faults.faultlist import _bfe_key

        tf_up = TransitionFault().classes()[0].members[0]
        sa0_delta = StuckAtFault().classes()[0].members[0]
        assert _bfe_key(tf_up) == _bfe_key(sa0_delta)


class TestCouplings:
    def test_cfid_class_count(self):
        # 2 transitions x 2 forced values x 2 directions.
        assert len(CouplingIdempotentFault().classes()) == 8

    def test_cfid_up_only(self):
        classes = CouplingIdempotentFault(primitives=("up",)).classes()
        assert len(classes) == 4
        assert all(cls.cardinality == 1 for cls in classes)

    def test_cfin_classes_have_two_alternatives(self):
        # The Section 5 example: <up,inv> splits into two BFEs, either
        # of which covers the fault.
        classes = CouplingInversionFault().classes()
        assert len(classes) == 4  # 2 transitions x 2 directions
        assert all(cls.cardinality == 2 for cls in classes)

    def test_cfst_classes(self):
        classes = CouplingStateFault().classes()
        assert len(classes) == 8
        assert all(cls.cardinality == 2 for cls in classes)

    def test_coupling_instances_cover_ordered_pairs(self):
        cases = CouplingInversionFault(primitives=("up",)).instances(3)
        assert len(cases) == 6  # ordered pairs of 3 cells


class TestAddressDecoder:
    def test_class_inventory(self):
        classes = AddressDecoderFault().classes()
        names = [cls.name for cls in classes]
        # 2 type-A classes + (B, C, D) per direction.
        assert len(classes) == 2 + 3 * 2
        assert any("ADF-B" in n for n in names)
        assert any("ADF-C" in n for n in names)
        assert any("ADF-D" in n for n in names)

    def test_type_b_class_members_are_all_deviations(self):
        cls = next(
            c for c in AddressDecoderFault().classes()
            if c.name.startswith("ADF-B i")
        )
        # 6 delta deviations + 2 lambda deviations of the i=>j machine.
        assert cls.cardinality == 8

    def test_type_c_instances_have_adversarial_read_models(self):
        cases = AddressDecoderFault().instances(2)
        c_case = next(c for c in cases if c.name.startswith("ADF-C"))
        assert len(c_case.variants) == 4

    def test_dead_cell_has_two_float_variants(self):
        cases = AddressDecoderFault().instances(2)
        a_case = next(c for c in cases if c.name.startswith("ADF-A"))
        assert len(a_case.variants) == 2


class TestFaultList:
    def test_from_names(self):
        fl = FaultList.from_names("SAF", "tf")
        assert fl.names == ("SAF", "TF")

    def test_from_names_unknown(self):
        with pytest.raises(KeyError):
            FaultList.from_names("BOGUS")

    def test_registry_is_complete(self):
        for name in MODEL_REGISTRY:
            fl = FaultList.from_names(name)
            assert fl.classes(), name
            assert fl.instances(2), name

    def test_duplicate_classes_merged(self):
        fl = FaultList.from_names("SAF", "SAF")
        assert len(fl.classes()) == len(FaultList.from_names("SAF").classes())

    def test_add_chains(self):
        fl = FaultList().add(StuckAtFault()).add(TransitionFault())
        assert len(fl) == 2
        assert len(list(iter(fl))) == 2


class TestUserDefined:
    def test_user_fault_round_trip(self):
        bfe = delta_bfe(
            MemoryState.parse("0-"), write("i", 1), MemoryState.parse("0-"),
            "custom",
        )
        model = UserDefinedFault(
            "MYFAULT", [BFEClass("custom", (bfe,), cell_symmetric=True)]
        )
        fl = FaultList([model])
        assert fl.names == ("MYFAULT",)
        assert len(fl.classes()) == 1
        assert fl.instances(4) == ()

    def test_empty_class_rejected(self):
        with pytest.raises(ValueError):
            BFEClass("empty", ())
