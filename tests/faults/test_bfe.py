"""Tests for Basic Fault Effects (Figures 2 and 3 of the paper)."""

import pytest

from repro.faults.bfe import BasicFaultEffect, BFEKind, delta_bfe, lambda_bfe
from repro.memory.operations import parse_sequence, read, wait, write
from repro.memory.state import MemoryState


def state(text):
    return MemoryState.parse(text)


#: The first BFE of Figure 3: <up,0> with i aggressor -- w1i from 01
#: lands in 10 instead of 11.
CFID_UP0_I = delta_bfe(state("01"), write("i", 1), state("-0"), "CFid<up,0> i->j")


class TestValidation:
    def test_delta_requires_faulty_next(self):
        with pytest.raises(ValueError):
            BasicFaultEffect(BFEKind.DELTA, state("00"), write("i", 1))

    def test_lambda_requires_output(self):
        with pytest.raises(ValueError):
            BasicFaultEffect(BFEKind.LAMBDA, state("00"), read("i"))

    def test_lambda_requires_read(self):
        with pytest.raises(ValueError):
            lambda_bfe(state("00"), write("i", 1), 0)


class TestDeviations:
    def test_deviating_cells(self):
        assert CFID_UP0_I.deviating_cells(state("01")) == ("j",)

    def test_concrete_faulty_next_overlays_good(self):
        # Good next of 01 --w1i--> 11; the fault forces j to 0.
        assert str(CFID_UP0_I.concrete_faulty_next(state("01"))) == "10"

    def test_lambda_has_no_deviating_cells(self):
        bfe = lambda_bfe(state("10"), read("i"), 0)
        assert bfe.deviating_cells(state("10")) == ()

    def test_single_deviation_flag(self):
        assert CFID_UP0_I.is_single_deviation()
        lifted = delta_bfe(state("0-"), write("i", 1), state("0-"))
        assert not lifted.is_single_deviation()


class TestApplyTo:
    """Figure 2: the faulty machine M1 differs from M0 by one edge."""

    def test_concrete_bfe_deviates_one_transition(self, m0):
        m1 = CFID_UP0_I.apply_to(m0, "M1")
        diffs = m1.deviations_from(m0)
        assert len(diffs) == 1
        kind, (s, op) = diffs[0]
        assert kind == "delta"
        assert str(s) == "01" and str(op) == "w1i"

    def test_faulty_machine_behaviour(self, m0):
        m1 = CFID_UP0_I.apply_to(m0)
        ops = parse_sequence("w0i, w1j, w1i, rj")
        _, good = m0.run(state("--"), ops)
        _, bad = m1.run(state("--"), ops)
        assert good[-1] == 1
        assert bad[-1] == 0  # the coupling fault forced j to 0

    def test_lifted_bfe_deviates_everywhere_it_matches(self, m0):
        # SA0-style: w1i lost whenever i holds 0, regardless of j.
        lifted = delta_bfe(state("0-"), write("i", 1), state("0-"))
        faulty = lifted.apply_to(m0)
        diffs = faulty.deviations_from(m0)
        assert len(diffs) == 2  # states 00 and 01

    def test_lambda_bfe_apply(self, m0):
        bfe = lambda_bfe(state("1-"), read("i"), 0, "SA0 read")
        faulty = bfe.apply_to(m0)
        _, out = faulty.step(state("10"), read("i"))
        assert out == 0

    def test_wait_bfe(self, m0):
        # Data retention: after T in state 1-, cell i decays to 0.
        bfe = delta_bfe(state("1-"), wait(), state("0-"), "DRF")
        faulty = bfe.apply_to(m0)
        nxt, _ = faulty.step(state("11"), wait())
        assert str(nxt) == "01"

    def test_str_contains_label(self):
        assert "CFid<up,0>" in str(CFID_UP0_I)
