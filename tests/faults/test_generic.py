"""Tests for the generic BFE interpreter."""

import pytest

from repro.faults.bfe import delta_bfe, lambda_bfe
from repro.faults.faultlist import BFEClass
from repro.faults.generic import GenericPairFault, PairBFEInstance
from repro.memory.array import MemoryArray
from repro.memory.operations import read, wait, write
from repro.memory.state import MemoryState


def state(text):
    return MemoryState.parse(text)


def cfid_up0_i():
    """<up,0> with i aggressor: w1i from 01 forces j to 0."""
    return delta_bfe(state("01"), write("i", 1), state("-0"))


class TestPairBFEInstance:
    def test_delta_fires_on_matching_state_and_op(self):
        memory = MemoryArray(3, fault=PairBFEInstance([cfid_up0_i()], 0, 2))
        memory.write(0, 0)
        memory.write(2, 1)   # pair state (i=0, j=1)
        memory.write(0, 1)   # w1i: the deviation fires
        assert memory.raw[2] == 0
        assert memory.raw[0] == 1

    def test_delta_silent_on_other_states(self):
        memory = MemoryArray(3, fault=PairBFEInstance([cfid_up0_i()], 0, 2))
        memory.write(0, 0)
        memory.write(2, 0)   # pair state (0, 0): no match
        memory.write(0, 1)
        assert memory.raw[2] == 0  # unchanged by fault, was 0 anyway
        memory.write(2, 1)
        assert memory.raw[2] == 1

    def test_unrelated_cells_untouched(self):
        memory = MemoryArray(4, fault=PairBFEInstance([cfid_up0_i()], 0, 2))
        memory.write(1, 1)
        memory.write(3, 0)
        assert memory.raw[1] == 1 and memory.raw[3] == 0

    def test_lambda_read_deviation(self):
        bfe = lambda_bfe(state("10"), read("i"), 0)
        memory = MemoryArray(2, fault=PairBFEInstance([bfe], 0, 1))
        memory.write(0, 1)
        memory.write(1, 0)
        assert memory.read(0) == 0   # the lying read
        assert memory.raw[0] == 1    # state unchanged

    def test_destructive_read_deviation(self):
        bfe = delta_bfe(state("1-"), read("i"), state("0-"))
        memory = MemoryArray(2, fault=PairBFEInstance([bfe], 0, 1))
        memory.write(0, 1)
        assert memory.read(0) == 1   # answers the good value
        assert memory.raw[0] == 0    # but flips the cell

    def test_wait_deviation(self):
        bfe = delta_bfe(state("1-"), wait(), state("0-"))
        memory = MemoryArray(2, fault=PairBFEInstance([bfe], 0, 1))
        memory.write(0, 1)
        memory.wait()
        assert memory.raw[0] == 0

    def test_requires_distinct_cells(self):
        with pytest.raises(ValueError):
            PairBFEInstance([cfid_up0_i()], 1, 1)

    def test_rejects_non_pair_bfes(self):
        bfe = delta_bfe(
            MemoryState.parse("0", cells=("i",)),
            write("i", 1),
            MemoryState.parse("0", cells=("i",)),
        )
        with pytest.raises(ValueError):
            PairBFEInstance([bfe], 0, 1)


class TestGenericPairFault:
    def test_instances_respect_address_convention(self):
        # address(i) < address(j): one placement per unordered pair.
        model = GenericPairFault("X", [BFEClass("c", (cfid_up0_i(),))])
        assert len(model.instances(3)) == 3

    def test_symmetric_classes_get_one_instance_per_cell(self):
        bfe = delta_bfe(state("0-"), write("i", 1), state("0-"))
        model = GenericPairFault(
            "Y", [BFEClass("c", (bfe,), cell_symmetric=True)]
        )
        assert len(model.instances(4)) == 4

    def test_matches_handwritten_cfid_behaviour(self):
        """The generic interpreter agrees with the dedicated instance."""
        from repro.faults.instances import CouplingIdempotentInstance

        generic = MemoryArray(
            2, fault=PairBFEInstance([cfid_up0_i()], 0, 1)
        )
        dedicated = MemoryArray(
            2, fault=CouplingIdempotentInstance(0, 1, True, 0)
        )
        script = [(0, 0), (1, 1), (0, 1), (1, 0), (0, 0), (0, 1)]
        for address, value in script:
            generic.write(address, value)
            dedicated.write(address, value)
            assert generic.snapshot() == dedicated.snapshot()
