"""Linked-fault masking: the classic March C- vs March A separation."""

import pytest

from repro.faults.linked import (
    LinkedIdempotentPair,
    LinkedInversionPair,
    linked_idempotent_cases,
    linked_inversion_cases,
)
from repro.faults.instances import case
from repro.march.catalog import MARCH_A, MARCH_B, MARCH_C_MINUS, MARCH_LR
from repro.memory.array import MemoryArray
from repro.simulator.faultsim import detects_case


class TestInstances:
    def test_linked_inversions_cancel(self):
        memory = MemoryArray(4, fault=LinkedInversionPair(0, 1, 3))
        memory.write(3, 0)
        memory.write(0, 0)
        memory.write(1, 0)
        memory.write(0, 1)   # invert victim -> 1
        assert memory.raw[3] == 1
        memory.write(1, 1)   # invert back -> 0: masked
        assert memory.raw[3] == 0

    def test_linked_idempotents_overwrite(self):
        memory = MemoryArray(4, fault=LinkedIdempotentPair(0, 1, 3, 1))
        memory.write(3, 0)
        memory.write(0, 0)
        memory.write(1, 0)
        memory.write(0, 1)   # forces victim to 1
        assert memory.raw[3] == 1
        memory.write(1, 1)   # second aggressor forces it back to 0
        assert memory.raw[3] == 0

    def test_distinct_cells_required(self):
        with pytest.raises(ValueError):
            LinkedInversionPair(0, 0, 1)
        with pytest.raises(ValueError):
            LinkedIdempotentPair(0, 1, 1)

    def test_case_enumeration_sizes(self):
        # 4 cells: C(4,2) aggressor pairs x 2 remaining victims = 12;
        # ordered CFid pairs double that.
        assert len(linked_inversion_cases(4)) == 12
        assert len(linked_idempotent_cases(4)) == 24


class TestMaskingSeparation:
    """March C- detects all *unlinked* CFids but loses linked pairs;
    the longer March A/B/LR close the gap -- the textbook hierarchy."""

    def test_march_c_minus_misses_linked_idempotents(self):
        missed = [
            c for c in linked_idempotent_cases(4)
            if not detects_case(MARCH_C_MINUS, c, 4)
        ]
        assert len(missed) == 8  # measured; see docs/theory.md

    @pytest.mark.parametrize(
        "march", [MARCH_A, MARCH_B, MARCH_LR],
        ids=["MarchA", "MarchB", "MarchLR"],
    )
    def test_longer_tests_catch_all_linked_idempotents(self, march):
        for fault_case in linked_idempotent_cases(4):
            assert detects_case(march, fault_case, 4), fault_case.name

    def test_specific_masked_placement(self):
        # Both aggressors below the victim: an ascending element fires
        # both before reaching the victim's read.
        fc = case(
            "CFid&CFid 0,1->2",
            lambda: LinkedIdempotentPair(0, 1, 2, first_forces=1),
        )
        assert not detects_case(MARCH_C_MINUS, fc, 3)
        assert detects_case(MARCH_A, fc, 3)

    def test_linked_inversions_mostly_hide(self):
        # Double inversions cancel regardless of test length: even
        # March A only sees placements whose victim read falls between
        # the two excitations.
        for march in (MARCH_C_MINUS, MARCH_A, MARCH_LR):
            hit = sum(
                detects_case(march, c, 4)
                for c in linked_inversion_cases(4)
            )
            assert hit == 4, march.name
