"""Behavioural tests for the injectable fault instances."""

import pytest

from repro.faults.instances import (
    CouplingIdempotentInstance,
    CouplingInversionInstance,
    CouplingStateInstance,
    DataRetentionInstance,
    DeadCellInstance,
    IncorrectReadInstance,
    MultiCellAccessInstance,
    ReadDisturbInstance,
    SharedCellAccessInstance,
    StuckAtInstance,
    StuckOpenInstance,
    TransitionFaultInstance,
    WriteDisturbInstance,
    WrongCellAccessInstance,
    case,
)
from repro.memory.array import MemoryArray
from repro.memory.state import DASH


def memory_with(fault, size=3):
    return MemoryArray(size, fault=fault)


class TestStuckAt:
    def test_sa0_ignores_writes(self):
        memory = memory_with(StuckAtInstance(1, 0))
        memory.write(1, 1)
        assert memory.read(1) == 0

    def test_sa1_reads_one(self):
        memory = memory_with(StuckAtInstance(0, 1))
        memory.write(0, 0)
        assert memory.read(0) == 1

    def test_other_cells_unaffected(self):
        memory = memory_with(StuckAtInstance(0, 0))
        memory.write(2, 1)
        assert memory.read(2) == 1


class TestTransitionFault:
    def test_up_transition_fails(self):
        memory = memory_with(TransitionFaultInstance(0, rising=True))
        memory.write(0, 0)
        memory.write(0, 1)  # fails silently
        assert memory.read(0) == 0

    def test_down_transition_ok_for_up_fault(self):
        memory = memory_with(TransitionFaultInstance(0, rising=True))
        memory.write(0, 1)  # from '-' is not a definite up transition
        memory.write(0, 0)
        assert memory.read(0) == 0

    def test_down_transition_fails(self):
        memory = memory_with(TransitionFaultInstance(1, rising=False))
        memory.write(1, 1)
        memory.write(1, 0)
        assert memory.read(1) == 1


class TestReadFaults:
    def test_rdf_flips_and_lies(self):
        memory = memory_with(ReadDisturbInstance(0, 0))
        memory.write(0, 0)
        assert memory.read(0) == 1  # wrong value returned
        assert memory.raw[0] == 1   # and the cell flipped

    def test_drdf_flips_but_answers_correctly(self):
        memory = memory_with(ReadDisturbInstance(0, 1, deceptive=True))
        memory.write(0, 1)
        assert memory.read(0) == 1  # correct answer
        assert memory.read(0) == 0  # second read sees the flip

    def test_irf_lies_without_flip(self):
        memory = memory_with(IncorrectReadInstance(0, 1))
        memory.write(0, 1)
        assert memory.read(0) == 0
        assert memory.raw[0] == 1


class TestWriteAndRetention:
    def test_wdf_non_transition_write_flips(self):
        memory = memory_with(WriteDisturbInstance(0, 0))
        memory.write(0, 0)   # '-' -> 0 establishes
        memory.write(0, 0)   # non-transition write disturbs
        assert memory.read(0) == 1

    def test_drf_decays_on_wait(self):
        memory = memory_with(DataRetentionInstance(0, 1))
        memory.write(0, 1)
        memory.wait()
        assert memory.read(0) == 0

    def test_drf_only_from_its_value(self):
        memory = memory_with(DataRetentionInstance(0, 1))
        memory.write(0, 0)
        memory.wait()
        assert memory.read(0) == 0


class TestStuckOpen:
    def test_reads_return_latch(self):
        memory = memory_with(StuckOpenInstance(1, initial_latch=0))
        memory.write(0, 1)
        memory.write(1, 0)  # lost
        assert memory.read(0) == 1  # loads latch with 1
        assert memory.read(1) == 1  # returns the latch, not the cell


class TestCouplings:
    def test_cfid_up_forces_victim(self):
        memory = memory_with(CouplingIdempotentInstance(0, 2, True, 0))
        memory.write(2, 1)
        memory.write(0, 0)
        memory.write(0, 1)  # up transition fires
        assert memory.read(2) == 0

    def test_cfid_needs_definite_transition(self):
        memory = memory_with(CouplingIdempotentInstance(0, 2, True, 0))
        memory.write(2, 1)
        memory.write(0, 1)  # '-' -> 1 is not a definite up transition
        assert memory.read(2) == 1

    def test_cfin_inverts_victim(self):
        memory = memory_with(CouplingInversionInstance(1, 0, False))
        memory.write(0, 0)
        memory.write(1, 1)
        memory.write(1, 0)  # down transition inverts victim
        assert memory.read(0) == 1

    def test_cfin_double_inversion_cancels(self):
        memory = memory_with(CouplingInversionInstance(1, 0, True))
        memory.write(0, 0)
        memory.write(1, 0)
        memory.write(1, 1)  # invert
        memory.write(1, 0)
        memory.write(1, 1)  # invert back
        assert memory.read(0) == 0

    def test_cfst_enforces_on_aggressor_entry(self):
        memory = memory_with(CouplingStateInstance(0, 1, 1, 0))
        memory.write(1, 1)
        memory.write(0, 1)  # aggressor enters state 1 -> victim forced 0
        assert memory.read(1) == 0

    def test_cfst_blocks_victim_writes(self):
        memory = memory_with(CouplingStateInstance(0, 1, 0, 1))
        memory.write(0, 0)   # aggressor in state 0
        memory.write(1, 0)   # victim write is overridden
        assert memory.read(1) == 1

    def test_coupling_requires_distinct_cells(self):
        with pytest.raises(ValueError):
            CouplingIdempotentInstance(1, 1, True, 0)
        with pytest.raises(ValueError):
            CouplingInversionInstance(1, 1, True)
        with pytest.raises(ValueError):
            CouplingStateInstance(2, 2, 0, 0)


class TestAddressFaults:
    def test_dead_cell_floats(self):
        memory = memory_with(DeadCellInstance(0, 1))
        memory.write(0, 0)
        assert memory.read(0) == 1

    def test_wrong_cell_redirects_both_ways(self):
        memory = memory_with(WrongCellAccessInstance(0, 2))
        memory.write(0, 1)       # lands in cell 2
        assert memory.raw[2] == 1
        assert memory.raw[0] == DASH
        memory.write(2, 0)
        assert memory.read(0) == 0  # reads cell 2

    def test_multi_cell_write_reaches_both(self):
        memory = memory_with(MultiCellAccessInstance(0, 1))
        memory.write(0, 1)
        assert memory.raw[0] == 1 and memory.raw[1] == 1

    def test_multi_cell_read_models(self):
        for model, expected in (
            ("and", 0), ("or", 1), ("own", 1), ("other", 0)
        ):
            memory = memory_with(MultiCellAccessInstance(0, 1, model))
            memory.raw[0] = 1
            memory.raw[1] = 0
            assert memory.read(0) == expected, model

    def test_multi_cell_rejects_unknown_model(self):
        with pytest.raises(ValueError):
            MultiCellAccessInstance(0, 1, "xor")

    def test_shared_cell_shadows(self):
        memory = memory_with(SharedCellAccessInstance(0, 1))
        memory.write(1, 1)  # redirected to cell 0
        assert memory.raw[0] == 1
        memory.write(0, 0)
        assert memory.read(1) == 0

    def test_address_faults_require_distinct_cells(self):
        for cls in (
            WrongCellAccessInstance,
            SharedCellAccessInstance,
        ):
            with pytest.raises(ValueError):
                cls(1, 1)
        with pytest.raises(ValueError):
            MultiCellAccessInstance(1, 1)


class TestFaultCase:
    def test_case_requires_variants(self):
        with pytest.raises(ValueError):
            case("empty")

    def test_case_builds_fresh_instances(self):
        fc = case("sa0", lambda: StuckAtInstance(0, 0))
        first, second = fc.variants[0](), fc.variants[0]()
        assert first is not second
