"""Tests for word-oriented memory testing."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults.instances import (
    CouplingIdempotentInstance,
    StuckAtInstance,
)
from repro.march.catalog import MARCH_C_MINUS, MATS
from repro.word import (
    WordMemoryArray,
    complement,
    data_backgrounds,
    detects_case,
    distinguishes_all_pairs,
    expand_march,
    run_word_march,
    word_complexity,
)


class TestBackgrounds:
    def test_width_one(self):
        assert data_backgrounds(1) == ((0,),)

    def test_width_four(self):
        assert data_backgrounds(4) == (
            (0, 0, 0, 0), (0, 1, 0, 1), (0, 0, 1, 1),
        )

    def test_count_is_log2_plus_one(self):
        for width, expected in ((1, 1), (2, 2), (4, 3), (8, 4), (16, 5)):
            assert len(data_backgrounds(width)) == expected

    def test_rejects_bad_width(self):
        with pytest.raises(ValueError):
            data_backgrounds(0)

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_all_bit_pairs_distinguished(self, width):
        backgrounds = data_backgrounds(width)
        assert distinguishes_all_pairs(backgrounds, width)

    def test_complement(self):
        assert complement((0, 1, 0)) == (1, 0, 1)


class TestWordMemory:
    def test_write_read_roundtrip(self):
        memory = WordMemoryArray(4, 8)
        word = (0, 1, 1, 0, 0, 1, 0, 1)
        memory.write_word(2, word)
        assert memory.read_word(2) == word

    def test_bit_addressing(self):
        memory = WordMemoryArray(3, 4)
        assert memory.bit_address(2, 3) == 11
        with pytest.raises(IndexError):
            memory.bit_address(3, 0)
        with pytest.raises(IndexError):
            memory.bit_address(0, 4)

    def test_width_mismatch(self):
        memory = WordMemoryArray(2, 4)
        with pytest.raises(ValueError):
            memory.write_word(0, (0, 1))

    def test_bit_level_fault_visible_at_word_level(self):
        memory = WordMemoryArray(2, 4, fault=StuckAtInstance(5, 0))
        memory.write_word(1, (1, 1, 1, 1))  # bit 5 = word 1, bit 1
        assert memory.read_word(1) == (1, 0, 1, 1)


class TestWordMarch:
    def test_good_memory_never_mismatches(self):
        memory = WordMemoryArray(3, 4)
        for index, background in enumerate(data_backgrounds(4)):
            records = run_word_march(MATS, memory, background, index)
            assert records and not any(r.mismatch for r in records)

    def test_expand_march_pass_count(self):
        passes = expand_march(MATS, 8)
        assert len(passes) == 4
        assert word_complexity(MATS, 8) == 16

    def test_stuck_bit_detected_with_solid_background(self):
        assert detects_case(
            MATS, lambda: StuckAtInstance(3, 0), words=2, width=4
        )

    def test_intra_word_coupling_needs_multiple_backgrounds(self):
        """The motivating property of data backgrounds.

        CFid <up,1> from bit 1 onto bit 0 of the same word: under solid
        backgrounds the victim always already holds the forced value
        when the aggressor rises (both bits carry the same data), so
        the fault is invisible; the checkerboard background splits the
        pair and exposes it.
        """
        make = lambda: CouplingIdempotentInstance(1, 0, True, 1)
        solid_only = [data_backgrounds(4)[0]]
        assert not detects_case(
            MARCH_C_MINUS, make, words=2, width=4, backgrounds=solid_only
        )
        assert detects_case(MARCH_C_MINUS, make, words=2, width=4)

    def test_inter_word_coupling_detected_even_solid(self):
        # Bits in different words move independently already.
        make = lambda: CouplingIdempotentInstance(0, 4, True, 0)
        solid_only = [data_backgrounds(4)[0]]
        assert detects_case(
            MARCH_C_MINUS, make, words=2, width=4, backgrounds=solid_only
        )
