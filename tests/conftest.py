"""Shared fixtures."""

import pytest

from repro.faults import FaultList
from repro.memory.mealy import good_machine


@pytest.fixture(scope="session")
def m0():
    """The two-cell fault-free machine of Figure 1."""
    return good_machine(("i", "j"))


@pytest.fixture(scope="session")
def saf_list():
    return FaultList.from_names("SAF")


@pytest.fixture(scope="session")
def saf_tf_list():
    return FaultList.from_names("SAF", "TF")


@pytest.fixture(scope="session")
def cfin_list():
    return FaultList.from_names("CFIN")
