"""Tests for the reorder/minimize rewrite phases (Sections 4.1-4.2)."""

from repro.faults import CouplingIdempotentFault
from repro.memory.operations import read, write
from repro.patterns.test_pattern import patterns_for_bfe
from repro.patterns.tpg import TestPatternGraph
from repro.sequence.gts import (
    Color,
    GlobalTestSequence,
    GTSSymbol,
    Role,
    build_gts,
)
from repro.sequence.rewrite import minimize, reorder, reorder_and_minimize


def sym(op, role, position=0):
    return GTSSymbol(op, role, position)


def seq(*symbols):
    return GlobalTestSequence(list(symbols))


class TestReorder:
    def test_marks_observe_excite_nucleus(self):
        gts = seq(
            sym(write("i", 0), Role.SETUP),
            sym(read("j", 0), Role.OBSERVE),
            sym(write("j", 1), Role.EXCITE, 1),
        )
        out = reorder(gts)
        assert out.symbols[1].color is Color.RED
        assert out.symbols[2].color is Color.BLUE

    def test_no_mark_across_cells(self):
        gts = seq(
            sym(read("j", 0), Role.OBSERVE),
            sym(write("i", 1), Role.EXCITE, 1),
        )
        out = reorder(gts)
        assert all(s.color is None for s in out.symbols)

    def test_no_mark_with_intervening_setup(self):
        gts = seq(
            sym(read("j", 0), Role.OBSERVE),
            sym(write("j", 0), Role.SETUP, 1),
            sym(write("j", 1), Role.EXCITE, 1),
        )
        out = reorder(gts)
        assert all(s.color is None for s in out.symbols)

    def test_all_symbols_terminal(self):
        gts = seq(sym(write("i", 0), Role.SETUP))
        assert all(s.terminal for s in reorder(gts).symbols)


class TestMinimize:
    def test_cross_cell_write_merge(self):
        gts = seq(
            sym(write("i", 0), Role.SETUP),
            sym(write("j", 0), Role.SETUP),
        )
        out = minimize(gts)
        assert len(out) == 1
        assert out.symbols[0].merged
        assert str(out.symbols[0].op) == "w0i"

    def test_cross_cell_read_merge(self):
        gts = seq(
            sym(read("i", 1), Role.OBSERVE),
            sym(read("j", 1), Role.OBSERVE),
        )
        out = minimize(gts)
        assert len(out) == 1 and out.symbols[0].merged

    def test_different_values_not_merged(self):
        gts = seq(
            sym(write("i", 0), Role.SETUP),
            sym(write("j", 1), Role.SETUP),
        )
        assert len(minimize(gts)) == 2

    def test_same_cell_duplicate_dropped(self):
        gts = seq(
            sym(read("i", 0), Role.OBSERVE),
            sym(read("i", 0), Role.OBSERVE),
        )
        out = minimize(gts)
        assert len(out) == 1
        assert not out.symbols[0].merged

    def test_merge_keeps_color(self):
        gts = seq(
            sym(write("i", 1), Role.EXCITE).colored(Color.BLUE),
            sym(write("j", 1), Role.SETUP),
        )
        out = minimize(gts)
        assert out.symbols[0].color is Color.BLUE

    def test_merge_prefers_excite_role(self):
        gts = seq(
            sym(write("i", 1), Role.SETUP),
            sym(write("j", 1), Role.EXCITE),
        )
        out = minimize(gts)
        assert out.symbols[0].role is Role.EXCITE


class TestWorkedExample:
    def test_paper_tour_minimizes_to_nine_symbols(self):
        fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))
        graph = TestPatternGraph()
        for cls in fault.classes():
            for member in cls.members:
                for tp in patterns_for_bfe(member):
                    graph.add(tp, cls.name)

        def index(text):
            return next(
                k for k, n in enumerate(graph.nodes) if str(n.pattern) == text
            )

        tour = [
            index("(00, w1i, r0j)"),
            index("(10, w1j, r1i)"),
            index("(00, w1j, r0i)"),
            index("(01, w1i, r1j)"),
        ]
        minimized = reorder_and_minimize(build_gts(graph, tour))
        # 12 raw operations collapse by merging each setup write pair
        # (w0i, w0j) -> w0: 12 - 2 = 10 symbols.
        assert len(minimized) == 10
        reds = [s for s in minimized.symbols if s.color is Color.RED]
        blues = [s for s in minimized.symbols if s.color is Color.BLUE]
        assert len(reds) == 2 and len(blues) == 2
