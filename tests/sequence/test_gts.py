"""Tests for GTS construction (paper, Section 4)."""

from repro.faults import CouplingIdempotentFault
from repro.patterns.test_pattern import patterns_for_bfe
from repro.patterns.tpg import TestPatternGraph
from repro.sequence.gts import Role, build_gts, gts_text


def figure4_graph():
    fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))
    graph = TestPatternGraph()
    for cls in fault.classes():
        for member in cls.members:
            for tp in patterns_for_bfe(member):
                graph.add(tp, cls.name)
    return graph


def node_index(graph, text):
    return next(k for k, n in enumerate(graph.nodes) if str(n.pattern) == text)


class TestWorkedExample:
    """The paper's Section 4 example: the 12-operation GTS."""

    def test_paper_tour_yields_twelve_operations(self):
        graph = figure4_graph()
        # The paper's tour: TP3 -> TP2 -> TP4 -> TP1.
        tour = [
            node_index(graph, "(00, w1i, r0j)"),
            node_index(graph, "(10, w1j, r1i)"),
            node_index(graph, "(00, w1j, r0i)"),
            node_index(graph, "(01, w1i, r1j)"),
        ]
        gts = build_gts(graph, tour)
        assert gts.length == 12
        assert gts_text(gts) == (
            "w0i, w0j, w1i, r0j, w1j, r1i, w0i, w0j, w1j, r0i, w1i, r1j"
        )

    def test_roles_assigned(self):
        graph = figure4_graph()
        tour = [
            node_index(graph, "(00, w1i, r0j)"),
            node_index(graph, "(10, w1j, r1i)"),
        ]
        gts = build_gts(graph, tour)
        roles = [s.role for s in gts.symbols]
        assert roles == [
            Role.SETUP, Role.SETUP, Role.EXCITE, Role.OBSERVE,
            Role.EXCITE, Role.OBSERVE,
        ]

    def test_zero_weight_edge_needs_no_setup(self):
        graph = figure4_graph()
        # TP3's observation state is 10 == TP2's init: no setup writes.
        tour = [
            node_index(graph, "(00, w1i, r0j)"),
            node_index(graph, "(10, w1j, r1i)"),
        ]
        gts = build_gts(graph, tour)
        setups = [s for s in gts.symbols if s.role is Role.SETUP]
        assert len(setups) == 2  # only the initial power-up writes

    def test_per_cell_length(self):
        graph = figure4_graph()
        tour = list(range(len(graph)))
        gts = build_gts(graph, tour)
        assert gts.per_cell_length(("i", "j")) <= gts.length

    def test_empty_tour(self):
        graph = figure4_graph()
        gts = build_gts(graph, [])
        assert gts.length == 0
