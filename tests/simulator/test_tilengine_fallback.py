"""No-NumPy behaviour of the lane-tiled backend.

These tests must pass with *and without* NumPy installed: the missing
dependency is simulated by clearing the module's import slot (and, for
the subprocess test, by genuinely blocking the import), so the suite
asserts the degradation contract everywhere:

* importing :mod:`repro.simulator.tilengine` always succeeds;
* constructing the engine/backend raises a clear, actionable error;
* resolving the ``bitparallel-np`` backend warns once and degrades to
  the pure-Python ``bitparallel`` engine with identical results.
"""

import os
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro.simulator.tilengine as tilengine
from repro.kernel import SimulationKernel
from repro.kernel.backends import (
    BitParallelBackend,
    BitParallelNumpyBackend,
    available_backends,
    resolve_backend,
)
from repro.march.catalog import MATS_PLUS_PLUS


@pytest.fixture
def without_numpy(monkeypatch):
    monkeypatch.setattr(tilengine, "_np", None)


def test_require_numpy_error_is_actionable(without_numpy):
    with pytest.raises(tilengine.NumpyUnavailableError) as excinfo:
        tilengine.require_numpy()
    message = str(excinfo.value)
    assert "NumPy" in message
    assert "[fast]" in message or "numpy>=1.24" in message
    assert "bitparallel" in message
    # It is an ImportError subclass, so generic handlers catch it.
    assert isinstance(excinfo.value, ImportError)


def test_helpers_report_unavailability(without_numpy):
    assert not tilengine.numpy_available()
    assert tilengine.numpy_version() is None
    assert available_backends()["bitparallel-np"] is False


def test_simulation_construction_raises(without_numpy, saf_list):
    with pytest.raises(tilengine.NumpyUnavailableError):
        tilengine.TiledSimulation(saf_list.instances(3), 3)


def test_backend_construction_raises(without_numpy):
    with pytest.raises(tilengine.NumpyUnavailableError) as excinfo:
        BitParallelNumpyBackend()
    assert "bitparallel-np" in str(excinfo.value)


def test_resolve_degrades_with_one_warning(without_numpy):
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        backend = resolve_backend("bitparallel-np")
    assert isinstance(backend, BitParallelBackend)
    degradations = [
        w for w in caught if issubclass(w.category, RuntimeWarning)
    ]
    assert len(degradations) == 1
    assert "falling back" in str(degradations[0].message)


def test_degraded_kernel_matches_serial(without_numpy, saf_tf_list):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        kernel = SimulationKernel(backend="bitparallel-np")
    degraded = kernel.detection_matrix([MATS_PLUS_PLUS], saf_tf_list, 3)
    serial = SimulationKernel(backend="serial").detection_matrix(
        [MATS_PLUS_PLUS], saf_tf_list, 3
    )
    assert degraded == serial
    assert kernel.backend.served.get("bitparallel", 0) > 0


def test_unknown_backend_error_marks_numpy_availability(without_numpy):
    with pytest.raises(ValueError) as excinfo:
        resolve_backend("bogus")
    message = str(excinfo.value)
    assert "bitparallel-np (unavailable: NumPy is not installed)" in message


def test_import_blocked_subprocess_degrades():
    """Genuine import blocking (not monkeypatching): a child process
    with ``numpy`` masked must still produce verdicts via fallback."""
    src = Path(__file__).resolve().parents[2] / "src"
    script = (
        "import sys, warnings\n"
        "sys.modules['numpy'] = None\n"  # force ImportError on import
        "import repro.simulator.tilengine as til\n"
        "assert til._np is None and not til.numpy_available()\n"
        "from repro.kernel import SimulationKernel\n"
        "from repro.faults.faultlist import FaultList\n"
        "from repro.march.catalog import MATS\n"
        "with warnings.catch_warnings(record=True) as caught:\n"
        "    warnings.simplefilter('always')\n"
        "    kernel = SimulationKernel(backend='bitparallel-np')\n"
        "assert any('falling back' in str(w.message) for w in caught)\n"
        "faults = FaultList.from_names('SAF')\n"
        "matrix = kernel.detection_matrix([MATS], faults, 3)\n"
        "reference = SimulationKernel().detection_matrix([MATS], faults, 3)\n"
        "assert matrix == reference\n"
        "print('DEGRADED-OK')\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        env={**os.environ, "PYTHONPATH": str(src)},
        timeout=120,
    )
    assert result.returncode == 0, result.stderr
    assert "DEGRADED-OK" in result.stdout
