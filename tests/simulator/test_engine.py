"""Tests for the March execution engine."""

import pytest

from repro.faults.instances import StuckAtInstance, TransitionFaultInstance
from repro.march.catalog import MATS, MARCH_C_MINUS
from repro.march.test import parse_march
from repro.memory.array import MemoryArray
from repro.simulator.engine import (
    count_verifying_reads,
    good_run,
    is_well_formed,
    run_march,
)


class TestGoodRuns:
    def test_good_memory_never_mismatches(self):
        run = good_run(MARCH_C_MINUS, size=5)
        assert not run.detected
        assert run.first_detection is None

    def test_read_records_have_positions(self):
        run = good_run(MATS, size=2)
        reads = run.verifying_reads()
        assert len(reads) == count_verifying_reads(MATS, 2) == 4
        assert {r.address for r in reads} == {0, 1}

    def test_final_contents(self):
        run = good_run(parse_march("{any(w1)}"), size=3)
        assert run.final_contents == (1, 1, 1)

    def test_malformed_test_detected(self):
        bad = parse_march("{any(w0); any(r1)}")
        assert good_run(bad, size=2).detected
        assert not is_well_formed(bad)

    def test_well_formed_checks_all_order_variants(self):
        assert is_well_formed(MATS)
        assert is_well_formed(MARCH_C_MINUS)


class TestFaultyRuns:
    def test_stuck_at_detected(self):
        memory = MemoryArray(3, fault=StuckAtInstance(1, 0))
        run = run_march(MATS, memory)
        assert run.detected
        hit = run.first_detection
        assert hit.address == 1
        assert hit.expected == 1 and hit.actual == 0

    def test_transition_fault_missed_by_mats(self):
        # MATS does not guarantee down-transition coverage.
        memory = MemoryArray(3, fault=TransitionFaultInstance(0, rising=False))
        run = run_march(MATS, memory)
        assert not run.detected

    def test_unknown_actual_is_not_detection(self):
        # A read of a floating value must not count as a definite
        # detection (worst-case semantics).
        from repro.faults.instances import DeadCellInstance
        from repro.memory.state import DASH

        class FloatsToDash(DeadCellInstance):
            def on_read(self, memory, address):
                if address == self.cell:
                    return DASH
                return memory.raw[address]

        memory = MemoryArray(2, fault=FloatsToDash(0, 0))
        run = run_march(MATS, memory)
        assert not run.detected


class TestActiveReads:
    def test_demoted_reads_do_not_verify(self):
        memory = MemoryArray(2, fault=StuckAtInstance(0, 0))
        run = run_march(MATS, memory, active_reads=set())
        assert not run.detected
        # The reads still executed.
        assert len(run.reads) == count_verifying_reads(MATS, 2)

    def test_selected_read_still_verifies(self):
        # MATS's r1 lives in its third element (index 2), op 0.
        memory = MemoryArray(2, fault=StuckAtInstance(0, 0))
        run = run_march(MATS, memory, active_reads={(2, 0)})
        assert run.detected
