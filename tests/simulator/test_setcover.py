"""Tests for the set covering solver (Section 6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulator.setcover import (
    greedy_cover,
    is_exact_cover_needed,
    minimum_cover,
)


def rows_of(*sets):
    return [frozenset(s) for s in sets]


class TestGreedy:
    def test_simple(self):
        rows = rows_of({0, 1}, {1, 2}, {2})
        chosen = greedy_cover(rows, {0, 1, 2})
        covered = set().union(*(rows[k] for k in chosen))
        assert covered == {0, 1, 2}

    def test_uncoverable(self):
        with pytest.raises(ValueError):
            greedy_cover(rows_of({0}), {0, 1})


class TestMinimumCover:
    def test_empty_universe(self):
        assert minimum_cover(rows_of({0}), set()) == []

    def test_single_row_dominates(self):
        rows = rows_of({0}, {1}, {0, 1, 2}, {2})
        assert minimum_cover(rows, {0, 1, 2}) == [2]

    def test_greedy_suboptimal_case(self):
        # Classic instance where greedy picks the big middle row first
        # but the optimum is the two side rows.
        rows = rows_of({0, 1, 2}, {0, 1, 3}, {2, 3})
        cover = minimum_cover(rows, {0, 1, 2, 3})
        assert len(cover) == 2

    def test_uncoverable(self):
        with pytest.raises(ValueError):
            minimum_cover(rows_of({0}), {0, 1})

    @given(
        st.lists(
            st.frozensets(st.integers(0, 7), min_size=1), min_size=1, max_size=8
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_minimum_is_valid_and_not_beaten_by_greedy(self, rows):
        universe = set().union(*rows)
        cover = minimum_cover(rows, universe)
        assert set().union(*(rows[k] for k in cover)) == universe
        assert len(cover) <= len(greedy_cover(rows, universe))


class TestExactCoverNeeded:
    def test_all_rows_needed(self):
        rows = rows_of({0}, {1}, {2})
        assert is_exact_cover_needed(rows, {0, 1, 2})

    def test_redundant_row(self):
        rows = rows_of({0, 1}, {1})
        assert not is_exact_cover_needed(rows, {0, 1})

    def test_empty_row_is_redundant(self):
        rows = rows_of({0}, set())
        assert not is_exact_cover_needed(rows, {0})
