"""Unit tests of the word-packed simulation engine.

The system-level contract (byte-identical detection matrices against
the serial backend over the full standard library) lives in
``tests/kernel/test_equivalence.py``; these tests pin down the engine's
building blocks: the packable/unpackable partition, the MaskTransition
compilation of fault primitives, per-fault-model packed semantics and
the worst-case conjunction across order variants.
"""

import pytest

from repro.faults.faultlist import FaultList
from repro.faults.instances import FaultCase, case
from repro.faults.library import MODEL_REGISTRY
from repro.faults.primitives import (
    Effect,
    FaultPrimitive,
    MaskTransition,
    Sensitization,
    parse_primitive,
)
from repro.kernel import MemoryPool, worst_case_detects
from repro.march.catalog import MARCH_C_MINUS, MATS, MATS_PLUS_PLUS
from repro.march.test import parse_march
from repro.memory.array import NullFaultInstance
from repro.simulator.bitengine import (
    PackedSimulation,
    UnpackableFaultError,
    lane_packable_case,
    packed_detects,
    partition_cases,
)


def serial_verdicts(test, cases, size):
    """Reference: the scalar worst-case path, one case at a time."""
    pool = MemoryPool()
    variants = test.concrete_order_variants()
    return [
        worst_case_detects(variants, c.variants, size, pool) for c in cases
    ]


# -- mask-transition compilation -----------------------------------------------


class TestMaskTransitions:
    def test_transition_fault_loses_the_write(self):
        prim = FaultPrimitive(Sensitization.UP, Effect.NO_CHANGE,
                              two_cell=False)
        (rule,) = prim.mask_transitions()
        assert rule == MaskTransition("w", old_value=0, trigger_value=1,
                                      lose_write=True)

    def test_force_matching_the_write_is_not_a_deviation(self):
        prim = parse_primitive("<up,1>")
        assert prim.mask_transitions() == ()

    def test_any_transition_invert_yields_both_rules(self):
        prim = parse_primitive("<^v,~>")
        rules = prim.mask_transitions()
        assert len(rules) == 2
        assert all(r.lose_write for r in rules)
        assert {r.old_value for r in rules} == {0, 1}

    def test_read_force_is_a_destructive_observed_read(self):
        prim = FaultPrimitive(Sensitization.READ, Effect.FORCE_1,
                              two_cell=False)
        (rule,) = prim.mask_transitions()
        assert rule.trigger == "r"
        assert rule.old_value == 0
        assert rule.flip_store and rule.flip_report

    def test_wait_force_decays_the_cell(self):
        prim = FaultPrimitive(Sensitization.WAIT, Effect.FORCE_0,
                              two_cell=False)
        (rule,) = prim.mask_transitions()
        assert rule == MaskTransition("T", old_value=1, flip_store=True)

    def test_state_sensitizations_are_not_lane_local(self):
        prim = parse_primitive("<0,1>")
        assert not prim.lane_packable
        with pytest.raises(ValueError, match="coupling-group"):
            prim.mask_transitions()

    def test_mask_transition_validates_its_shape(self):
        with pytest.raises(ValueError):
            MaskTransition("x", old_value=0)
        with pytest.raises(ValueError):
            MaskTransition("r", old_value=0, trigger_value=1)
        with pytest.raises(ValueError):
            MaskTransition("w", old_value=0)


# -- the packable/unpackable partition -----------------------------------------


class TestPartition:
    def test_every_standard_model_packs(self):
        # Since the per-lane latch word landed, SOF packs too: the
        # whole standard library runs word-packed.
        for name, model_cls in MODEL_REGISTRY.items():
            for fault_case in model_cls().instances(3):
                assert lane_packable_case(fault_case), (
                    name, fault_case.name,
                )

    def test_unknown_instance_types_are_unpackable(self):
        class CustomInstance(NullFaultInstance):
            pass

        custom = case("custom", CustomInstance)
        assert not lane_packable_case(custom)

    def test_subclasses_do_not_inherit_the_encoding(self):
        # A subclass may override any hook; exact-type dispatch keeps
        # the fallback honest.
        from repro.faults.instances import StuckAtInstance

        class WeirdStuck(StuckAtInstance):
            def on_read(self, memory, address):
                return "-"

        weird = case("weird", lambda: WeirdStuck(0, 1))
        assert not lane_packable_case(weird)

    def test_partition_preserves_order(self):
        class CustomInstance(NullFaultInstance):
            pass

        saf = FaultList.from_names("SAF").instances(3)
        custom = [case("custom@0", CustomInstance),
                  case("custom@1", CustomInstance)]
        mixed = [saf[0], custom[0], saf[1], custom[1]]
        packable, unpackable = partition_cases(mixed)
        assert packable == [saf[0], saf[1]]
        assert unpackable == custom

    def test_packed_simulation_rejects_unpackable_cases(self):
        class CustomInstance(NullFaultInstance):
            pass

        unknown = case("unknown", CustomInstance)
        with pytest.raises(UnpackableFaultError, match="CustomInstance"):
            PackedSimulation([unknown], 3)


# -- per-model packed semantics ------------------------------------------------


MODEL_TESTS = {
    "SAF": MATS,
    "TF": MATS_PLUS_PLUS,
    "RDF": MARCH_C_MINUS,
    "DRDF": parse_march("{up(w0); up(r0,r0,w1); down(r1,r1)}"),
    "IRF": MARCH_C_MINUS,
    "WDF": parse_march("{up(w0); up(w0,r0,w1); down(w1,r1)}"),
    "DRF": parse_march("{up(w0); Del; up(r0,w1); Del; down(r1)}"),
    "SOF": MARCH_C_MINUS,
    "ADF": MARCH_C_MINUS,
    "CFIN": MARCH_C_MINUS,
    "CFID": MARCH_C_MINUS,
    "CFST": MARCH_C_MINUS,
    "CFRD": MARCH_C_MINUS,
}


@pytest.mark.parametrize("model_name", sorted(MODEL_TESTS))
def test_packed_verdicts_match_serial_per_model(model_name):
    """Each packable model agrees with the scalar engine, detected or
    not, on a test chosen to exercise its trigger (including partial
    misses: MATS against TF, MarchC- against everything)."""
    test = MODEL_TESTS[model_name]
    for size in (3, 4):
        cases = FaultList.from_names(model_name).instances(size)
        assert packed_detects(test, cases, size) == serial_verdicts(
            test, cases, size
        ), (model_name, size)


class TestStuckOpenLatch:
    """The per-lane sense-amp latch word must mirror the scalar SOF."""

    def test_sof_packed_verdicts_match_serial_across_tests(self):
        tests = [
            MATS,
            MATS_PLUS_PLUS,
            MARCH_C_MINUS,
            # A read of another cell between writing and reading the
            # open cell reloads the latch: the observed value depends
            # on address order, the classic SOF trap.
            parse_march("{up(w0); up(r0); up(w1); down(r1)}"),
            parse_march("{up(w0); down(r0,w1,r1)}"),
        ]
        for size in (3, 4, 5):
            cases = FaultList.from_names("SOF").instances(size)
            for test in tests:
                assert packed_detects(test, cases, size) == serial_verdicts(
                    test, cases, size
                ), (str(test), size)

    def test_latch_reload_requires_definite_values(self):
        # Reads of non-initialized ('-') cells must not reload the
        # latch; only the power-up content can be observed.
        test = parse_march("{up(r); up(r0)}")
        cases = FaultList.from_names("SOF").instances(3)
        assert packed_detects(test, cases, 3) == serial_verdicts(
            test, cases, 3
        )

    def test_sof_mixes_with_other_packed_models_in_one_word(self):
        cases = FaultList.from_names("SAF", "SOF", "CFID").instances(3)
        assert packed_detects(MARCH_C_MINUS, cases, 3) == serial_verdicts(
            MARCH_C_MINUS, cases, 3
        )


def test_packed_partial_detection_is_per_case():
    # MATS misses TF-down but a march with a second read pass catches
    # it; verdicts must differ per case, not per batch.
    cases = FaultList.from_names("TF").instances(3)
    verdicts = packed_detects(MATS, cases, 3)
    assert True in verdicts or False in verdicts
    assert verdicts == serial_verdicts(MATS, cases, 3)


# -- engine internals ----------------------------------------------------------


class TestPackedSimulation:
    def test_good_lane_is_silent_on_well_formed_tests(self):
        cases = FaultList.from_names("SAF").instances(3)
        sim = PackedSimulation(cases, 3)
        for variant in MARCH_C_MINUS.concrete_order_variants():
            assert sim.run_variant(variant) & 1 == 0

    def test_good_lane_flags_malformed_expectations(self):
        cases = FaultList.from_names("SAF").instances(3)
        sim = PackedSimulation(cases, 3)
        malformed = parse_march("{up(w1); up(r0)}")
        (variant,) = malformed.concrete_order_variants()
        assert sim.run_variant(variant) & 1 == 1

    def test_worst_case_requires_every_order_variant(self):
        # {any(w0); any(r0,w1); any(r1,w0)} detects TF-up ascending but
        # the worst case must conjoin all realizations.
        test = parse_march("{any(w0); any(r0,w1); any(r1,w0); any(r0)}")
        cases = FaultList.from_names("TF").instances(3)
        sim = PackedSimulation(cases, 3)
        assert sim.worst_case_verdicts(test) == serial_verdicts(
            test, cases, 3
        )

    def test_one_simulation_serves_many_tests(self):
        cases = FaultList.from_names("SAF", "TF").instances(3)
        sim = PackedSimulation(cases, 3)
        for test in (MATS, MATS_PLUS_PLUS, MARCH_C_MINUS):
            assert sim.worst_case_verdicts(test) == serial_verdicts(
                test, cases, 3
            )

    def test_non_verifying_reads_still_disturb(self):
        # A plain r read must fire read-disturb side effects without
        # verifying; only the final r0 may detect.
        test = parse_march("{up(w0); up(r); up(r0)}")
        cases = FaultList.from_names("RDF").instances(3)
        assert packed_detects(test, cases, 3) == serial_verdicts(
            test, cases, 3
        )

    def test_rejects_empty_memory(self):
        with pytest.raises(ValueError):
            PackedSimulation([], 0)

    def test_case_masks_cover_all_variant_lanes(self):
        cases = FaultList.from_names("ADF").instances(3)  # ADF-C: 4 variants
        sim = PackedSimulation(cases, 3)
        packed_lanes = 0
        for mask in sim.case_masks:
            assert mask and mask & 1 == 0  # never the reference lane
            packed_lanes |= mask
        assert packed_lanes == sim.full & ~1
