"""Tests for the Coverage Matrix and non-redundancy (Section 6)."""

import pytest

from repro.faults import FaultList
from repro.march.catalog import MARCH_C, MARCH_C_MINUS, MATS
from repro.march.test import parse_march
from repro.simulator.coverage import (
    concrete_realization,
    coverage_matrix,
    demotion_redundant_blocks,
    elementary_blocks,
    is_non_redundant,
)


class TestElementaryBlocks:
    def test_blocks_are_verifying_reads(self):
        blocks = elementary_blocks(MARCH_C_MINUS)
        assert len(blocks) == 5  # one read per element but the first

    def test_block_describe(self):
        block = elementary_blocks(MATS)[0]
        assert "r0" in block.describe(MATS)


class TestConcreteRealization:
    def test_any_resolved(self):
        from repro.march.element import AddressOrder

        test = concrete_realization(MATS, up=True)
        assert all(
            e.order is AddressOrder.UP for e in test.march_elements
        )


class TestCoverageMatrix:
    def test_mats_matrix_covers_saf(self, saf_list):
        cases = saf_list.instances(3)
        cm = coverage_matrix(MATS, cases, 3)
        assert cm.covers_all
        # r0 catches SA1, r1 catches SA0: both blocks needed.
        assert cm.is_non_redundant()
        assert cm.redundant_blocks() == []

    def test_march_c_has_redundant_block(self):
        # March C's extra ⇕(r0) is the textbook redundancy March C-
        # removes.
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        cases = faults.instances(3)
        cm = coverage_matrix(MARCH_C, cases, 3)
        assert cm.covers_all
        assert not cm.is_non_redundant()
        assert cm.redundant_blocks()

    def test_march_c_minus_non_redundant_by_demotion(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        cases = faults.instances(3)
        assert is_non_redundant(MARCH_C_MINUS, cases, 3)

    def test_march_c_redundant_by_demotion(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        cases = faults.instances(3)
        redundant = demotion_redundant_blocks(MARCH_C, cases, 3)
        assert redundant

    def test_incomplete_coverage_is_redundant(self, saf_tf_list):
        cases = saf_tf_list.instances(3)
        cm = coverage_matrix(MATS, cases, 3)
        assert not cm.covers_all
        assert not cm.is_non_redundant()

    def test_minimum_blocks_cover_everything(self, saf_list):
        cases = saf_list.instances(3)
        cm = coverage_matrix(MATS, cases, 3)
        chosen = cm.minimum_blocks()
        rows = cm.rows_as_sets()
        covered = set().union(*(rows[k] for k in chosen))
        assert covered == cm.covered_columns
