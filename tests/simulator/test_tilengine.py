"""Lane-tiled (NumPy) engine properties.

The tiled engine's contract is byte-identity with the bignum engine
(and hence, transitively, with the scalar engine) for every packable
case set.  The suite here adds what the kernel-level equivalence tests
cannot: exact control over the *lane count*, so the partial-tile
masking of the last uint64 word is exercised at every boundary shape
(1, 63, 64, 65, 127, 129, ... lanes), plus the compact (gather/
scatter) layout and the fork-composed chunking.
"""

import random

import pytest

np = pytest.importorskip("numpy")

from repro.faults.faultlist import FaultList
from repro.faults.library import MODEL_REGISTRY
from repro.march.catalog import MARCH_C_MINUS, MATS, MATS_PLUS_PLUS
from repro.simulator.bitengine import PackedSimulation, partition_cases
from repro.simulator.tilengine import (
    WORD_BITS,
    TiledSimulation,
    chunk_cases,
    numpy_available,
    tiled_detects,
)

TESTS = [MATS, MATS_PLUS_PLUS, MARCH_C_MINUS]

#: Total lane counts (reference lane included) around the word
#: boundaries: a sub-word tile, full single tile, one-bit spill into a
#: second tile, two full tiles, and a spill into a third.
BOUNDARY_LANES = [2, 63, 64, 65, 127, 128, 129]


@pytest.fixture(scope="module")
def packable_pool():
    """Every packable standard case at size 4, shuffled deterministically."""
    cases = FaultList.from_names(*MODEL_REGISTRY).instances(4)
    packable, _ = partition_cases(cases)
    rng = random.Random(0xC0FFEE)
    rng.shuffle(packable)
    return packable


def _take_lanes(pool, total_fault_lanes):
    """A case subset with exactly ``total_fault_lanes`` variant lanes."""
    chosen, lanes = [], 0
    for case in pool:
        width = len(case.variants)
        if lanes + width <= total_fault_lanes:
            chosen.append(case)
            lanes += width
            if lanes == total_fault_lanes:
                return chosen
    raise AssertionError(
        f"pool cannot realize {total_fault_lanes} lanes exactly"
    )


def test_numpy_available_here():
    assert numpy_available()


@pytest.mark.parametrize("total", BOUNDARY_LANES)
def test_boundary_lane_counts_match_bignum(total, packable_pool):
    """Partial-tile masking at every word-boundary lane count."""
    cases = _take_lanes(packable_pool, total - 1)
    tiled = TiledSimulation(cases, 4)
    packed = PackedSimulation(cases, 4)
    assert tiled.lanes == total
    assert tiled.tiles == max(1, -(-total // WORD_BITS))
    for test in TESTS:
        assert tiled.worst_case_verdicts(test) == \
            packed.worst_case_verdicts(test), test.name


@pytest.mark.parametrize("total", BOUNDARY_LANES)
def test_boundary_full_mask_shape(total, packable_pool):
    cases = _take_lanes(packable_pool, total - 1)
    tiled = TiledSimulation(cases, 4)
    spill = total % WORD_BITS
    if spill:
        assert int(tiled.full[-1]) == (1 << spill) - 1
    else:
        assert int(tiled.full[-1]) == (1 << WORD_BITS) - 1
    assert all(
        int(word) == (1 << WORD_BITS) - 1 for word in tiled.full[:-1]
    )


def test_fuzzed_random_subsets_match_bignum(packable_pool):
    rng = random.Random(2002)
    for _ in range(12):
        cases = rng.sample(packable_pool, rng.randrange(1, 40))
        tiled = TiledSimulation(cases, 4)
        packed = PackedSimulation(cases, 4)
        test = rng.choice(TESTS)
        assert tiled.worst_case_verdicts(test) == \
            packed.worst_case_verdicts(test)


def test_compact_layout_matches_dense(packable_pool):
    """Force the gather/scatter layout on a workload the dense layout
    would normally serve, and require identical verdicts."""
    cases = packable_pool[:60]
    dense = TiledSimulation(cases, 4)
    compact = TiledSimulation(cases, 4, dense_limit=0)
    assert dense._dense and not compact._dense
    for test in TESTS:
        assert compact.worst_case_verdicts(test) == \
            dense.worst_case_verdicts(test), test.name


def test_tiled_detects_one_shot(packable_pool):
    cases = packable_pool[:10]
    assert tiled_detects(MATS_PLUS_PLUS, cases, 4) == \
        PackedSimulation(cases, 4).worst_case_verdicts(MATS_PLUS_PLUS)


def test_delay_elements_match_bignum():
    from repro.march.test import parse_march

    test = parse_march("{up(w0); Del; up(r0,w1); Del; down(r1,w0)}")
    cases = FaultList.from_names("DRF", "SAF", "TF").instances(4)
    assert TiledSimulation(cases, 4).worst_case_verdicts(test) == \
        PackedSimulation(cases, 4).worst_case_verdicts(test)


def test_sof_latch_matches_bignum():
    cases = FaultList.from_names("SOF", "SAF").instances(5)
    tiled = TiledSimulation(cases, 5)
    packed = PackedSimulation(cases, 5)
    for test in TESTS:
        assert tiled.worst_case_verdicts(test) == \
            packed.worst_case_verdicts(test), test.name


def test_chunk_cases_partitions_in_order(packable_pool):
    cases = packable_pool[:23]
    chunks = chunk_cases(cases, 4)
    assert len(chunks) == 4
    flattened = [case for chunk in chunks for case in chunk]
    assert flattened == list(cases)
    assert all(chunk for chunk in chunks)
    # Degenerate shapes.
    assert chunk_cases(cases, 1) == [list(cases)]
    assert len(chunk_cases(cases[:2], 16)) == 2


def test_chunked_verdicts_concatenate_to_whole(packable_pool):
    cases = packable_pool[:40]
    whole = TiledSimulation(cases, 4)
    for test in TESTS:
        expected = whole.worst_case_verdicts(test)
        split = []
        for chunk in chunk_cases(cases, 3):
            split.extend(TiledSimulation(chunk, 4).worst_case_verdicts(test))
        assert split == expected, test.name


def test_fork_composition_matches_single_simulation(packable_pool):
    """The backend's fork fan-out must be byte-identical to one tile."""
    import multiprocessing

    try:
        multiprocessing.get_context("fork")
    except ValueError:
        pytest.skip("fork start method unavailable")
    from repro.kernel import SimulationKernel
    from repro.kernel.backends import BitParallelNumpyBackend

    lib = FaultList.from_names("SAF", "TF", "CFIN")
    serial = SimulationKernel(backend="serial").detection_matrix(
        TESTS, lib, 4
    )
    backend = BitParallelNumpyBackend(processes=2)
    backend.MIN_FANOUT_LANES = 8  # force fan-out on a small workload
    kernel = SimulationKernel(backend=backend)
    assert kernel.detection_matrix(TESTS, lib, 4) == serial
    assert backend.served.get("bitparallel-np-fork", 0) > 0
