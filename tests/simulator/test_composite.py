"""Tests for composite (multi-defect) fault injection."""

import pytest

from repro.faults.instances import (
    CouplingIdempotentInstance,
    IncorrectReadInstance,
    StuckAtInstance,
    TransitionFaultInstance,
)
from repro.march.catalog import MATS
from repro.memory.array import MemoryArray
from repro.simulator.composite import CompositeFaultInstance, compose
from repro.simulator.engine import run_march


class TestComposition:
    def test_needs_components(self):
        with pytest.raises(ValueError):
            CompositeFaultInstance([])

    def test_two_stuck_cells(self):
        memory = MemoryArray(
            4, fault=compose(StuckAtInstance(0, 0), StuckAtInstance(2, 1))
        )
        memory.write(0, 1)
        memory.write(2, 0)
        memory.write(3, 1)
        assert memory.read(0) == 0
        assert memory.read(2) == 1
        assert memory.read(3) == 1  # healthy cell unaffected

    def test_wait_reaches_all_components(self):
        from repro.faults.instances import DataRetentionInstance

        memory = MemoryArray(
            2,
            fault=compose(
                DataRetentionInstance(0, 1), DataRetentionInstance(1, 1)
            ),
        )
        memory.write(0, 1)
        memory.write(1, 1)
        memory.wait()
        assert memory.raw == [0, 0]

    def test_interacting_defects_can_mask(self):
        # A stuck-at-1 victim hides an idempotent coupling forcing 1.
        coupled = CouplingIdempotentInstance(0, 1, True, 1)
        stuck = StuckAtInstance(1, 1)
        memory = MemoryArray(2, fault=compose(stuck, coupled))
        memory.write(1, 0)   # stuck: stays 1
        memory.write(0, 0)
        memory.write(0, 1)   # coupling fires: victim forced 1 (again)
        assert memory.read(1) == 1

    def test_read_chain_returns_last_view(self):
        # IRF layered over a healthy read path still lies.
        memory = MemoryArray(2, fault=compose(IncorrectReadInstance(0, 1)))
        memory.write(0, 1)
        assert memory.read(0) == 0


class TestDetection:
    def test_march_detects_composite(self):
        instance = compose(
            StuckAtInstance(1, 0), TransitionFaultInstance(2, rising=False)
        )
        memory = MemoryArray(4, fault=instance)
        run = run_march(MATS.concrete_order_variants()[0], memory)
        assert run.detected

    def test_composite_of_undetectables_escapes(self):
        # Two down-transition faults: MATS misses each, and the
        # composite as well -- composition does not create coverage.
        instance = compose(
            TransitionFaultInstance(0, rising=False),
            TransitionFaultInstance(1, rising=False),
        )
        memory = MemoryArray(3, fault=instance)
        run = run_march(MATS.concrete_order_variants()[0], memory)
        assert not run.detected
