"""Tests for fault simulation: which classic tests detect which faults.

These cross-checks mirror the known coverage table of the literature
(van de Goor [1]): e.g. MATS covers SAF only; March C- covers SAF, TF,
ADF and unlinked coupling faults.
"""

import pytest

from repro.faults import FaultList
from repro.march.catalog import (
    MARCH_C_MINUS,
    MARCH_X,
    MATS,
    MATS_PLUS_PLUS,
    MSCAN,
)
from repro.simulator.faultsim import (
    detection_matrix,
    detects_case,
    simulate,
    simulate_fault_list,
)


class TestKnownCoverage:
    def test_mats_covers_saf(self, saf_list):
        report = simulate_fault_list(MATS, saf_list)
        assert report.complete
        assert report.coverage == 1.0

    def test_mats_misses_tf(self):
        faults = FaultList.from_names("TF")
        report = simulate_fault_list(MATS, faults)
        assert not report.complete
        assert any("TFdown" in name for name in report.missed)

    def test_mats_plus_plus_covers_saf_tf_adf(self):
        faults = FaultList.from_names("SAF", "TF", "ADF")
        assert simulate_fault_list(MATS_PLUS_PLUS, faults).complete

    def test_march_x_covers_cfin(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN")
        assert simulate_fault_list(MARCH_X, faults).complete

    def test_march_c_minus_covers_table3_row5(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        assert simulate_fault_list(MARCH_C_MINUS, faults).complete

    def test_march_x_misses_cfid(self):
        faults = FaultList.from_names("CFID")
        report = simulate_fault_list(MARCH_X, faults)
        assert not report.complete

    def test_mscan_misses_address_faults(self):
        faults = FaultList.from_names("ADF")
        report = simulate_fault_list(MSCAN, faults)
        assert not report.complete


class TestWorstCaseSemantics:
    def test_every_variant_must_be_detected(self):
        # SOF cases carry two latch variants; a test detecting only one
        # latch polarity must not claim the case.
        from repro.faults.instances import FaultCase, StuckOpenInstance
        from repro.march.test import parse_march

        case = FaultCase(
            "SOF@0",
            (
                lambda: StuckOpenInstance(0, initial_latch=0),
                lambda: StuckOpenInstance(0, initial_latch=1),
            ),
        )
        # Only reads 1: the latch-1 variant sails through.
        weak = parse_march("{any(w1); any(r1)}")
        assert not detects_case(weak, case, 3)

    def test_any_order_must_hold_both_ways(self):
        from repro.faults.instances import CouplingIdempotentInstance, FaultCase
        from repro.march.test import parse_march

        case = FaultCase(
            "CFid<up,0> 2->0",
            (lambda: CouplingIdempotentInstance(2, 0, True, 0),),
        )
        # Detects with the DOWN realization of the second element only;
        # since it is declared ANY, the case must not count as covered.
        test = parse_march("{any(w1); any(r1,w0,w1); any(r1)}")
        down_only = parse_march("{up(w1); down(r1,w0,w1); up(r1)}")
        assert detects_case(down_only, case, 3)


class TestReports:
    def test_simulation_report_counters(self, saf_tf_list):
        report = simulate_fault_list(MATS, saf_tf_list)
        assert 0 < report.coverage < 1
        assert "fault cases detected" in str(report)

    def test_detection_matrix_shape(self, saf_list):
        matrix = detection_matrix([MATS, MSCAN], saf_list)
        assert set(matrix) == {"MATS", "MSCAN"}
        assert all(matrix["MATS"].values())

    def test_simulate_empty_cases(self):
        # An empty run must not masquerade as full coverage: it reports
        # 0.0 and warns at simulation time.
        from repro.kernel import EmptyFaultListWarning

        with pytest.warns(EmptyFaultListWarning):
            report = simulate(MATS, [])
        assert report.coverage == 0.0
        assert not report.detected and not report.missed
