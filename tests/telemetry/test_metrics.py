"""The metrics registry: instruments, labels, snapshots, merging."""

import json

import pytest

from repro.telemetry import (
    DEFAULT_BOUNDS,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_total,
    merge_snapshots,
)
from repro.telemetry.metrics import MAX_SERIES_PER_METRIC, OVERFLOW_LABELS


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(41)
        assert counter.value == 42
        assert counter.sample() == {"value": 42}

    def test_gauge_sets_and_moves(self):
        gauge = Gauge()
        gauge.set(7)
        gauge.inc(3)
        gauge.dec(4)
        assert gauge.value == 6

    def test_histogram_bucket_edges_are_inclusive_upper_bounds(self):
        histogram = Histogram(bounds=(0.1, 1.0))
        # bucket[i] counts observations <= bounds[i]; a value landing
        # exactly on a bound belongs to that bound's bucket.
        histogram.observe(0.1)
        histogram.observe(0.10001)
        histogram.observe(1.0)
        histogram.observe(2.0)  # above the last bound: overflow bucket
        assert histogram.buckets == [1, 2, 1]
        assert histogram.count == 4
        assert histogram.sample()["sum"] == pytest.approx(3.20001)

    def test_histogram_default_bounds_are_the_shared_fixed_set(self):
        assert Histogram().bounds == DEFAULT_BOUNDS
        assert len(Histogram().buckets) == len(DEFAULT_BOUNDS) + 1

    def test_histogram_rejects_unsorted_or_empty_bounds(self):
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=(1.0, 0.5))
        with pytest.raises(ValueError, match="ascending"):
            Histogram(bounds=())


class TestRegistry:
    def test_series_identity_is_the_sorted_label_set(self):
        registry = MetricsRegistry()
        registry.counter("hits", tier="memory", op="get").inc()
        registry.counter("hits", op="get", tier="memory").inc()
        series = registry.series("hits")
        assert len(series) == 1
        assert series[0] == {
            "labels": {"op": "get", "tier": "memory"}, "value": 2,
        }

    def test_kind_conflicts_are_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="not a gauge"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="not a histogram"):
            registry.histogram("x")

    def test_cardinality_cap_collapses_into_one_overflow_series(self):
        registry = MetricsRegistry(max_series=3)
        for i in range(10):
            registry.counter("runaway", shard=i).inc()
        series = registry.series("runaway")
        assert len(series) == 4  # 3 real + 1 overflow
        overflow = [
            entry for entry in series
            if entry["labels"] == dict(OVERFLOW_LABELS)
        ]
        assert len(overflow) == 1
        assert overflow[0]["value"] == 7
        # The default cap is generous enough for every built-in label
        # source (backends x strategies x tiers).
        assert MAX_SERIES_PER_METRIC >= 64

    def test_adopt_registers_an_externally_owned_counter(self):
        registry = MetricsRegistry()
        owned = Counter()
        assert registry.adopt("cache.hits", owned, tier="memory") is owned
        owned.inc(5)
        assert registry.series("cache.hits")[0]["value"] == 5

    def test_adopt_rejects_non_instruments(self):
        with pytest.raises(TypeError, match="cannot adopt"):
            MetricsRegistry().adopt("x", object())

    def test_collector_samples_at_snapshot_time(self):
        registry = MetricsRegistry()
        served = {"bitparallel": 0}
        registry.collector(
            "served",
            lambda: [
                ({"strategy": strategy}, count)
                for strategy, count in sorted(served.items())
            ],
        )
        assert registry.series("served")[0]["value"] == 0
        served["bitparallel"] = 12
        served["serial"] = 3
        assert registry.series("served") == [
            {"labels": {"strategy": "bitparallel"}, "value": 12},
            {"labels": {"strategy": "serial"}, "value": 3},
        ]

    def test_collector_rejects_histogram_kind(self):
        with pytest.raises(ValueError, match="scalar"):
            MetricsRegistry().collector("x", lambda: [], kind="histogram")

    def test_snapshot_is_deterministic_and_json_round_trips(self):
        def build(order):
            registry = MetricsRegistry()
            for name, labels in order:
                registry.counter(name, **labels).inc()
            return registry.snapshot()

        forward = build([("b", {"x": 1}), ("a", {}), ("b", {"x": 0})])
        backward = build([("b", {"x": 0}), ("a", {}), ("b", {"x": 1})])
        assert forward == backward
        dumped = json.dumps(forward, sort_keys=True)
        assert json.loads(dumped) == forward
        assert forward["schema"] == SNAPSHOT_SCHEMA

    def test_clear_drops_everything(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.collector("y", lambda: [({}, 1)])
        registry.clear()
        assert registry.snapshot()["metrics"] == {}


class TestMergeSnapshots:
    def test_counters_add_and_gauges_take_the_maximum(self):
        first = MetricsRegistry()
        first.counter("hits", tier="memory").inc(2)
        first.gauge("pool").set(3)
        second = MetricsRegistry()
        second.counter("hits", tier="memory").inc(5)
        second.counter("hits", tier="store").inc(1)
        second.gauge("pool").set(2)
        merged = merge_snapshots([first.snapshot(), second.snapshot()])
        assert counter_total(merged, "hits") == 8
        series = {
            tuple(sorted(entry["labels"].items())): entry["value"]
            for entry in merged["metrics"]["hits"]["series"]
        }
        assert series == {
            (("tier", "memory"),): 7, (("tier", "store"),): 1,
        }
        assert merged["metrics"]["pool"]["series"][0]["value"] == 3

    def test_histograms_add_bucket_by_bucket(self):
        snapshots = []
        for values in ((0.05,), (0.05, 0.5)):
            registry = MetricsRegistry()
            histogram = registry.histogram("lat", bounds=(0.1, 1.0))
            for value in values:
                histogram.observe(value)
            snapshots.append(registry.snapshot())
        merged = merge_snapshots(snapshots)
        entry = merged["metrics"]["lat"]["series"][0]
        assert entry["buckets"] == [2, 1, 0]
        assert entry["count"] == 3
        assert entry["sum"] == pytest.approx(0.6)

    def test_mismatched_histogram_bounds_refuse_loudly(self):
        snapshots = []
        for bounds in ((0.1,), (0.2,)):
            registry = MetricsRegistry()
            registry.histogram("lat", bounds=bounds).observe(0.05)
            snapshots.append(registry.snapshot())
        with pytest.raises(ValueError, match="bounds differ"):
            merge_snapshots(snapshots)

    def test_kind_conflicts_refuse_loudly(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ValueError, match="cannot merge metric"):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_merge_does_not_mutate_its_inputs(self):
        registry = MetricsRegistry()
        registry.counter("x").inc(1)
        snapshot = registry.snapshot()
        merge_snapshots([snapshot, snapshot])
        assert counter_total(snapshot, "x") == 1
