"""The span tracer: nesting, fake-clock schedules, caps, flattening."""

import json
import threading

from repro.telemetry import (
    NULL_SPAN,
    SpanTracer,
    Telemetry,
    flatten_span_trees,
    write_span_log,
)


class FakeClock:
    """A monotonic clock tests advance by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestSpanTracer:
    def test_exact_timings_under_an_injected_clock(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("outer", task="t") as outer:
            clock.advance(1.0)
            with tracer.span("inner"):
                clock.advance(0.25)
            clock.advance(0.5)
        assert outer.start == 0.0
        assert outer.seconds == 1.75
        [tree] = tracer.span_trees()
        assert tree["name"] == "outer"
        assert tree["attrs"] == {"task": "t"}
        [child] = tree["children"]
        assert child["name"] == "inner"
        assert child["start"] == 1.0
        assert child["seconds"] == 0.25

    def test_siblings_attach_in_order(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("root"):
            with tracer.span("first"):
                pass
            with tracer.span("second"):
                pass
        [tree] = tracer.span_trees()
        assert [c["name"] for c in tree["children"]] == [
            "first", "second",
        ]

    def test_annotate_attaches_mid_scope_attributes(self):
        tracer = SpanTracer(clock=FakeClock())
        with tracer.span("batch") as span:
            span.annotate(tasks=12)
        assert tracer.span_trees()[0]["attrs"] == {"tasks": 12}

    def test_max_spans_cap_hands_out_the_null_span(self):
        tracer = SpanTracer(clock=FakeClock(), max_spans=2)
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        extra = tracer.span("c")
        assert extra is NULL_SPAN
        with extra:  # still a working context manager
            extra.annotate(ignored=True)
        assert tracer.recorded == 2
        assert tracer.dropped == 1
        assert len(tracer.span_trees()) == 2

    def test_threads_build_independent_trees(self):
        tracer = SpanTracer(clock=FakeClock())

        def work(name):
            with tracer.span(name):
                with tracer.span(f"{name}.child"):
                    pass

        threads = [
            threading.Thread(target=work, args=(f"t{i}",))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        trees = tracer.span_trees()
        # Four roots, each with exactly its own child: no tree ever
        # adopted another thread's span.
        assert sorted(t["name"] for t in trees) == [
            "t0", "t1", "t2", "t3",
        ]
        for tree in trees:
            assert [c["name"] for c in tree["children"]] == [
                f"{tree['name']}.child"
            ]

    def test_clear_resets_the_cap_budget(self):
        tracer = SpanTracer(clock=FakeClock(), max_spans=1)
        with tracer.span("a"):
            pass
        tracer.clear()
        with tracer.span("b"):
            pass
        assert [t["name"] for t in tracer.span_trees()] == ["b"]


class TestFlattening:
    def tree(self):
        clock = FakeClock()
        tracer = SpanTracer(clock=clock)
        with tracer.span("job", test="MATS"):
            clock.advance(1)
            with tracer.span("batch"):
                clock.advance(1)
        return tracer.span_trees()

    def test_flatten_is_preorder_with_depth_and_parent(self):
        lines = list(flatten_span_trees(self.tree()))
        assert [(l["name"], l["depth"], l["parent"]) for l in lines] == [
            ("job", 0, None), ("batch", 1, "job"),
        ]
        assert lines[0]["attrs"] == {"test": "MATS"}
        assert "attrs" not in lines[1]

    def test_write_span_log_emits_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        count = write_span_log(self.tree(), str(path))
        lines = path.read_text().splitlines()
        assert count == len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "job"
        assert parsed[1]["seconds"] == 1.0


class TestTelemetryFacade:
    def test_injected_clock_feeds_both_surfaces(self):
        clock = FakeClock()
        telemetry = Telemetry(clock=clock)
        assert telemetry.enabled
        started = telemetry.clock()
        with telemetry.span("scope"):
            clock.advance(2.0)
        telemetry.histogram("lat").observe(telemetry.clock() - started)
        snapshot = telemetry.snapshot()
        entry = snapshot["metrics"]["lat"]["series"][0]
        assert entry["sum"] == 2.0
        assert telemetry.span_trees()[0]["seconds"] == 2.0
