"""Telemetry threaded through the kernel, campaign, daemon and CLI."""

import json

import pytest

from repro.cli import main
from repro.faults.faultlist import FaultList
from repro.kernel import SimKey, SimulationKernel
from repro.march.catalog import by_name
from repro.store.campaign import CampaignSpec, run_campaign, \
    normalized_manifest
from repro.store.service import SERVICE_MAGIC, ServiceStore, VerdictService
from repro.telemetry import TELEMETRY_OFF, Telemetry, counter_total

def key(signature="{up(w0)}", case="SA0@0", size=3, domain="sp"):
    return SimKey(signature, case, size, domain)


SPEC = {
    "name": "telemetry-unit",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["serial"],
}


class TestKernelTelemetry:
    def simulate(self, telemetry=None, backend="serial"):
        kernel = SimulationKernel(backend=backend, telemetry=telemetry)
        try:
            test = by_name("MarchC-")
            cases = FaultList.from_names("SAF").instances(3)
            kernel.simulate(test, cases, size=3)
        finally:
            kernel.close()
        return kernel

    def test_default_telemetry_is_the_shared_null(self):
        kernel = self.simulate()
        assert kernel.telemetry is TELEMETRY_OFF
        assert kernel.stats.misses > 0  # stats still count without it

    def test_cache_counters_are_adopted_not_copied(self):
        telemetry = Telemetry()
        kernel = self.simulate(telemetry)
        snapshot = telemetry.snapshot()
        # One set of numbers: the registry series ARE the KernelStats
        # counters, so the legacy surface and the snapshot agree.
        assert counter_total(
            snapshot, "repro.kernel.cache.misses"
        ) == kernel.stats.misses
        assert counter_total(
            snapshot, "repro.kernel.cache.batches"
        ) == kernel.stats.batches
        series = snapshot["metrics"]["repro.kernel.cache.hits"]["series"]
        assert series[0]["labels"] == {"tier": "memory"}

    def test_backend_served_rides_a_collector(self):
        telemetry = Telemetry()
        kernel = self.simulate(telemetry)
        assert counter_total(
            telemetry.snapshot(), "repro.backend.served"
        ) == sum(kernel.backend.served.values())

    def test_batches_are_spanned_and_timed(self):
        telemetry = Telemetry()
        self.simulate(telemetry)
        trees = telemetry.span_trees()
        assert trees and all(
            t["name"] == "kernel.detect_batch" for t in trees
        )
        assert all(t["seconds"] >= 0 for t in trees)
        histogram = telemetry.snapshot()["metrics"][
            "repro.backend.detect.seconds"
        ]["series"][0]
        assert histogram["count"] == len(trees)

    def test_single_probe_path_is_spanned_too(self):
        telemetry = Telemetry()
        kernel = SimulationKernel(backend="serial", telemetry=telemetry)
        try:
            test = by_name("MATS")
            case = FaultList.from_names("SAF").instances(3)[0]
            kernel.detects(test, case, size=3)
            kernel.detects(test, case, size=3)  # cache hit: no span
        finally:
            kernel.close()
        trees = telemetry.span_trees()
        assert [t["name"] for t in trees] == ["kernel.detect"]

    def test_store_tier_read_write_latency_is_timed(self, tmp_path):
        telemetry = Telemetry()
        kernel = SimulationKernel(
            backend="serial",
            store=str(tmp_path / "dict.sqlite"),
            telemetry=telemetry,
        )
        try:
            test = by_name("MarchC-")
            cases = FaultList.from_names("SAF").instances(3)
            kernel.simulate(test, cases, size=3)
        finally:
            kernel.close()
        metrics = telemetry.snapshot()["metrics"]
        assert metrics["repro.store.read_through.seconds"]["series"][0][
            "count"
        ] > 0
        assert metrics["repro.store.write_through.seconds"]["series"][0][
            "count"
        ] > 0
        assert counter_total(
            telemetry.snapshot(), "repro.store.misses"
        ) == kernel.store.stats.misses

    def test_describe_stats_tier_order_is_canonical(self, tmp_path):
        kernel = SimulationKernel(
            backend="serial", store=str(tmp_path / "dict.sqlite")
        )
        try:
            test = by_name("MATS")
            cases = FaultList.from_names("SAF").instances(3)
            kernel.simulate(test, cases, size=3)
            segments = kernel.stats_segments()
        finally:
            kernel.close()
        names = [name for name, _ in segments]
        assert names == [
            n for n in SimulationKernel.STATS_TIER_ORDER if n in names
        ]
        assert names[0] == "cache"
        assert "store" in names and "backend" in names
        described = kernel.describe_stats()
        assert described.index("cache") < described.index("store")


class TestCampaignTelemetry:
    @pytest.fixture(scope="class")
    def manifest(self, tmp_path_factory):
        store = tmp_path_factory.mktemp("telemetry") / "dict.sqlite"
        return run_campaign(
            CampaignSpec.from_dict(SPEC), store_path=str(store)
        )

    def test_metrics_reconcile_with_manifest_totals(self, manifest):
        merged = manifest["telemetry"]["metrics"]
        totals = manifest["totals"]
        assert counter_total(
            merged, "repro.backend.served"
        ) == totals["verdicts_simulated"]
        lookups = counter_total(merged, "repro.kernel.cache.hits") + \
            counter_total(merged, "repro.kernel.cache.misses")
        assert lookups == sum(
            job["cache"]["hits"] + job["cache"]["misses"]
            for job in manifest["jobs"]
        )

    def test_jobs_carry_their_own_snapshots_and_spans(self, manifest):
        for job in manifest["jobs"]:
            assert set(job["telemetry"]) == {"metrics", "spans"}
        simulating = [
            job for job in manifest["jobs"]
            if (job["served"] or {}).values()
        ]
        assert any(
            job["telemetry"]["spans"] for job in simulating
        )

    def test_normalized_manifest_strips_telemetry(self, manifest):
        normalized = normalized_manifest(manifest)
        assert "telemetry" not in normalized
        assert all(
            "telemetry" not in job for job in normalized["jobs"]
        )


class TestDaemonTelemetry:
    def test_metrics_op_returns_the_registry_snapshot(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                client.put(key(), True)
                client.get(key())
                payload = client.metrics()
        finally:
            daemon.stop()
        assert payload["schema"] == 1
        metrics = payload["metrics"]
        requests = {
            entry["labels"]["op"]: entry["value"]
            for entry in metrics["repro.service.requests"]["series"]
        }
        # Single put/get ride the batched wire ops.
        assert requests["put_many"] == 1
        assert requests["get_many"] == 1
        assert metrics["repro.service.request.seconds"]["series"]
        assert counter_total(payload, "repro.store.writes") == 1

    def test_health_folds_in_rows_and_service_time(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                client.put(key(), True)
                health = client.health()
        finally:
            daemon.stop()
        assert health["service"] == SERVICE_MAGIC
        assert health["rows"]["rows"] == 1
        assert health["service_time"]["count"] >= 1
        assert health["service_time"]["seconds"] >= 0
        assert "put_many" in health["service_time"]["by_op"]

    def test_telemetry_survives_a_stop_start_cycle(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                client.ping()
        finally:
            daemon.stop()
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                payload = client.metrics()
            # Collectors read the daemon's live state, not a captured
            # first-generation store.
            assert counter_total(
                payload["metrics"] and payload, "repro.service.requests"
            ) >= 1
        finally:
            daemon.stop()


class TestCliTelemetry:
    def test_simulate_writes_metrics_and_trace(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        rc = main([
            "simulate", "MarchC-", "SAF",
            "--backend", "serial",
            "--metrics", str(metrics_path),
            "--trace", str(trace_path),
        ])
        capsys.readouterr()
        assert rc == 0
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot["schema"] == 1
        assert counter_total(snapshot, "repro.backend.served") > 0
        lines = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert lines and lines[0]["name"] == "kernel.detect_batch"

    def test_campaign_artifacts_derive_from_the_manifest(
        self, tmp_path, capsys
    ):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC))
        metrics_path = tmp_path / "m.json"
        trace_path = tmp_path / "t.jsonl"
        manifest_path = tmp_path / "man.json"
        rc = main([
            "campaign", str(spec_path),
            "--manifest", str(manifest_path),
            "--metrics", str(metrics_path),
            "--trace", str(trace_path),
        ])
        out = capsys.readouterr().out
        assert rc == 0
        # Satellite: progress lines carry elapsed time and throughput.
        assert "[1/2]" in out
        assert "jobs/s]" in out
        manifest = json.loads(manifest_path.read_text())
        snapshot = json.loads(metrics_path.read_text())
        assert snapshot == manifest["telemetry"]["metrics"]
        traced = [
            json.loads(line)
            for line in trace_path.read_text().splitlines()
        ]
        assert traced and {t["depth"] for t in traced} == {0}

    def test_no_flags_leave_no_artifacts(self, tmp_path, capsys):
        rc = main([
            "simulate", "MATS", "SAF", "--backend", "serial",
        ])
        capsys.readouterr()
        assert rc in (0, 1)
        assert list(tmp_path.iterdir()) == []
