"""``repro report``: classification, rendering and regression diffs."""

import copy
import json

import pytest

from repro.cli import main
from repro.store.campaign import CampaignSpec, run_campaign
from repro.telemetry import MetricsRegistry
from repro.telemetry.report import (
    ReportError,
    classify_payload,
    diff_payloads,
    load_payload,
    per_model_coverage,
    render_diff,
    render_report,
    report_json,
)

SPEC = {
    "name": "report-unit",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["serial"],
}


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    store = tmp_path_factory.mktemp("report") / "dict.sqlite"
    return run_campaign(
        CampaignSpec.from_dict(SPEC), store_path=str(store)
    )


def bench_record(scale=1.0):
    return {
        "benchmark": "kernel",
        "schema": 1,
        "workloads": {
            "table3_size3": {
                "seconds": {"serial": 0.1 * scale, "bitparallel": 0.05},
            },
        },
    }


class TestClassification:
    def test_recognizes_the_three_payload_kinds(self, manifest):
        assert classify_payload(manifest) == "manifest"
        assert classify_payload(bench_record()) == "bench"
        assert classify_payload(
            MetricsRegistry().snapshot()
        ) == "metrics"
        # A manifest's embedded telemetry block is itself a metrics
        # snapshot, so it classifies and renders standalone.
        assert classify_payload(
            manifest["telemetry"]["metrics"]
        ) == "metrics"

    def test_rejects_junk(self):
        for junk in ({}, {"totals": {}}, [], "x"):
            with pytest.raises(ReportError, match="unrecognized"):
                classify_payload(junk)

    def test_load_payload_reports_bad_files(self, tmp_path):
        with pytest.raises(ReportError, match="cannot read"):
            load_payload(tmp_path / "absent.json")
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ReportError, match="not valid JSON"):
            load_payload(bad)
        junk = tmp_path / "junk.json"
        junk.write_text("{}")
        with pytest.raises(ReportError, match="unrecognized"):
            load_payload(junk)


class TestRendering:
    def test_manifest_report_carries_results_and_model_split(
        self, manifest
    ):
        text = render_report("manifest", manifest)
        assert "campaign 'report-unit'" in text
        assert "MarchC-" in text
        assert "coverage by fault model:" in text
        assert "SAF" in text and "TF" in text
        assert "telemetry:" in text
        assert "repro.backend.served" in text

    def test_metrics_report_renders_histogram_summaries(self, manifest):
        text = render_report("metrics", manifest["telemetry"]["metrics"])
        assert "repro.backend.detect.seconds" in text
        assert "mean=" in text

    def test_bench_report_lists_scenarios(self):
        text = render_report("bench", bench_record())
        assert "table3_size3" in text
        assert "serial" in text

    def test_report_json_is_json_native(self, manifest):
        for kind, data in (
            ("manifest", manifest),
            ("bench", bench_record()),
            ("metrics", manifest["telemetry"]["metrics"]),
        ):
            payload = report_json(kind, data)
            assert payload["kind"] == kind
            json.dumps(payload)  # must not raise

    def test_per_model_coverage_maps_missed_names_to_models(
        self, manifest
    ):
        per_model = per_model_coverage(manifest)
        assert set(per_model) == {"SAF", "TF"}
        # MarchC- detects everything, MATS misses some TF cases; SAF
        # alone is fully covered even by MATS.
        assert per_model["SAF"]["coverage"] == 1.0
        assert 0.0 < per_model["TF"]["coverage"] <= 1.0
        total_cases = sum(m["cases"] for m in per_model.values())
        assert total_cases == sum(
            row["fault_cases"] for row in manifest["results"]
        )

    def test_per_model_coverage_survives_unknown_models(self, manifest):
        doctored = copy.deepcopy(manifest)
        doctored["spec"]["faults"] = ["NOPE"]
        assert per_model_coverage(doctored) == {}


class TestManifestDiff:
    def test_identical_manifests_never_regress(self, manifest):
        # Even with a zero threshold and jittered timings a manifest
        # diffed against a re-serialized copy of itself is clean.
        other = copy.deepcopy(manifest)
        for job in other["jobs"]:
            if job["seconds"] is not None:
                job["seconds"] *= 3.0
        diff = diff_payloads("manifest", manifest, "manifest", other, 0.0)
        assert diff["identical"] is True
        assert diff["regressions"] == []

    def doctor_coverage(self, manifest, test="MarchC-", drop=5):
        doctored = copy.deepcopy(manifest)
        for row in doctored["results"]:
            if row["test"] == test:
                detected = row["detected"] - drop
                row["detected"] = detected
                row["coverage"] = detected / row["fault_cases"]
                missed = [
                    case for case in (
                        f"TF:<{i}|1w0|0>@({i})" for i in range(drop)
                    )
                ]
                row["missed"] = sorted(set(row["missed"]) | set(missed))
        return doctored

    def test_coverage_drop_is_a_regression(self, manifest):
        doctored = self.doctor_coverage(manifest)
        diff = diff_payloads(
            "manifest", manifest, "manifest", doctored, 0.01
        )
        assert diff["identical"] is False
        assert any(
            "coverage regression: MarchC-" in r
            for r in diff["regressions"]
        )
        text = render_diff(diff)
        assert "REGRESSION" in text

    def test_threshold_forgives_small_drops(self, manifest):
        doctored = self.doctor_coverage(manifest, drop=1)
        diff = diff_payloads(
            "manifest", manifest, "manifest", doctored, 0.5
        )
        coverage_regressions = [
            r for r in diff["regressions"] if "coverage" in r
        ]
        assert coverage_regressions == []

    def test_vanished_result_row_is_a_regression(self, manifest):
        doctored = copy.deepcopy(manifest)
        doctored["results"] = [
            row for row in doctored["results"]
            if row["test"] != "MarchC-"
        ]
        diff = diff_payloads(
            "manifest", manifest, "manifest", doctored, 0.0
        )
        assert any("vanished" in r for r in diff["regressions"])

    def test_failed_job_growth_is_a_regression(self, manifest):
        doctored = copy.deepcopy(manifest)
        doctored["totals"]["failed"] += 1
        diff = diff_payloads(
            "manifest", manifest, "manifest", doctored, 0.0
        )
        assert any("failed jobs grew" in r for r in diff["regressions"])

    def test_backend_timing_and_store_growth_are_informational(
        self, manifest
    ):
        other = copy.deepcopy(manifest)
        for job in other["jobs"]:
            if job["seconds"] is not None:
                job["seconds"] *= 100.0
        diff = diff_payloads("manifest", manifest, "manifest", other, 0.0)
        kinds = {row["kind"] for row in diff["rows"]}
        assert "backend_seconds" in kinds
        assert "store_writes" in kinds
        assert diff["regressions"] == []


class TestBenchDiff:
    def test_timing_regression_beyond_the_ratio_threshold(self):
        diff = diff_payloads(
            "bench", bench_record(), "bench", bench_record(scale=1.5),
            0.05,
        )
        assert any(
            "timing regression" in r for r in diff["regressions"]
        )

    def test_threshold_forgives_noise(self):
        diff = diff_payloads(
            "bench", bench_record(), "bench", bench_record(scale=1.02),
            0.05,
        )
        assert diff["regressions"] == []

    def test_kind_mismatch_refuses(self, manifest):
        with pytest.raises(ReportError, match="cannot diff"):
            diff_payloads("manifest", manifest, "bench", bench_record())


class TestMetricsDiff:
    def test_metrics_diffs_are_informational(self):
        a = MetricsRegistry()
        a.counter("hits").inc(2)
        a.histogram("lat", bounds=(0.1,)).observe(0.05)
        b = MetricsRegistry()
        b.counter("hits").inc(9)
        b.histogram("lat", bounds=(0.1,)).observe(0.2)
        diff = diff_payloads(
            "metrics", a.snapshot(), "metrics", b.snapshot(), 0.0
        )
        assert diff["regressions"] == []
        deltas = {
            row["key"]: row.get("delta") for row in diff["rows"]
        }
        assert deltas["hits{-}"] == 7


class TestReportCli:
    def write(self, tmp_path, name, payload):
        path = tmp_path / name
        path.write_text(json.dumps(payload))
        return str(path)

    def test_render_and_json_modes(self, tmp_path, manifest, capsys):
        path = self.write(tmp_path, "man.json", manifest)
        assert main(["report", path]) == 0
        assert "campaign 'report-unit'" in capsys.readouterr().out
        assert main(["report", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "manifest"

    def test_diff_exit_codes_follow_the_gate_flag(
        self, tmp_path, manifest, capsys
    ):
        doctored = TestManifestDiff().doctor_coverage(manifest)
        a = self.write(tmp_path, "a.json", manifest)
        b = self.write(tmp_path, "b.json", doctored)
        # Identical: exit 0 with or without the gate.
        assert main(["report", "diff", a, a,
                     "--fail-on-regression", "0"]) == 0
        capsys.readouterr()
        # Regressed but informational: still exit 0.
        assert main(["report", "diff", a, b]) == 0
        assert "REGRESSION" in capsys.readouterr().out
        # Regressed and gated: exit 1.
        assert main(["report", "diff", a, b,
                     "--fail-on-regression", "0.01"]) == 1
        capsys.readouterr()

    def test_bad_inputs_exit_two(self, tmp_path, capsys):
        junk = self.write(tmp_path, "junk.json", {})
        assert main(["report", junk]) == 2
        assert "unrecognized" in capsys.readouterr().err
        assert main(["report", "diff", junk]) == 2
        assert "exactly two files" in capsys.readouterr().err
