"""Unit tests of the kernel subsystem itself: cache, pool, backends."""

import pytest

from repro.faults.faultlist import FaultList
from repro.faults.instances import case
from repro.kernel import (
    BACKENDS,
    BitParallelBackend,
    DetectTask,
    EmptyFaultListWarning,
    FaultDictionaryCache,
    MemoryPool,
    ProcessBackend,
    SerialBackend,
    SimKey,
    SimulationKernel,
    canonical_signature,
    get_default_kernel,
    resolve_backend,
    set_default_kernel,
)
from repro.march.catalog import MARCH_C_MINUS, MATS, MSCAN
from repro.march.test import parse_march
from repro.memory.array import NullFaultInstance
from repro.memory.state import DASH


class ExplodingInstance(NullFaultInstance):
    """Raises on the first read: exercises worker error propagation."""

    def on_read(self, memory, address):
        raise RuntimeError("injected fault-instance failure")


@pytest.fixture(scope="module")
def table3_list():
    return FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")


class TestCache:
    def test_hit_miss_accounting(self, saf_list):
        kernel = SimulationKernel()
        cases = saf_list.instances(3)
        kernel.simulate(MATS, cases, 3)
        assert kernel.stats.misses == len(cases)
        assert kernel.stats.hits == 0
        kernel.simulate(MATS, cases, 3)
        assert kernel.stats.hits == len(cases)
        assert kernel.stats.hit_rate == 0.5
        assert "hit rate" in str(kernel.stats)

    def test_signature_shares_verdicts_across_names(self, saf_list):
        # Same notation under a different display name: cached verdicts
        # must be shared (the cache keys the *signature*, not the name).
        kernel = SimulationKernel()
        cases = saf_list.instances(3)
        kernel.simulate(MATS, cases, 3)
        renamed = MATS.renamed("SomethingElse")
        kernel.simulate(renamed, cases, 3)
        assert kernel.stats.hits == len(cases)

    def test_lru_eviction(self):
        cache = FaultDictionaryCache(max_entries=2)
        k1, k2, k3 = (SimKey("t", f"c{i}", 3) for i in range(3))
        cache.put(k1, True)
        cache.put(k2, False)
        cache.put(k3, True)
        assert cache.stats.evictions == 1
        assert k1 not in cache and k2 in cache and k3 in cache
        assert cache.get(k2) is False

    def test_clear_resets_everything(self, saf_list):
        kernel = SimulationKernel()
        kernel.simulate(MATS, saf_list.instances(3), 3)
        assert len(kernel.cache) > 0
        kernel.clear()
        assert len(kernel.cache) == 0
        assert kernel.stats.lookups == 0

    def test_domains_do_not_collide(self):
        cache = FaultDictionaryCache()
        sp = SimKey("{x}", "c", 3, domain="sp")
        syn = SimKey("{x}", "c", 3, domain="syn")
        cache.put(sp, True)
        assert syn not in cache

    def test_rejects_empty_cache(self):
        with pytest.raises(ValueError):
            FaultDictionaryCache(max_entries=0)

    def test_kernel_evicts_under_a_small_bound(self, saf_list):
        # Kernel-level LRU pressure: verdicts must stay correct while
        # the dictionary churns, and the eviction count must surface.
        kernel = SimulationKernel(cache_size=4)
        cases = saf_list.instances(3)
        assert len(cases) > 4
        report = kernel.simulate(MATS, cases, 3)
        assert report.complete
        assert len(kernel.cache) <= 4
        assert kernel.stats.evictions >= len(cases) - 4
        assert "evictions" in str(kernel.stats)
        # Evicted verdicts are recomputed, not lost or corrupted.
        again = kernel.simulate(MATS, cases, 3)
        assert again.detected == report.detected
        assert kernel.stats.misses > len(cases)


class TestPool:
    def test_reuse_and_reset(self):
        pool = MemoryPool()
        memory = pool.acquire(3)
        memory.write(0, 1)
        memory.write(2, 0)
        pool.release(memory)
        again = pool.acquire(3)
        assert again is memory
        assert again.snapshot() == (DASH, DASH, DASH)
        assert pool.reuses == 1 and pool.allocations == 1

    def test_sizes_are_segregated(self):
        pool = MemoryPool()
        small = pool.acquire(2)
        pool.release(small)
        big = pool.acquire(5)
        assert big is not small and big.size == 5

    def test_reset_installs_fault(self):
        from repro.faults.instances import StuckAtInstance
        from repro.memory.array import MemoryArray, NullFaultInstance

        memory = MemoryArray(3, fault=StuckAtInstance(0, 1))
        memory.write(0, 0)
        assert memory.read(0) == 1
        memory.reset()
        assert isinstance(memory.fault, NullFaultInstance)
        assert memory.snapshot() == (DASH, DASH, DASH)


class TestBackends:
    def test_registry_contains_all(self):
        assert set(BACKENDS) >= {"serial", "process", "bitparallel"}

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown simulation backend"):
            SimulationKernel(backend="gpu")

    def test_instance_passthrough(self):
        backend = SerialBackend()
        assert resolve_backend(backend) is backend

    def test_process_backend_matches_serial(self, table3_list):
        cases = table3_list.instances(3)
        serial = SimulationKernel(backend="serial")
        process = SimulationKernel(backend=ProcessBackend(processes=2))
        tests = [MATS, MSCAN, MARCH_C_MINUS]
        assert process.detection_matrix(
            tests, cases, 3
        ) == serial.detection_matrix(tests, cases, 3)

    def test_small_batches_fall_back_to_serial(self, saf_list):
        backend = ProcessBackend(processes=2)
        kernel = SimulationKernel(backend=backend)
        report = kernel.simulate(MATS, saf_list.instances(2)[:2], 2)
        assert report.complete

    def test_process_backend_propagates_worker_errors(self, saf_list):
        # A fault instance that raises inside a worker must surface in
        # the parent (and on fork-less hosts, in the serial fallback).
        boom = case("boom", ExplodingInstance)
        tasks = [
            DetectTask(MATS, boom, 3)
        ] * max(ProcessBackend.MIN_BATCH, 8)
        backend = ProcessBackend(processes=2)
        with pytest.raises(RuntimeError, match="injected fault-instance"):
            backend.detect_batch(tasks)
        # The fork-task slot is released even on failure, and the
        # backend keeps serving afterwards.
        from repro.kernel import backends as backends_module

        assert backends_module._FORK_TASKS == ()
        healthy = [
            DetectTask(MATS, c, 3) for c in saf_list.instances(3)
        ] * 2
        assert all(backend.detect_batch(healthy))

    def test_concurrent_process_batches_stay_isolated(self, table3_list):
        # The fork-task handoff is a module-level slot; concurrent
        # batches must not fork workers inheriting each other's tasks.
        import threading

        cases = table3_list.instances(3)
        serial = SimulationKernel().detection_matrix([MARCH_C_MINUS], cases, 3)
        results = {}

        def run(tag):
            kernel = SimulationKernel(backend=ProcessBackend(processes=2))
            results[tag] = kernel.detection_matrix([MARCH_C_MINUS], cases, 3)

        threads = [
            threading.Thread(target=run, args=(tag,)) for tag in ("a", "b")
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert results["a"] == serial and results["b"] == serial


class TestBitParallelBackend:
    def test_matches_serial_on_table3(self, table3_list):
        cases = table3_list.instances(3)
        tests = [MATS, MSCAN, MARCH_C_MINUS]
        packed = SimulationKernel(backend="bitparallel").detection_matrix(
            tests, cases, 3
        )
        serial = SimulationKernel().detection_matrix(tests, cases, 3)
        assert packed == serial

    def test_served_counters_split_by_routing(self):
        # SAF packs; an unknown instance type falls back to scalar.
        from repro.faults.instances import case
        from repro.memory.array import NullFaultInstance

        class CustomInstance(NullFaultInstance):
            pass

        kernel = SimulationKernel(backend="bitparallel")
        saf_cases = FaultList.from_names("SAF").instances(3)
        cases = list(saf_cases) + [case("custom", CustomInstance)]
        report = kernel.simulate(MATS, cases, 3)
        assert kernel.backend.served == {
            "bitparallel": len(saf_cases),
            "serial": 1,
        }
        assert len(report.detected) + len(report.missed) == len(cases)

    def test_describe_stats_reports_routing_and_evictions(self):
        kernel = SimulationKernel(backend="bitparallel")
        kernel.simulate_fault_list(MATS, FaultList.from_names("SAF"), 3)
        description = kernel.describe_stats()
        assert "evictions" in description
        assert "backend [bitparallel]" in description
        assert "bitparallel:" in description

    def test_clear_resets_routing_counters_too(self):
        kernel = SimulationKernel(backend="bitparallel")
        kernel.simulate_fault_list(MATS, FaultList.from_names("SAF"), 3)
        assert kernel.backend.served
        kernel.clear()
        assert kernel.backend.served == {}
        assert "served no tasks" in kernel.describe_stats()

    def test_lane_plan_cache_is_bounded_and_reused(self, saf_list):
        backend = BitParallelBackend()
        backend.PLAN_CACHE_SIZE = 2
        cases = saf_list.instances(3)
        tasks = [DetectTask(MATS, c, 3) for c in cases]
        backend.detect_batch(tasks)
        first = next(iter(backend._simulations.values()))
        backend.detect_batch([DetectTask(MARCH_C_MINUS, c, 3) for c in cases])
        # Same (case names, size) key: the packed plan is reused.
        assert first in backend._simulations.values()
        for size in (2, 4, 5):
            backend.detect_batch(
                [DetectTask(MATS, c, size)
                 for c in saf_list.instances(size)]
            )
        assert len(backend._simulations) <= 2

    def test_single_probe_batches_work(self, saf_list):
        # The generator's verifier sends batches of one; the packed
        # path must handle them (and benefit from the plan cache).
        kernel = SimulationKernel(backend="bitparallel")
        for fault_case in saf_list.instances(3):
            assert kernel.detects(MATS, fault_case, 3)

    def test_generator_runs_on_bitparallel_backend(self):
        from repro.core import GeneratorConfig, MarchTestGenerator

        config = GeneratorConfig(backend="bitparallel", polish=False,
                                 tighten=False, check_redundancy=False)
        report = MarchTestGenerator(config).generate(
            FaultList.from_names("SAF")
        )
        assert report.verified


class TestBatchedApis:
    def test_simulate_many_preserves_order(self, table3_list):
        kernel = SimulationKernel()
        tests = [MSCAN, MATS, MARCH_C_MINUS]
        reports = kernel.simulate_many(tests, table3_list.instances(3), 3)
        assert [r.test for r in reports] == tests
        assert reports[2].complete  # March C- covers Table 3 row 5

    def test_detection_matrix_accepts_cases_or_faultlist(self, table3_list):
        kernel = SimulationKernel()
        via_list = kernel.detection_matrix([MATS], table3_list, 3)
        via_cases = kernel.detection_matrix(
            [MATS], table3_list.instances(3), 3
        )
        assert via_list == via_cases

    def test_empty_cases_warn(self):
        kernel = SimulationKernel()
        with pytest.warns(EmptyFaultListWarning):
            report = kernel.simulate(MATS, [], 3)
        assert report.coverage == 0.0

    def test_empty_detection_matrix_warns_too(self):
        kernel = SimulationKernel()
        with pytest.warns(EmptyFaultListWarning):
            matrix = kernel.detection_matrix([MATS], [], 3)
        assert matrix == {"MATS": {}}

    def test_single_probes_go_through_the_backend(self, saf_list):
        class CountingBackend(SerialBackend):
            name = "counting"
            calls = 0

            def detect_batch(self, tasks):
                CountingBackend.calls += 1
                return super().detect_batch(tasks)

        kernel = SimulationKernel(backend=CountingBackend())
        case = saf_list.instances(3)[0]
        assert kernel.detects(MATS, case, 3)
        assert CountingBackend.calls == 1
        kernel.detects(MATS, case, 3)  # cached: no second dispatch
        assert CountingBackend.calls == 1


class TestVariantMemo:
    def test_variants_are_memoized_per_instance(self):
        test = parse_march("{any(w0); any(r0,w1); any(r1)}")
        first = test.concrete_order_variants()
        assert test.concrete_order_variants() is first
        assert len(first) == 8

    def test_fresh_instances_get_fresh_memos(self):
        test = parse_march("{any(w0); any(r0)}")
        clone = parse_march("{any(w0); any(r0)}")
        assert test == clone
        assert test.concrete_order_variants() is not (
            clone.concrete_order_variants()
        )


class TestDefaultKernel:
    def test_default_kernel_is_process_wide(self):
        assert get_default_kernel() is get_default_kernel()

    def test_default_kernel_can_be_swapped(self):
        original = get_default_kernel()
        replacement = SimulationKernel()
        try:
            set_default_kernel(replacement)
            assert get_default_kernel() is replacement
        finally:
            set_default_kernel(original)

    def test_canonical_signature_ignores_name(self):
        assert canonical_signature(MATS) == canonical_signature(
            MATS.renamed("other")
        )
