"""Kernel/legacy equivalence properties.

The refactor's contract: :class:`SimulationKernel` must return results
byte-identical to the pre-refactor per-call path.  The legacy path is
reproduced verbatim below (fresh ``MemoryArray`` per (order-variant,
fault-variant) pair, variants re-enumerated per call) and compared
against the kernel over the full standard fault library at sizes 3-5.

The bit-parallel backend carries the same contract one level up: its
word-packed runs (plus the scalar fallback for unpackable cases) must
produce detection matrices byte-identical to the serial backend over
the full standard fault library at sizes 3-6.
"""

import json

import pytest

from legacy_reference import (
    legacy_detection_matrix,
    legacy_make_verifier,
    legacy_simulate,
)
from repro.faults.faultlist import FaultList
from repro.faults.library import MODEL_REGISTRY
from repro.kernel import SimulationKernel
from repro.march.catalog import MARCH_C_MINUS, MATS, MATS_PLUS_PLUS
from repro.memory.array import MemoryArray
from repro.simulator.engine import run_march

TESTS = [MATS, MATS_PLUS_PLUS, MARCH_C_MINUS]
SIZES = [3, 4, 5]


@pytest.fixture(scope="module")
def full_library():
    return FaultList.from_names(*MODEL_REGISTRY)


# -- equivalence properties ----------------------------------------------------


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("test", TESTS, ids=lambda t: t.name)
def test_simulation_report_identical(test, size, full_library):
    cases = full_library.instances(size)
    kernel = SimulationKernel()
    ours = kernel.simulate(test, cases, size)
    reference = legacy_simulate(test, cases, size)
    assert ours.detected == reference.detected
    assert ours.missed == reference.missed
    assert ours.size == reference.size
    assert ours.coverage == reference.coverage
    assert str(ours) == str(reference)


@pytest.mark.parametrize("size", SIZES)
def test_detection_matrix_identical(size, full_library):
    kernel = SimulationKernel()
    ours = kernel.detection_matrix(TESTS, full_library, size)
    reference = legacy_detection_matrix(TESTS, full_library, size)
    assert ours == reference


def test_warm_cache_results_stay_identical(full_library):
    kernel = SimulationKernel()
    cases = full_library.instances(3)
    cold = kernel.simulate(MARCH_C_MINUS, cases, 3)
    hits_before = kernel.stats.hits
    warm = kernel.simulate(MARCH_C_MINUS, cases, 3)
    assert warm.detected == cold.detected
    assert warm.missed == cold.missed
    assert kernel.stats.hits >= hits_before + len(cases)


def test_verifier_agrees_with_legacy(full_library):
    from repro.march.test import parse_march

    cases = full_library.instances(3)
    kernel_verify = SimulationKernel().verifier(cases, 3)
    legacy_verify = legacy_make_verifier(cases, 3)
    candidates = TESTS + [
        parse_march("{any(w0); any(r0)}"),
        parse_march("{up(w0); up(r0,w1); down(r1,w0); down(r0)}"),
        parse_march("{any(w1); any(r0)}"),  # malformed: expects the wrong value
    ]
    for candidate in candidates:
        assert kernel_verify(candidate) == legacy_verify(candidate), str(
            candidate
        )


def test_syndromes_identical_to_legacy(full_library):
    from repro.simulator.coverage import concrete_realization

    kernel = SimulationKernel()
    for fault_case in full_library.instances(4):
        concrete = concrete_realization(MARCH_C_MINUS, up=True)
        memory = MemoryArray(4, fault=fault_case.variants[0]())
        run = run_march(concrete, memory)
        reference = frozenset(
            (r.element_index, r.op_index, r.address, r.actual)
            for r in run.reads
            if r.mismatch
        )
        assert kernel.syndrome(MARCH_C_MINUS, fault_case, 4) == reference
        # Cached round trip returns the same object.
        assert kernel.syndrome(MARCH_C_MINUS, fault_case, 4) == reference


def test_two_port_domain_matches_differential_simulator():
    from repro.multiport.faults import weak_fault_cases
    from repro.multiport.march2p import MARCH_2PF, detects_weak_case

    kernel = SimulationKernel()
    for fault_case in weak_fault_cases(3):
        expected = detects_weak_case(MARCH_2PF, fault_case, 3)
        assert kernel.detects_2p(MARCH_2PF, fault_case, 3) == expected
        assert kernel.detects_2p(MARCH_2PF, fault_case, 3) == expected
    assert kernel.stats.hits > 0


# -- bit-parallel backend equivalence ------------------------------------------


@pytest.mark.parametrize("size", [3, 4, 5, 6])
def test_bitparallel_matrix_byte_identical_to_serial(size, full_library):
    """Acceptance criterion of the bit-parallel backend.

    The full standard library includes SOF, whose sense-amplifier
    latch packs through the per-lane latch word, so every standard
    model rides the word-packed path here.
    """
    serial = SimulationKernel(backend="serial").detection_matrix(
        TESTS, full_library, size
    )
    packed = SimulationKernel(backend="bitparallel").detection_matrix(
        TESTS, full_library, size
    )
    assert packed == serial
    # Byte-identical, not merely equal: the serialized matrices match.
    assert json.dumps(packed, sort_keys=True) == json.dumps(
        serial, sort_keys=True
    )


def test_bitparallel_routes_both_ways(full_library):
    from repro.faults.instances import case
    from repro.memory.array import NullFaultInstance

    class CustomInstance(NullFaultInstance):
        """Unknown type: must route to the scalar fallback."""

    kernel = SimulationKernel(backend="bitparallel")
    cases = list(full_library.instances(3)) + [case("custom", CustomInstance)]
    kernel.detection_matrix(TESTS, cases, 3)
    served = kernel.backend.served
    assert served.get("bitparallel", 0) > 0, "no packed tasks"
    assert served.get("serial", 0) > 0, (
        "unknown instance types should fall back to scalar"
    )


def test_bitparallel_serves_whole_standard_library_packed(full_library):
    # Since SOF gained its latch-word encoding, no standard model
    # needs the scalar fallback.
    kernel = SimulationKernel(backend="bitparallel")
    kernel.detection_matrix(TESTS, full_library, 3)
    assert kernel.backend.served.get("serial", 0) == 0


def test_bitparallel_simulation_report_identical(full_library):
    cases = full_library.instances(4)
    packed = SimulationKernel(backend="bitparallel").simulate(
        MARCH_C_MINUS, cases, 4
    )
    serial = SimulationKernel().simulate(MARCH_C_MINUS, cases, 4)
    assert packed.detected == serial.detected
    assert packed.missed == serial.missed
    assert str(packed) == str(serial)


def test_bitparallel_handles_delay_elements():
    from repro.faults.faultlist import FaultList
    from repro.march.test import parse_march

    test = parse_march("{up(w0); Del; up(r0,w1); Del; down(r1,w0)}")
    faults = FaultList.from_names("DRF")
    packed = SimulationKernel(backend="bitparallel").simulate_fault_list(
        test, faults, 4
    )
    serial = SimulationKernel().simulate_fault_list(test, faults, 4)
    assert packed.detected == serial.detected
    assert packed.detected, "the retention test must catch DRF"


def test_bitparallel_verifier_agrees_with_serial(full_library):
    from repro.march.test import parse_march

    cases = full_library.instances(3)
    packed_verify = SimulationKernel(backend="bitparallel").verifier(cases, 3)
    serial_verify = SimulationKernel().verifier(cases, 3)
    candidates = TESTS + [
        parse_march("{any(w0); any(r0)}"),
        parse_march("{up(w0); up(r0,w1); down(r1,w0); down(r0)}"),
        parse_march("{any(w1); any(r0)}"),  # malformed
    ]
    for candidate in candidates:
        assert packed_verify(candidate) == serial_verify(candidate), str(
            candidate
        )


# -- lane-tiled (NumPy) backend equivalence ------------------------------------


from repro.simulator.tilengine import numpy_available  # always importable

requires_numpy = pytest.mark.skipif(
    not numpy_available(),
    reason="NumPy not installed (the [fast] extra)",
)


@requires_numpy
@pytest.mark.parametrize("size", [3, 4, 5, 6])
def test_bitparallel_np_matrix_byte_identical_to_serial(size, full_library):
    """Acceptance criterion of the lane-tiled backend: byte-identity
    with the serial engine over the full standard library, the same
    contract the bignum backend carries."""
    serial = SimulationKernel(backend="serial").detection_matrix(
        TESTS, full_library, size
    )
    tiled = SimulationKernel(backend="bitparallel-np").detection_matrix(
        TESTS, full_library, size
    )
    assert tiled == serial
    assert json.dumps(tiled, sort_keys=True) == json.dumps(
        serial, sort_keys=True
    )


@requires_numpy
@pytest.mark.parametrize("size", [3, 4, 5, 6])
def test_bitparallel_np_matches_bitparallel(size, full_library):
    """The two packed engines share one lane plan; their verdicts must
    agree word for word (the tiled engine is *defined* by this)."""
    packed = SimulationKernel(backend="bitparallel").detection_matrix(
        TESTS, full_library, size
    )
    tiled = SimulationKernel(backend="bitparallel-np").detection_matrix(
        TESTS, full_library, size
    )
    assert tiled == packed


@requires_numpy
def test_bitparallel_np_routes_both_ways(full_library):
    from repro.faults.instances import case
    from repro.memory.array import NullFaultInstance

    class CustomInstance(NullFaultInstance):
        """Unknown type: must route to the scalar fallback."""

    kernel = SimulationKernel(backend="bitparallel-np")
    cases = list(full_library.instances(3)) + [case("custom", CustomInstance)]
    kernel.detection_matrix(TESTS, cases, 3)
    served = kernel.backend.served
    assert served.get("bitparallel-np", 0) > 0, "no tiled tasks"
    assert served.get("serial", 0) > 0, (
        "unknown instance types should fall back to scalar"
    )


@requires_numpy
def test_bitparallel_np_verifier_agrees_with_serial(full_library):
    from repro.march.test import parse_march

    cases = full_library.instances(3)
    tiled_verify = SimulationKernel(backend="bitparallel-np").verifier(
        cases, 3
    )
    serial_verify = SimulationKernel().verifier(cases, 3)
    candidates = TESTS + [
        parse_march("{any(w0); any(r0)}"),
        parse_march("{up(w0); up(r0,w1); down(r1,w0); down(r0)}"),
        parse_march("{any(w1); any(r0)}"),  # malformed
    ]
    for candidate in candidates:
        assert tiled_verify(candidate) == serial_verify(candidate), str(
            candidate
        )


def test_coverage_matrix_unchanged_by_kernel_routing(full_library):
    from repro.simulator.coverage import coverage_matrix

    cases = FaultList.from_names("SAF", "TF").instances(3)
    via_default = coverage_matrix(MATS_PLUS_PLUS, cases, 3)
    via_fresh = coverage_matrix(
        MATS_PLUS_PLUS, cases, 3, kernel=SimulationKernel()
    )
    assert via_default.matrix == via_fresh.matrix
    assert via_default.case_names == via_fresh.case_names
