"""The pre-refactor simulation path, frozen as the single baseline.

Both the kernel equivalence suite (``test_equivalence.py``) and the
performance guard (``benchmarks/bench_kernel.py``) compare against
*this* module, so there is exactly one definition of "legacy":
variants re-enumerated per call (a fresh ``MarchTest`` instance
defeats the per-instance memo) and a fresh ``MemoryArray`` allocated
per (order-variant, fault-variant) pair.  Do not modernize it -- its
job is to stay byte-for-byte equivalent to the seed implementation.
"""

from repro.kernel import SimulationReport
from repro.march.test import MarchTest
from repro.memory.array import MemoryArray
from repro.simulator.engine import is_well_formed, run_march


def legacy_detects_case(test, fault_case, size):
    fresh = MarchTest(test.elements, test.name)
    for variant_test in fresh.concrete_order_variants():
        for make_instance in fault_case.variants:
            memory = MemoryArray(size, fault=make_instance())
            if not run_march(variant_test, memory).detected:
                return False
    return True


def legacy_simulate(test, cases, size):
    report = SimulationReport(test, size)
    for fault_case in cases:
        if legacy_detects_case(test, fault_case, size):
            report.detected.append(fault_case.name)
        else:
            report.missed.append(fault_case.name)
    return report


def legacy_detection_matrix(tests, faults, size):
    cases = faults.instances(size)
    return {
        (test.name or str(test)): {
            fault_case.name: legacy_detects_case(test, fault_case, size)
            for fault_case in cases
        }
        for test in tests
    }


def legacy_make_verifier(cases, size):
    ordered = list(cases)

    def verify(test):
        if not is_well_formed(test, size):
            return False
        for position, fault_case in enumerate(ordered):
            if not legacy_detects_case(test, fault_case, size):
                if position:
                    ordered.insert(0, ordered.pop(position))
                return False
        return True

    return verify
