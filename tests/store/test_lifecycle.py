"""Store lifecycle: ``last_used`` tracking, compaction, merging.

The persistent dictionary of PR 3 grew without bound; these tests pin
the lifecycle layer that keeps long-lived stores tractable --
:meth:`FaultDictionaryStore.compact` (LRU-by-``last_used`` pruning),
:meth:`FaultDictionaryStore.merge_from` (the sharded campaign's join
step) and :meth:`FaultDictionaryStore.row_stats` (the ``repro store
stats`` report).
"""

import sqlite3

import pytest

from repro.kernel.cache import SimKey
from repro.store import FaultDictionaryStore, StoreError, StoreSchemaError


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "dict.sqlite"


def key(case="SA0@0", signature="{up(w0); up(r0)}", size=3, domain="sp"):
    return SimKey(signature, case, size, domain)


def last_used_of(path, case):
    return sqlite3.connect(path).execute(
        "SELECT last_used FROM verdicts WHERE case_name=?", (case,)
    ).fetchone()[0]


def force_last_used(path, case, stamp):
    conn = sqlite3.connect(path)
    conn.execute(
        "UPDATE verdicts SET last_used=? WHERE case_name=?", (stamp, case)
    )
    conn.commit()
    conn.close()


class TestLastUsed:
    def test_writes_stamp_last_used(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        assert last_used_of(store_path, "SA0@0") > 0

    def test_read_hits_bump_last_used(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        force_last_used(store_path, "SA0@0", 5)
        with FaultDictionaryStore(store_path) as store:
            assert store.get(key()) is True
        assert last_used_of(store_path, "SA0@0") > 5

    def test_batched_hits_bump_last_used(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put_many([(key(case=f"c{i}"), True) for i in range(4)])
        for i in range(4):
            force_last_used(store_path, f"c{i}", i)
        with FaultDictionaryStore(store_path) as store:
            found = store.get_many(
                [key(case="c0"), key(case="c1"), key(case="absent")]
            )
            assert len(found) == 2
        assert last_used_of(store_path, "c0") > 3
        assert last_used_of(store_path, "c1") > 3
        assert last_used_of(store_path, "c2") == 2  # untouched

    def test_readonly_hits_do_not_bump(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        force_last_used(store_path, "SA0@0", 5)
        with FaultDictionaryStore(store_path, readonly=True) as store:
            assert store.get(key()) is True
            assert store.get_many([key()]) == {key(): True}
        assert last_used_of(store_path, "SA0@0") == 5

    def test_bumps_are_not_counted_as_verdict_writes(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
            store.stats.reset()
            store.get(key())
            store.get_many([key()])
            assert store.stats.writes == 0
            assert store.stats.hits == 2


class TestCompact:
    def populate(self, store, rows=20):
        store.put_many([(key(case=f"c{i:03d}"), True) for i in range(rows)])

    def test_row_cap_prunes_least_recently_used(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            self.populate(store)
        # Distinct recency: c000 oldest ... c019 newest.
        for i in range(20):
            force_last_used(store_path, f"c{i:03d}", 100 + i)
        with FaultDictionaryStore(store_path) as store:
            stats = store.compact(max_rows=5)
            assert stats["rows_before"] == 20
            assert stats["removed_by_cap"] == 15
            assert stats["removed_by_age"] == 0
            assert stats["rows_after"] == 5 == len(store)
            # The five most recently used rows survive.
            for i in range(15, 20):
                assert store.get(key(case=f"c{i:03d}")) is True
            assert store.get(key(case="c000")) is None

    def test_age_cap_prunes_stale_rows(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            self.populate(store, rows=10)
        for i in range(10):
            force_last_used(store_path, f"c{i:03d}", 1000 + i * 100)
        with FaultDictionaryStore(store_path) as store:
            stats = store.compact(max_age=500, now=2000)
            # cutoff 1500: rows stamped 1000..1400 go, 1500+ stay.
            assert stats["removed_by_age"] == 5
            assert stats["rows_after"] == 5
            assert store.get(key(case="c009")) is True
            assert store.get(key(case="c000")) is None

    def test_age_and_cap_compose(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            self.populate(store, rows=10)
        for i in range(10):
            force_last_used(store_path, f"c{i:03d}", 1000 + i * 100)
        with FaultDictionaryStore(store_path) as store:
            stats = store.compact(max_rows=3, max_age=500, now=2000)
            assert stats["removed_by_age"] == 5
            assert stats["removed_by_cap"] == 2
            assert stats["rows_after"] == 3 == len(store)

    def test_compaction_is_deterministic_on_ties(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            self.populate(store, rows=6)
        for i in range(6):
            force_last_used(store_path, f"c{i:03d}", 7)  # all tied
        with FaultDictionaryStore(store_path) as store:
            store.compact(max_rows=3, vacuum=False)
            # Ties break by primary key: lexicographically first go.
            assert store.get(key(case="c000")) is None
            assert store.get(key(case="c005")) is True

    def test_vacuum_reclaims_disk_space(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put_many(
                [(key(case=f"c{i:05d}"), True) for i in range(3000)]
            )
            stats = store.compact(max_rows=10)
        assert stats["bytes_after"] < stats["bytes_before"]

    def test_noop_compact_keeps_everything(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            self.populate(store, rows=5)
            stats = store.compact()
            assert stats["rows_after"] == 5
            assert stats["removed_by_age"] == stats["removed_by_cap"] == 0

    def test_readonly_store_refuses_compaction(self, store_path):
        FaultDictionaryStore(store_path).close()
        with FaultDictionaryStore(store_path, readonly=True) as store:
            with pytest.raises(StoreError, match="readonly"):
                store.compact(max_rows=1)

    def test_bad_limits_are_refused(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            with pytest.raises(StoreError, match="max_rows"):
                store.compact(max_rows=-1)
            with pytest.raises(StoreError, match="max_age"):
                store.compact(max_age=-1)


def build_v1_store(path):
    """A PR-3 era store: no last_used column, schema_version 1."""
    conn = sqlite3.connect(path)
    conn.executescript(
        """
        CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL);
        CREATE TABLE verdicts (
            signature TEXT    NOT NULL,
            case_name TEXT    NOT NULL,
            size      INTEGER NOT NULL,
            domain    TEXT    NOT NULL,
            verdict   TEXT    NOT NULL,
            PRIMARY KEY (signature, case_name, size, domain)
        ) WITHOUT ROWID;
        INSERT INTO meta VALUES ('schema_version', '1');
        INSERT INTO verdicts VALUES
            ('{up(w0); up(r0)}', 'SA0@0', 3, 'sp', '1');
        INSERT INTO verdicts VALUES
            ('{up(w0); up(r0)}', 'SA1@0', 3, 'sp', '0');
        """
    )
    conn.commit()
    conn.close()


class TestV1Upgrade:
    def test_v1_store_is_upgraded_in_place(self, store_path):
        build_v1_store(store_path)
        with FaultDictionaryStore(store_path) as store:
            # Existing rows survive the upgrade and read back (the
            # read also refreshes SA0@0's recency).
            assert store.get(key()) is True
            assert store.get(key(case="SA1@0")) is False
            assert store.row_stats()["rows"] == 2
            # New writes use the v2 column.
            store.put(key(case="fresh"), False)
        conn = sqlite3.connect(store_path)
        assert conn.execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone() == ("2",)
        columns = {
            column[1]
            for column in conn.execute("PRAGMA table_info(verdicts)")
        }
        assert "last_used" in columns
        conn.close()

    def test_upgraded_rows_start_never_used(self, store_path):
        """Upgraded rows carry last_used 0 until read, so an age prune
        treats a fresh upgrade's untouched rows as stale -- exactly
        the rows nobody has needed since the upgrade."""
        build_v1_store(store_path)
        with FaultDictionaryStore(store_path) as store:
            assert store.get(key()) is True  # bumps SA0@0 only
            stats = store.compact(max_age=3600)
            assert stats["removed_by_age"] == 1  # the never-read SA1@0
            assert store.get(key(case="SA1@0")) is None
            assert store.get(key()) is True

    def test_v1_readonly_open_refuses_with_upgrade_advice(self, store_path):
        build_v1_store(store_path)
        with pytest.raises(StoreSchemaError, match="writable once"):
            FaultDictionaryStore(store_path, readonly=True)
        # The refusal left the file untouched at v1.
        assert sqlite3.connect(store_path).execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone() == ("1",)

    def test_newer_schema_still_refused(self, store_path):
        build_v1_store(store_path)
        conn = sqlite3.connect(store_path)
        conn.execute("UPDATE meta SET value='999' WHERE key='schema_version'")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="schema 999"):
            FaultDictionaryStore(store_path)


class TestMergeFrom:
    def test_disjoint_stores_union(self, tmp_path):
        a_path, b_path = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        with FaultDictionaryStore(b_path) as b:
            b.put(key(case="only-b"), False)
        with FaultDictionaryStore(a_path) as a:
            a.put(key(case="only-a"), True)
            stats = a.merge_from(b_path)
            assert stats == {"source_rows": 1, "inserted": 1, "merged": 0}
            assert a.get(key(case="only-a")) is True
            assert a.get(key(case="only-b")) is False

    def test_conflicts_resolve_to_newest_last_used(self, tmp_path):
        a_path, b_path = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        with FaultDictionaryStore(a_path) as a:
            a.put(key(case="newer-here"), True)
            a.put(key(case="newer-there"), True)
        with FaultDictionaryStore(b_path) as b:
            b.put(key(case="newer-here"), False)
            b.put(key(case="newer-there"), False)
        force_last_used(a_path, "newer-here", 200)
        force_last_used(a_path, "newer-there", 100)
        force_last_used(b_path, "newer-here", 100)
        force_last_used(b_path, "newer-there", 200)
        with FaultDictionaryStore(a_path) as a:
            stats = a.merge_from(b_path)
            assert stats == {"source_rows": 2, "inserted": 0, "merged": 2}
            # Destination row was fresher: its verdict survives.
            assert a.get(key(case="newer-here")) is True
            # Source row was fresher: its verdict wins.
            assert a.get(key(case="newer-there")) is False
        # Merged recency is the max of the two sides.
        assert last_used_of(a_path, "newer-here") >= 200
        assert last_used_of(a_path, "newer-there") >= 200

    def test_merge_accepts_open_store_instances(self, tmp_path):
        a_path, b_path = tmp_path / "a.sqlite", tmp_path / "b.sqlite"
        with FaultDictionaryStore(b_path) as b:
            b.put(key(), True)
            with FaultDictionaryStore(a_path) as a:
                assert a.merge_from(b)["inserted"] == 1

    def test_merge_refuses_self_readonly_and_foreign(self, tmp_path):
        a_path = tmp_path / "a.sqlite"
        with FaultDictionaryStore(a_path) as a:
            a.put(key(), True)
            with pytest.raises(StoreError, match="itself"):
                a.merge_from(a_path)
        with FaultDictionaryStore(a_path, readonly=True) as a:
            with pytest.raises(StoreError, match="readonly"):
                a.merge_from(tmp_path / "other.sqlite")
        foreign = tmp_path / "foreign.sqlite"
        conn = sqlite3.connect(foreign)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with FaultDictionaryStore(a_path) as a:
            with pytest.raises(StoreSchemaError):
                a.merge_from(foreign)

    def test_merge_is_atomic_per_source(self, tmp_path):
        """A refused source leaves the destination untouched."""
        a_path = tmp_path / "a.sqlite"
        with FaultDictionaryStore(a_path) as a:
            a.put(key(), True)
            with pytest.raises(StoreError):
                a.merge_from(tmp_path / "absent.sqlite")
            assert len(a) == 1


class TestRowStats:
    def test_population_report(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(case="a"), True)
            store.put(key(case="b", domain="2p"), False)
            store.put(key(case="c", domain="syn"), frozenset())
            stats = store.row_stats()
        assert stats["rows"] == 3
        assert stats["by_domain"] == {"sp": 1, "2p": 1, "syn": 1}
        assert stats["bytes"] > 0
        assert stats["last_used_min"] > 0
        assert stats["last_used_max"] >= stats["last_used_min"]

    def test_empty_store_reports_cleanly(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            stats = store.row_stats()
        assert stats["rows"] == 0
        assert stats["by_domain"] == {}
        assert stats["last_used_min"] is None
