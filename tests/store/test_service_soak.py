"""Soak and async-daemon behaviour: the event-loop verdict service.

The acceptance criteria of the PR 9 rework: hundreds of concurrent
clients pipelining mixed read/write batches through the single-threaded
daemon, with zero dropped frames (every frame answered exactly once, in
order) and every verdict byte-identical to a direct-store run; the hot
LRU serving repeat reads without touching SQLite and counting itself in
the metrics registry; tenant quotas refusing the excess while liveness
ops stay reachable; the connection cap hanging up transiently; and
``shutdown {"drain": true}`` finishing in-flight batches, checkpointing
the WAL and refusing new connections.
"""

import threading
import time

import pytest

from repro.kernel import SimKey
from repro.store import FaultDictionaryStore, StoreError, encode_verdict
from repro.store.resilience import RetryPolicy
from repro.store.service import (
    SERVICE_MAGIC,
    ServiceStore,
    ServiceUnavailableError,
    VerdictService,
)


def key(i, prefix="c"):
    return SimKey("{up(w0)}", f"{prefix}{i}", 3, "sp")


def verdict(i):
    # Mix the two verdict shapes so byte-identity covers both the
    # boolean and the syndrome encoding.
    if i % 3 == 2:
        return frozenset({("r", i % 5, 0), ("w", i % 7, 1)})
    return i % 2 == 0


def wire_row(k, value):
    return [k.signature, k.case, k.size, k.domain, encode_verdict(value)]


def wire_key(k):
    return [k.signature, k.case, k.size, k.domain]


# -- the soak --------------------------------------------------------------------


SOAK_CLIENTS = 200
KEYS_PER_CLIENT = 10


class TestSoak:
    def test_hundreds_of_pipelined_clients_byte_identical(self, tmp_path):
        """>= 200 concurrent clients, pipelined mixed batches, zero
        dropped frames, byte-identity against the direct store."""
        store_path = tmp_path / "dict.sqlite"
        daemon = VerdictService(
            store_path, tmp_path / "verdict.sock",
            checkpoint_interval=0,
        )
        daemon.start()
        barrier = threading.Barrier(SOAK_CLIENTS)
        failures = []
        served = {}  # SimKey -> encoded row text as served on the wire
        served_lock = threading.Lock()

        def one_client(client_no):
            keys = [
                key(client_no * KEYS_PER_CLIENT + i)
                for i in range(KEYS_PER_CLIENT)
            ]
            values = {
                k: verdict(client_no * KEYS_PER_CLIENT + i)
                for i, k in enumerate(keys)
            }
            half = KEYS_PER_CLIENT // 2
            payloads = [
                {"op": "put_many",
                 "rows": [wire_row(k, values[k]) for k in keys[:half]]},
                # Pipelined read-after-write on the same connection:
                # the first half must already be visible.
                {"op": "get_many", "keys": [wire_key(k) for k in keys]},
                {"op": "put_many",
                 "rows": [wire_row(k, values[k]) for k in keys[half:]]},
                {"op": "ping"},
                {"op": "get_many", "keys": [wire_key(k) for k in keys]},
            ]
            try:
                client = ServiceStore(
                    daemon.url, tenant=f"soak-{client_no % 8}"
                )
                try:
                    barrier.wait(timeout=60)
                    responses = client.pipeline(payloads)
                finally:
                    client.close()
                # Zero dropped frames: one answer per frame, in order.
                assert len(responses) == len(payloads)
                for response in responses:
                    assert response.get("ok"), response
                assert responses[0]["written"] == half
                first_read = {
                    tuple(row[:4]): row[4]
                    for row in responses[1]["found"]
                }
                assert len(first_read) == half
                assert responses[3]["service"] == SERVICE_MAGIC
                final_read = {
                    tuple(row[:4]): row[4]
                    for row in responses[4]["found"]
                }
                assert len(final_read) == KEYS_PER_CLIENT
                with served_lock:
                    for k in keys:
                        served[k] = final_read[tuple(wire_key(k))]
            except Exception as error:  # noqa: BLE001 - collected below
                failures.append((client_no, repr(error)))

        threads = [
            threading.Thread(target=one_client, args=(n,), daemon=True)
            for n in range(SOAK_CLIENTS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        try:
            assert not failures, failures[:5]
            assert len(served) == SOAK_CLIENTS * KEYS_PER_CLIENT
            health = daemon.health_snapshot()
            assert health["connections"]["total"] >= SOAK_CLIENTS
        finally:
            daemon.stop()
        # Byte-identity: what the service answered on the wire is
        # exactly the canonical encoding the direct store holds.
        with FaultDictionaryStore(store_path) as direct:
            for k, encoded in served.items():
                assert encoded == encode_verdict(direct.get(k))
            assert len(direct) == SOAK_CLIENTS * KEYS_PER_CLIENT


# -- pipelining on one connection ------------------------------------------------


class TestPipelining:
    def test_responses_in_request_order(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        ) as daemon:
            client = ServiceStore(daemon.url)
            try:
                keys = [key(i, prefix="p") for i in range(6)]
                payloads = [
                    {"op": "put_many", "rows": [wire_row(k, True)]}
                    for k in keys
                ] + [
                    {"op": "get_many",
                     "keys": [wire_key(k) for k in keys]},
                    {"op": "ping"},
                    {"op": "nonsense"},
                    {"op": "stats"},
                ]
                responses = client.pipeline(payloads)
                assert len(responses) == len(payloads)
                for response in responses[:6]:
                    assert response == {"ok": True, "written": 1}
                assert len(responses[6]["found"]) == 6
                assert responses[7]["service"] == SERVICE_MAGIC
                # A refused frame is answered in place -- the pipeline
                # (and the connection) carries on.
                assert responses[8]["ok"] is False
                assert "unknown protocol op" in responses[8]["error"]
                assert responses[9]["ok"] is True
                # The whole pipeline was one connection and the
                # handshake ping + 10 frames all hit one ledger entry.
                per_client = responses[9]["clients"]["per_client"]
                assert max(
                    c["requests"] for c in per_client.values()
                ) == 1 + len(payloads)
            finally:
                client.close()


# -- the hot LRU -----------------------------------------------------------------


class TestHotLru:
    def test_repeat_reads_hit_memory_and_are_counted(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            hot_lru_size=8,
        ) as daemon:
            with ServiceStore(daemon.url) as client:
                k = key(0, prefix="lru")
                client.put(k, True)  # write-through primes the tier
                for _ in range(3):
                    assert client.get(k) is True
                health = client.health()
                hot = health["hot_lru"]
                assert hot["max_entries"] == 8
                assert hot["entries"] == 1
                assert hot["hits"] >= 3
                # The PR 8 registry carries the same counters as
                # repro.service.hot_lru.*.
                metrics = client.metrics()["metrics"]
                assert (
                    metrics["repro.service.hot_lru.hits"]["series"][0]
                    ["value"] >= 3
                )
                assert (
                    metrics["repro.service.hot_lru.entries"]["series"][0]
                    ["value"] == 1
                )
            # SQLite was never consulted for the repeat reads: the
            # store's own hit counter saw none of them.
            assert daemon.store.stats.hits == 0

    def test_eviction_falls_back_to_store_byte_identically(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            hot_lru_size=2,
        ) as daemon:
            with ServiceStore(daemon.url) as client:
                keys = [key(i, prefix="evict") for i in range(5)]
                for i, k in enumerate(keys):
                    client.put(k, verdict(i))
                # Capacity 2 < 5 writes: evictions happened, yet every
                # verdict still round-trips (store fallback).
                for i, k in enumerate(keys):
                    assert client.get(k) == verdict(i)
                assert client.health()["hot_lru"]["evictions"] >= 3

    def test_zero_size_disables_the_tier(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            hot_lru_size=0,
        ) as daemon:
            with ServiceStore(daemon.url) as client:
                k = key(0, prefix="off")
                client.put(k, False)
                assert client.get(k) is False
                hot = client.health()["hot_lru"]
                assert hot["entries"] == 0
                assert hot["max_entries"] == 0
                assert hot["hits"] == 0


# -- tenants and quotas ----------------------------------------------------------


class TestTenants:
    def test_quota_refuses_excess_but_not_liveness(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            quota=3,
        ) as daemon:
            with ServiceStore(daemon.url, tenant="team-a") as client:
                for i in range(3):
                    client.put(key(i, prefix="qa"), True)  # metered
                with pytest.raises(StoreError, match="quota"):
                    client.put(key(3, prefix="qa"), True)
                with pytest.raises(StoreError, match="quota"):
                    client.get(key(0, prefix="qa"))
                # Control-plane ops are never metered: the operator can
                # still probe and stop an over-budget daemon.
                assert client.ping()["service"] == SERVICE_MAGIC
                health = client.health()
                assert health["counters"]["quota_denied"] >= 2
                assert health["quota"] == 3
            # Another tenant's budget is its own.
            with ServiceStore(daemon.url, tenant="team-b") as other:
                other.put(key(0, prefix="qb"), True)
                stats = other.server_stats()
                assert stats["tenants"]["team-a"]["denied"] >= 2
                assert stats["tenants"]["team-b"]["denied"] == 0
                assert stats["quota"] == 3

    def test_tenant_rides_the_ledger(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        ) as daemon:
            with ServiceStore(daemon.url, tenant="named") as client:
                client.put(key(0, prefix="t"), True)
                stats = client.server_stats()
            tenants = {
                c["tenant"]
                for c in stats["clients"]["per_client"].values()
            }
            assert "named" in tenants
            assert stats["tenants"]["named"]["requests"] >= 2
            # The handshake echoes the accepted tenant back.
            assert client.server["tenant"] == "named"

    def test_malformed_tenant_is_refused(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        ) as daemon:
            with ServiceStore(daemon.url) as client:
                response = client.pipeline([{"op": "ping", "tenant": 7}])
                assert response[0]["ok"] is False
                assert "tenant" in response[0]["error"]


# -- the connection cap ----------------------------------------------------------


class TestMaxClients:
    def test_over_cap_connects_are_transient(self, tmp_path):
        with VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            max_clients=2,
        ) as daemon:
            first = ServiceStore(daemon.url)
            second = ServiceStore(daemon.url)
            third = ServiceStore(
                daemon.url, retry=RetryPolicy.no_retry()
            )
            try:
                first.ping()
                second.ping()
                # The cap refuses before the handshake: transient (a
                # retrying client would back off), not permanent.
                with pytest.raises(ServiceUnavailableError):
                    third.ping()
                assert first.health()["counters"]["rejected_full"] >= 1
                # A slot freeing up lets the refused client in.
                second.close()
                patient = ServiceStore(
                    daemon.url,
                    retry=RetryPolicy(
                        max_attempts=20, base_delay=0.05,
                        max_delay=0.2, seed=1,
                    ),
                )
                try:
                    assert patient.ping()["service"] == SERVICE_MAGIC
                finally:
                    patient.close()
            finally:
                first.close()
                second.close()
                third.close()


# -- drain-then-exit -------------------------------------------------------------


class TestDrain:
    def test_drain_finishes_inflight_then_checkpoints(self, tmp_path):
        store_path = tmp_path / "dict.sqlite"
        daemon = VerdictService(
            store_path, tmp_path / "verdict.sock",
            checkpoint_interval=0,
        )
        daemon.start()
        url = daemon.url
        keys = [key(i, prefix="drain") for i in range(20)]
        client = ServiceStore(url)
        try:
            # The shutdown rides *behind* five pipelined batches: drain
            # must answer all of them before the daemon goes away.
            payloads = [
                {"op": "put_many",
                 "rows": [wire_row(k, verdict(i * 4 + j))
                          for j, k in enumerate(batch)]}
                for i, batch in enumerate(
                    keys[n:n + 4] for n in range(0, 20, 4)
                )
            ] + [{"op": "shutdown", "drain": True}]
            responses = client.pipeline(payloads)
            assert len(responses) == len(payloads)
            for response in responses[:-1]:
                assert response == {"ok": True, "written": 4}
            assert responses[-1]["ok"] is True
            assert responses[-1]["drain"] is True
            assert daemon.wait(timeout=10), "drain never stopped the loop"
            # The drain itself checkpointed the WAL, before stop().
            assert daemon._counters["checkpoints"] >= 1
        finally:
            client.close()
            daemon.stop()
        assert not (tmp_path / "verdict.sock").exists()
        assert not store_path.with_name(
            store_path.name + "-wal"
        ).exists()
        # Nothing answers any more: drained means gone.
        refused = ServiceStore(url, retry=RetryPolicy.no_retry())
        with pytest.raises(ServiceUnavailableError):
            refused.ping()
        refused.close()
        # Every in-flight batch landed.
        with FaultDictionaryStore(store_path) as direct:
            for i, k in enumerate(keys):
                assert direct.get(k) == verdict(i)
