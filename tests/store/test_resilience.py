"""RetryPolicy, DegradingStore, and the hardened daemon surface.

Everything timing-shaped runs on injected clocks/sleeps (the policy
tests never wait) or on sub-second daemon knobs (the idle-reap and
checkpoint-timer tests wait fractions of a second, not the defaults).
"""

import pickle
import threading
import time

import pytest

from repro.cli import main
from repro.kernel import SimKey, SimulationKernel
from repro.store import (
    DegradingStore,
    FaultDictionaryStore,
    RetryExhaustedError,
    RetryPolicy,
    StoreError,
    TransientStoreError,
)
from repro.store.service import (
    ServiceStore,
    ServiceUnavailableError,
    VerdictService,
)


def key(signature="{up(w0)}", case="SA0@0", size=3, domain="sp"):
    return SimKey(signature, case, size, domain)


class FakeTime:
    """An injectable clock+sleep pair that records every sleep."""

    def __init__(self):
        self.now = 0.0
        self.sleeps = []

    def clock(self):
        return self.now

    def sleep(self, seconds):
        self.sleeps.append(seconds)
        self.now += seconds


# -- RetryPolicy ----------------------------------------------------------------


class TestRetryPolicy:
    def test_retries_transient_until_success(self):
        fake = FakeTime()
        policy = RetryPolicy(
            max_attempts=5, seed=3, clock=fake.clock, sleep=fake.sleep
        )
        calls = []

        def flaky():
            calls.append(1)
            if len(calls) < 3:
                raise TransientStoreError("boom")
            return "ok"

        assert policy.call(flaky) == "ok"
        assert len(calls) == 3
        # The two sleeps taken are exactly the schedule's first two.
        assert fake.sleeps == policy.preview(3)

    def test_permanent_errors_fail_fast(self):
        fake = FakeTime()
        policy = RetryPolicy(clock=fake.clock, sleep=fake.sleep)
        calls = []

        def broken():
            calls.append(1)
            raise StoreError("permanent")

        with pytest.raises(StoreError, match="permanent"):
            policy.call(broken)
        assert len(calls) == 1
        assert fake.sleeps == []

    def test_exhaustion_carries_the_bookkeeping(self):
        fake = FakeTime()
        policy = RetryPolicy(
            max_attempts=3, seed=9, clock=fake.clock, sleep=fake.sleep
        )
        retries = []

        def dead():
            raise TransientStoreError("nobody home")

        with pytest.raises(RetryExhaustedError) as caught:
            policy.call(
                dead,
                on_retry=lambda n, d, e: retries.append((n, d)),
            )
        error = caught.value
        assert error.attempts == 3
        assert isinstance(error.last_error, TransientStoreError)
        assert error.__cause__ is error.last_error
        assert len(retries) == 2  # N attempts = N-1 backoffs
        assert len(fake.sleeps) == 2

    def test_schedule_is_seed_deterministic(self):
        a = RetryPolicy(max_attempts=6, seed=42)
        b = RetryPolicy(max_attempts=6, seed=42)
        c = RetryPolicy(max_attempts=6, seed=43)
        assert a.preview() == b.preview()
        assert a.preview() != c.preview()
        # Backoff grows and respects the cap even through jitter.
        flat = RetryPolicy(
            max_attempts=8, jitter=0.0, base_delay=0.05,
            max_delay=0.4, multiplier=2.0,
        )
        assert flat.preview() == [
            0.05, 0.1, 0.2, 0.4, 0.4, 0.4, 0.4
        ]

    def test_deadline_cuts_the_budget_short(self):
        fake = FakeTime()
        policy = RetryPolicy(
            max_attempts=100, base_delay=1.0, multiplier=1.0,
            jitter=0.0, deadline=3.5, clock=fake.clock, sleep=fake.sleep,
        )

        def dead():
            raise TransientStoreError("nope")

        with pytest.raises(RetryExhaustedError, match="deadline"):
            policy.call(dead)
        # 3 sleeps of 1 s fit under 3.5 s; the 4th would cross it.
        assert len(fake.sleeps) == 3

    def test_validation(self):
        for knobs in (
            {"max_attempts": 0},
            {"base_delay": -1},
            {"multiplier": 0.5},
            {"jitter": 2.0},
            {"deadline": 0},
        ):
            with pytest.raises(ValueError):
                RetryPolicy(**knobs)

    def test_policy_is_picklable_for_campaign_workers(self):
        policy = RetryPolicy(max_attempts=7, seed=5)
        clone = pickle.loads(pickle.dumps(policy))
        assert clone == policy
        assert clone.preview() == policy.preview()

    def test_no_retry_fails_on_first_transient(self):
        policy = RetryPolicy.no_retry()
        with pytest.raises(RetryExhaustedError):
            policy.call(lambda: (_ for _ in ()).throw(
                TransientStoreError("x")
            ))


# -- DegradingStore -------------------------------------------------------------


class FlakyPrimary:
    """A store stub that dies transiently after ``survive`` calls."""

    def __init__(self, survive=0):
        self.survive = survive
        self.calls = 0
        self.retries = 4
        self.readonly = False
        self.closed = False

    def _maybe_die(self):
        self.calls += 1
        if self.calls > self.survive:
            raise TransientStoreError("primary gone")

    def get(self, key, default=None):
        self._maybe_die()
        return default

    def get_many(self, keys):
        self._maybe_die()
        return {}

    def put(self, key, value):
        self._maybe_die()

    def put_many(self, pairs):
        self._maybe_die()

    def __contains__(self, key):
        self._maybe_die()
        return False

    def close(self):
        self.closed = True


class TestDegradingStore:
    def test_demotes_on_transient_and_replays_the_failed_call(
        self, tmp_path
    ):
        primary = FlakyPrimary(survive=0)
        spill_path = tmp_path / "spill.sqlite"
        with pytest.warns(RuntimeWarning, match="degrading"):
            with DegradingStore(primary, spill_path) as store:
                # The very first call dies on the primary -- and lands
                # in the spill anyway (the batch is replayed).
                store.put_many([(key(), True), (key(case="SA1@0"), False)])
                assert store.degraded
                assert store.get(key()) is True
                assert key(case="SA1@0") in store
                report = store.resilience()
        assert report == {
            "attempts": 4,
            "degraded": True,
            "spill": str(spill_path),
        }
        assert primary.closed
        # The spill shard is a real store: reopen it directly.
        with FaultDictionaryStore(spill_path, readonly=True) as spill:
            assert spill.get(key()) is True

    def test_passthrough_while_primary_lives(self, tmp_path):
        primary = FlakyPrimary(survive=100)
        store = DegradingStore(primary, tmp_path / "spill.sqlite")
        store.put(key(), True)
        assert store.get(key(), default="miss") == "miss"  # stub store
        assert not store.degraded
        assert store.resilience()["spill"] is None
        assert not (tmp_path / "spill.sqlite").exists(), (
            "no spill file may appear before demotion"
        )
        store.close()

    def test_stats_merge_both_tiers(self, tmp_path):
        primary = FlakyPrimary(survive=0)
        with pytest.warns(RuntimeWarning):
            with DegradingStore(primary, tmp_path / "s.sqlite") as store:
                store.put(key(), True)
                store.get(key())
                assert store.stats.writes == 1
                assert store.stats.hits == 1


# -- the hardened daemon --------------------------------------------------------


class TestDaemonHardening:
    def test_idle_clients_are_reaped_and_reconnect(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            idle_timeout=0.3, checkpoint_interval=0,
        )
        daemon.start()
        try:
            client = ServiceStore(daemon.url)
            client.put(key(), True)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with ServiceStore(daemon.url) as probe:
                    health = probe.health()
                if health["counters"]["reaped_idle"] >= 1:
                    break
                time.sleep(0.1)
            assert health["counters"]["reaped_idle"] >= 1, (
                "the idle client was never reaped"
            )
            # The reaped client's next request reconnects transparently
            # (the reap looks like any server-side hangup: transient).
            assert client.get(key()) is True
            client.close()
        finally:
            daemon.stop()

    def test_background_checkpoint_timer_runs(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            checkpoint_interval=0.05,
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                client.put(key(), True)
                deadline = time.monotonic() + 10
                checkpoints = 0
                while time.monotonic() < deadline:
                    checkpoints = client.health()["counters"]["checkpoints"]
                    if checkpoints >= 2:
                        break
                    time.sleep(0.05)
            assert checkpoints >= 2
        finally:
            daemon.stop()

    def test_health_reports_liveness(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock",
            idle_timeout=123.0,
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                client.put(key(), True)
                health = client.health()
        finally:
            daemon.stop()
        assert health["uptime_seconds"] >= 0
        assert health["connections"]["active"] >= 1
        assert health["connections"]["total"] >= 1
        assert health["requests"] >= 2  # the put + this health call
        assert health["idle_timeout"] == 123.0
        assert set(health["counters"]) == {
            "reaped_idle", "checkpoints", "errors",
            "rejected_full", "quota_denied",
        }

    def test_merge_op_folds_a_local_store_in(self, tmp_path):
        side = tmp_path / "side.sqlite"
        with FaultDictionaryStore(side) as source:
            source.put(key(), True)
            source.put(key(case="SA1@0"), False)
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                merged = client.merge_from(side)
                assert merged["source_rows"] == 2
                assert merged["inserted"] == 2
                assert client.get(key()) is True
                # The ledger invariant survives a merge: stats must
                # not see writes the per-client counters don't hold.
                stats = client.server_stats()
                clients = stats["clients"]
                accounted = clients["retired"]["writes"] + sum(
                    c["writes"] for c in clients["per_client"].values()
                )
                assert stats["store_stats"]["writes"] == accounted
        finally:
            daemon.stop()

    def test_merge_op_refused_readonly_and_validates_source(
        self, tmp_path
    ):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            with ServiceStore(daemon.url, readonly=True) as client:
                with pytest.raises(StoreError, match="readonly"):
                    client.merge_from(tmp_path / "x.sqlite")
            with ServiceStore(daemon.url) as client:
                with pytest.raises(StoreError, match="source"):
                    client.merge_from("")
        finally:
            daemon.stop()


# -- the retrying client --------------------------------------------------------


class TestServiceStoreRetry:
    def test_rides_out_a_daemon_restart(self, tmp_path):
        store_path = tmp_path / "dict.sqlite"
        sock_path = tmp_path / "verdict.sock"
        first = VerdictService(store_path, sock_path).start()
        client = ServiceStore(
            first.url,
            retry=RetryPolicy(
                max_attempts=40, base_delay=0.02, max_delay=0.2, seed=1
            ),
        )
        client.put(key(), True)
        first.stop()

        second = VerdictService(store_path, sock_path)

        def restart_soon():
            time.sleep(0.3)
            second.start()

        thread = threading.Thread(target=restart_soon, daemon=True)
        thread.start()
        try:
            # Issued while nothing is listening: the retry loop backs
            # off until the restarted daemon answers.
            assert client.get(key()) is True
            assert client.retries >= 1
        finally:
            thread.join(timeout=10)
            client.close()
            second.stop()

    def test_exhaustion_raises_service_unavailable(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        client = ServiceStore(
            daemon.url,
            retry=RetryPolicy(
                max_attempts=2, base_delay=0.001, seed=0
            ),
        )
        client.ping()
        daemon.stop()
        with pytest.raises(
            ServiceUnavailableError, match="after 2 attempt"
        ):
            client.get(key())
        assert isinstance(
            ServiceUnavailableError("x"), TransientStoreError
        ), "exhaustion must stay degradable for DegradingStore"
        client.close()

    def test_kernel_store_retry_reaches_the_client(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            policy = RetryPolicy(max_attempts=9, seed=2)
            kernel = SimulationKernel(store=daemon.url, store_retry=policy)
            try:
                assert kernel.store.retry == policy
            finally:
                kernel.close()
        finally:
            daemon.stop()


# -- repro store ping -----------------------------------------------------------


class TestPingCli:
    def test_ping_round_trips_against_a_live_daemon(
        self, tmp_path, capsys
    ):
        import json

        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            rc = main([
                "store", "ping", "--socket", str(daemon.socket_path),
                "--json",
            ])
            payload = json.loads(capsys.readouterr().out)
            assert rc == 0
            assert payload["service"] == "repro-verdict-service"
            assert payload["store"] == str(daemon.store_path)
            rc = main([
                "store", "ping", "--socket", str(daemon.socket_path),
            ])
            assert rc == 0
            assert "verdict service on" in capsys.readouterr().out
        finally:
            daemon.stop()

    def test_ping_exits_one_when_nothing_answers(self, tmp_path, capsys):
        import json

        rc = main([
            "store", "ping", "--socket", str(tmp_path / "absent.sock"),
            "--timeout", "1",
        ])
        assert rc == 1
        assert "no verdict service" in capsys.readouterr().err
        rc = main([
            "store", "ping", "--socket", str(tmp_path / "absent.sock"),
            "--json",
        ])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 1
        assert payload["ok"] is False

    def test_campaign_against_a_dead_service_is_a_diagnostic(
        self, tmp_path, capsys
    ):
        """The up-front probe failing must be one stderr line and
        exit 1, not a traceback: with no daemon there is no store to
        degrade to."""
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "dead-service",
            "tests": ["MATS"],
            "faults": ["SAF"],
            "sizes": [3],
            "backends": ["serial"],
        }))
        rc = main([
            "campaign", str(spec),
            "--store", f"repro+unix://{tmp_path / 'absent.sock'}",
            "--retry-attempts", "1",
            "--manifest", str(tmp_path / "manifest.json"),
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "error:" in captured.err
        assert "no verdict service" in captured.err
        assert not (tmp_path / "manifest.json").exists()
