"""Unit tests of the persistent fault-dictionary store itself.

Covers the durability rules the subsystem guarantees: atomic upserts,
round-trip fidelity of every verdict shape, schema-version refusal,
corrupt-file quarantine-and-rebuild, readonly mode and concurrent
multi-process writers.  The kernel integration (tiered cache, stat
hygiene, verdict equivalence) lives in ``test_tiered_kernel.py``.
"""

import multiprocessing
import sqlite3

import pytest

from repro.kernel.cache import SimKey
from repro.store import (
    SCHEMA_VERSION,
    FaultDictionaryStore,
    StoreError,
    StoreSchemaError,
    decode_verdict,
    encode_verdict,
)


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "dict.sqlite"


def key(signature="{up(w0); up(r0)}", case="SA0@0", size=3, domain="sp"):
    return SimKey(signature, case, size, domain)


# -- verdict encoding ----------------------------------------------------------


class TestEncoding:
    def test_booleans_round_trip(self):
        for verdict in (True, False):
            assert decode_verdict(encode_verdict(verdict)) is verdict

    def test_syndromes_round_trip_exactly(self):
        syndrome = frozenset(
            {(0, 1, 2, 1), (1, 0, 0, 0), (2, 2, 1, "-")}
        )
        assert decode_verdict(encode_verdict(syndrome)) == syndrome

    def test_empty_syndrome_round_trips(self):
        assert decode_verdict(encode_verdict(frozenset())) == frozenset()

    def test_encoding_is_canonical(self):
        # Equal syndromes encode to equal rows regardless of set order.
        a = frozenset({(0, 0, 0, 1), (1, 1, 1, 0)})
        b = frozenset({(1, 1, 1, 0), (0, 0, 0, 1)})
        assert encode_verdict(a) == encode_verdict(b)

    def test_unsupported_types_are_refused(self):
        with pytest.raises(StoreError, match="cannot persist"):
            encode_verdict(object())

    def test_garbage_rows_are_refused(self):
        with pytest.raises(StoreError, match="unrecognized"):
            decode_verdict("banana")


# -- basic persistence ---------------------------------------------------------


class TestRoundTrip:
    def test_verdicts_survive_reopen(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(case="SA0@0"), True)
            store.put(key(case="SA1@0"), False)
        with FaultDictionaryStore(store_path) as store:
            assert store.get(key(case="SA0@0")) is True
            assert store.get(key(case="SA1@0")) is False
            assert store.get(key(case="absent")) is None
            assert len(store) == 2

    def test_upsert_overwrites_atomically(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
            store.put(key(), False)
            assert store.get(key()) is False
            assert len(store) == 1

    def test_domains_partition_the_namespace(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(domain="sp"), True)
            store.put(key(domain="2p"), False)
            store.put(key(domain="syn"), frozenset({(0, 0, 0, 1)}))
            assert store.get(key(domain="sp")) is True
            assert store.get(key(domain="2p")) is False
            assert store.get(key(domain="syn")) == frozenset({(0, 0, 0, 1)})

    def test_put_many_is_one_transaction(self, store_path):
        pairs = [(key(case=f"SA0@{i}"), bool(i % 2)) for i in range(50)]
        with FaultDictionaryStore(store_path) as store:
            store.put_many(pairs)
            assert len(store) == 50
            found = store.get_many([k for k, _ in pairs])
            assert found == dict(pairs)

    def test_stats_count_hits_misses_writes(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
            store.get(key())
            store.get(key(case="absent"))
            assert store.stats.writes == 1
            assert store.stats.hits == 1
            assert store.stats.misses == 1
            store.stats.reset()
            assert store.stats.writes == store.stats.hits == 0

    def test_contains_has_no_stat_side_effects(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
            assert key() in store
            assert key(case="absent") not in store
            assert store.stats.hits == 0 and store.stats.misses == 0

    def test_close_is_idempotent(self, store_path):
        store = FaultDictionaryStore(store_path)
        store.close()
        store.close()


# -- readonly mode -------------------------------------------------------------


class TestReadonly:
    def test_lookups_work_but_writes_are_counted_noops(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        with FaultDictionaryStore(store_path, readonly=True) as store:
            assert store.readonly
            assert store.get(key()) is True
            store.put(key(), False)
            store.put_many([(key(case="x"), True)])
            assert store.stats.writes == 0
            assert store.stats.skipped_writes == 2
            assert store.get(key()) is True  # unchanged
            assert "readonly" in store.describe()
        with FaultDictionaryStore(store_path) as store:
            assert len(store) == 1

    def test_missing_file_is_refused(self, store_path):
        with pytest.raises(StoreError, match="does not exist"):
            FaultDictionaryStore(store_path, readonly=True)

    def test_vanished_file_is_not_created_by_readonly_open(
        self, store_path, monkeypatch
    ):
        # The exists() pre-check is a TOCTOU: the path can vanish
        # between the check and the connect, and a plain connect would
        # leave a fresh empty database behind.  Model the race by
        # making the pre-check lie; the URI mode=ro open must then
        # refuse instead of creating the file.
        from repro.store import store as store_module

        monkeypatch.setattr(
            store_module.Path, "exists", lambda self: True
        )
        with pytest.raises(StoreError, match="cannot be opened"):
            FaultDictionaryStore(store_path, readonly=True)
        monkeypatch.undo()
        assert not store_path.exists(), (
            "a readonly open must never create the store file"
        )

    def test_readonly_is_enforced_by_sqlite_itself(self, store_path):
        # PRAGMA query_only is defence in depth; the mode=ro URI makes
        # SQLite refuse writes even if a future code path forgot the
        # readonly flag and issued raw SQL.
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        with FaultDictionaryStore(store_path, readonly=True) as store:
            with pytest.raises(sqlite3.OperationalError, match="readonly"):
                store._conn.execute("DELETE FROM verdicts")


# -- schema versioning ---------------------------------------------------------


class TestSchema:
    def test_version_is_stamped_on_creation(self, store_path):
        FaultDictionaryStore(store_path).close()
        row = sqlite3.connect(store_path).execute(
            "SELECT value FROM meta WHERE key='schema_version'"
        ).fetchone()
        assert row == (str(SCHEMA_VERSION),)

    def test_mismatched_version_is_refused_not_rebuilt(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put(key(), True)
        conn = sqlite3.connect(store_path)
        conn.execute(
            "UPDATE meta SET value='999' WHERE key='schema_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="schema 999"):
            FaultDictionaryStore(store_path)
        # Refusal must leave the file untouched: no quarantine, rows
        # intact for whatever build understands them.
        assert store_path.exists()
        assert not list(store_path.parent.glob("*.corrupt-*"))

    def test_foreign_sqlite_database_is_refused(self, store_path):
        conn = sqlite3.connect(store_path)
        conn.execute("CREATE TABLE unrelated (x)")
        conn.commit()
        conn.close()
        with pytest.raises(StoreSchemaError, match="not a fault-dictionary"):
            FaultDictionaryStore(store_path)


# -- corruption recovery -------------------------------------------------------


class TestCorruptionRecovery:
    def test_garbage_file_is_quarantined_and_rebuilt(self, store_path):
        store_path.write_bytes(b"this is not a database " * 64)
        store = FaultDictionaryStore(store_path)
        assert store.quarantined is not None
        assert store.quarantined.exists()
        assert store.quarantined.name.startswith("dict.sqlite.corrupt-")
        assert store.quarantined.read_bytes().startswith(b"this is not")
        # The rebuilt store is empty but fully functional.
        assert len(store) == 0
        store.put(key(), True)
        assert store.get(key()) is True
        store.close()

    def test_truncated_database_is_quarantined_and_rebuilt(self, store_path):
        with FaultDictionaryStore(store_path) as store:
            store.put_many(
                [(key(case=f"SA0@{i}"), True) for i in range(200)]
            )
        # Chop the file mid-page: header stays valid, content does not.
        payload = store_path.read_bytes()
        assert len(payload) > 1024
        store_path.write_bytes(payload[: len(payload) // 2])
        store = FaultDictionaryStore(store_path)
        assert store.quarantined is not None
        assert len(store) == 0
        store.put(key(), False)
        assert store.get(key()) is False
        store.close()

    def test_quarantine_names_do_not_collide(self, store_path):
        for expected in ("dict.sqlite.corrupt-0", "dict.sqlite.corrupt-1"):
            store_path.write_bytes(b"garbage garbage garbage " * 64)
            store = FaultDictionaryStore(store_path)
            assert store.quarantined.name == expected
            store.close()
            store_path.unlink()  # fresh rebuild left behind a valid store

    def test_readonly_never_quarantines(self, store_path):
        store_path.write_bytes(b"garbage garbage garbage " * 64)
        with pytest.raises(StoreError):
            FaultDictionaryStore(store_path, readonly=True)
        # The damaged evidence is preserved in place.
        assert store_path.read_bytes().startswith(b"garbage")


# -- concurrent multi-process writers ------------------------------------------


def _hammer(path, offset, count, barrier):
    """One writer process: upsert ``count`` distinct keys plus one
    shared contended key, through its own connection."""
    store = FaultDictionaryStore(path)
    barrier.wait()  # maximize write overlap across processes
    for i in range(count):
        store.put(SimKey(f"sig-{offset + i}", "case", 3), bool(i % 2))
    store.put(SimKey("contended", "case", 3), True)
    store.close()


def _race_create(path, offset, barrier):
    """One creator process: open the (initially nonexistent) store at
    the barrier, then write a couple of rows."""
    barrier.wait()  # maximize overlap on schema creation itself
    store = FaultDictionaryStore(path)
    store.put(SimKey(f"sig-{offset}", "case", 3), True)
    store.close()


@pytest.mark.parametrize("workers", [4])
def test_concurrent_creation_of_a_fresh_store_is_safe(store_path, workers):
    """N processes racing to create the same nonexistent store must all
    succeed (a fanned-out campaign's first run does exactly this);
    schema creation serializes on the write lock and losers no-op."""
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        pytest.skip("fork start method unavailable")
    barrier = context.Barrier(workers)
    processes = [
        context.Process(target=_race_create, args=(store_path, w, barrier))
        for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    with FaultDictionaryStore(store_path) as store:
        assert len(store) == workers


@pytest.mark.parametrize("workers", [4])
def test_concurrent_multiprocess_writes_are_all_durable(
    store_path, workers
):
    try:
        context = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        pytest.skip("fork start method unavailable")
    per_worker = 50
    barrier = context.Barrier(workers)
    FaultDictionaryStore(store_path).close()  # pre-create the schema
    processes = [
        context.Process(
            target=_hammer,
            args=(store_path, w * per_worker, per_worker, barrier),
        )
        for w in range(workers)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=120)
        assert process.exitcode == 0
    with FaultDictionaryStore(store_path) as store:
        assert len(store) == workers * per_worker + 1
        assert store.get(SimKey("contended", "case", 3)) is True
        for w in range(workers):
            for i in range(0, per_worker, 7):
                verdict = store.get(
                    SimKey(f"sig-{w * per_worker + i}", "case", 3)
                )
                assert verdict == bool(i % 2)
    # The database survived the contention healthy.
    check = sqlite3.connect(store_path).execute(
        "PRAGMA quick_check"
    ).fetchone()
    assert check == ("ok",)
