"""The verdict service: protocol, daemon lifecycle, kernel clients.

The acceptance criteria of the subsystem: verdicts served over the
socket are byte-identical to direct-store and in-memory simulation
(full standard library, sizes 3-6, concurrent multi-client writers);
clients survive a server restart by reconnecting; stale sockets are
reclaimed while live, foreign, or non-socket occupants are refused --
on both the server and the client side; and ``repro campaign --jobs N
--store repro+unix://...`` matches the direct-store manifest without
any client-side SQLite open.
"""

import json
import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.cli import main
from repro.faults.faultlist import FaultList
from repro.faults.library import MODEL_REGISTRY
from repro.kernel import SimKey, SimulationKernel
from repro.march.catalog import MARCH_C_MINUS, MATS, MATS_PLUS_PLUS
from repro.store import FaultDictionaryStore, StoreError, resolve_store
from repro.store.campaign import (
    CampaignSpec,
    CampaignSpecError,
    normalized_manifest,
    run_campaign,
)
from repro.store.service import (
    PROTOCOL_VERSION,
    SERVICE_MAGIC,
    ServiceError,
    ServiceStore,
    VerdictService,
    is_service_url,
    service_socket_path,
)

TESTS = [MATS, MATS_PLUS_PLUS, MARCH_C_MINUS]

SPEC = {
    "name": "service-unit",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["bitparallel"],
}


@pytest.fixture(scope="module")
def full_library():
    return FaultList.from_names(*MODEL_REGISTRY)


@pytest.fixture
def service(tmp_path):
    daemon = VerdictService(
        tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
    )
    daemon.start()
    yield daemon
    daemon.stop()


def key(signature="{up(w0)}", case="SA0@0", size=3, domain="sp"):
    return SimKey(signature, case, size, domain)


# -- URL scheme ----------------------------------------------------------------


class TestUrls:
    def test_url_scheme_round_trip(self, tmp_path):
        sock = tmp_path / "v.sock"
        url = f"repro+unix://{sock}"
        assert is_service_url(url)
        assert not is_service_url(str(sock))
        assert not is_service_url(None)
        assert service_socket_path(url) == sock
        assert service_socket_path(str(sock)) == sock

    def test_empty_url_is_refused(self):
        with pytest.raises(ServiceError, match="no socket path"):
            service_socket_path("repro+unix://")

    def test_resolve_store_dispatches_urls_to_service_clients(
        self, service
    ):
        client = resolve_store(service.url)
        assert isinstance(client, ServiceStore)
        assert client.socket_path == service.socket_path
        client.close()
        readonly = resolve_store(service.url, readonly=True)
        assert readonly.readonly
        readonly.close()

    def test_resolve_store_passes_ready_clients_through(self, service):
        client = ServiceStore(service.url)
        assert resolve_store(client) is client
        client.close()


# -- the wire protocol ---------------------------------------------------------


class TestProtocol:
    def test_ping_identifies_the_service(self, service):
        with ServiceStore(service.url) as client:
            hello = client.ping()
        assert hello["service"] == SERVICE_MAGIC
        assert hello["protocol"] == PROTOCOL_VERSION
        assert hello["pid"] == os.getpid()
        assert hello["store"] == str(service.store_path)

    def test_verdicts_round_trip(self, service):
        syndrome = frozenset({(0, 1, 2, 0), (1, 0, 0, 1)})
        with ServiceStore(service.url) as client:
            client.put(key(), True)
            client.put_many([
                (key(case="SA1@0"), False),
                (key(domain="syn"), syndrome),
            ])
            assert client.get(key()) is True
            assert client.get(key(case="SA1@0")) is False
            assert client.get(key(domain="syn")) == syndrome
            assert client.get(key(case="absent")) is None
            assert client.get(key(case="absent"), default="x") == "x"
            assert client.stats.hits == 3
            assert client.stats.misses == 2
            assert client.stats.writes == 3

    def test_get_many_and_contains(self, service):
        with ServiceStore(service.url) as client:
            client.put_many([(key(case=f"c{i}"), bool(i % 2))
                             for i in range(4)])
            found = client.get_many(
                [key(case=f"c{i}") for i in range(6)]
            )
            assert found == {
                key(case="c0"): False, key(case="c1"): True,
                key(case="c2"): False, key(case="c3"): True,
            }
            assert client.stats.hits == 4
            assert client.stats.misses == 2
            # Membership probes have no stat side effects.
            assert key(case="c0") in client
            assert key(case="nope") not in client
            assert client.stats.hits == 4
            assert len(client) == 4

    def test_readonly_client_skips_writes(self, service):
        with ServiceStore(service.url) as writer:
            writer.put(key(), True)
        with ServiceStore(service.url, readonly=True) as client:
            client.put(key(), False)
            client.put_many([(key(case="x"), True)])
            assert client.stats.writes == 0
            assert client.stats.skipped_writes == 2
            assert client.get(key()) is True  # unchanged
            assert "readonly" in client.describe()
            with pytest.raises(StoreError, match="readonly"):
                client.compact(max_rows=1)
        assert len(service.store) == 1

    def test_unknown_op_is_refused_not_fatal(self, service):
        with ServiceStore(service.url) as client:
            with pytest.raises(ServiceError, match="unknown protocol op"):
                client._request({"op": "explode"})
            # The connection survives a refused request.
            assert client.ping()["service"] == SERVICE_MAGIC

    def test_malformed_rows_are_refused(self, service):
        with ServiceStore(service.url) as client:
            with pytest.raises(ServiceError, match="malformed"):
                client._request({"op": "get_many", "keys": [["short"]]})
            with pytest.raises(ServiceError, match="malformed"):
                client._request({"op": "put_many", "rows": [[1, 2, 3]]})

    def test_stats_op_reports_per_client_counters(self, service):
        with ServiceStore(service.url) as writer:
            writer.put_many([(key(case=f"c{i}"), True) for i in range(3)])
            writer.get(key(case="c0"))
            writer.get(key(case="absent"))
            stats = writer.server_stats()
        assert stats["row_stats"]["rows"] == 3
        assert stats["store_stats"]["writes"] == 3
        assert stats["clients"]["total"] == 1
        (client_record,) = stats["clients"]["per_client"].values()
        assert client_record["writes"] == 3
        assert client_record["hits"] == 1
        assert client_record["misses"] == 1
        # requests: ping (handshake) + put + 2 gets + stats
        assert client_record["requests"] == 5

    def test_compact_through_the_socket(self, service):
        with ServiceStore(service.url) as client:
            client.put_many([(key(case=f"c{i}"), True) for i in range(8)])
            report = client.compact(max_rows=2)
            assert report["rows_before"] == 8
            assert report["rows_after"] == 2
            assert client.row_stats()["rows"] == 2


# -- daemon lifecycle ----------------------------------------------------------


class TestDaemonLifecycle:
    def test_shutdown_op_checkpoints_wal_and_unlinks_socket(
        self, tmp_path
    ):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        with ServiceStore(daemon.url) as client:
            client.put_many([(key(case=f"c{i}"), True) for i in range(5)])
            assert client.shutdown_server()["stopping"] is True
        assert daemon.wait(timeout=10), "shutdown op must flag the stop"
        daemon.stop()
        assert not daemon.socket_path.exists()
        # Graceful shutdown checkpoints the WAL back into the store.
        assert not (tmp_path / "dict.sqlite-wal").exists()
        with FaultDictionaryStore(tmp_path / "dict.sqlite") as store:
            assert len(store) == 5

    def test_live_service_socket_is_refused(self, service, tmp_path):
        # The daemon flock fires before any probe: two starters can
        # never both decide a socket is stale and reclaim it.
        rival = VerdictService(
            tmp_path / "other.sqlite", service.socket_path
        )
        with pytest.raises(ServiceError, match="already owns"):
            rival.start()
        # The incumbent keeps working, and a failed start must not
        # unlink anything it did not bind.
        assert service.socket_path.exists()
        with ServiceStore(service.url) as client:
            assert client.ping()["service"] == SERVICE_MAGIC

    def test_draining_daemon_cannot_unlink_its_replacement(
        self, tmp_path
    ):
        # stop() only unlinks a socket the daemon actually bound: a
        # start() that was refused must leave the occupant's socket
        # (and its lock) alone.
        first = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        ).start()
        rival = VerdictService(
            tmp_path / "other.sqlite", tmp_path / "verdict.sock"
        )
        with pytest.raises(ServiceError):
            rival.start()
        rival.stop()  # must be a no-op on the incumbent's socket
        assert (tmp_path / "verdict.sock").exists()
        with ServiceStore(first.url) as client:
            assert client.ping()["service"] == SERVICE_MAGIC
        first.stop()

    def test_client_ledger_is_bounded_by_retirement(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.max_client_ledger = 2
        daemon.start()
        try:
            for i in range(5):
                with ServiceStore(daemon.url) as client:
                    client.put(key(case=f"c{i}"), True)
            # Connection state is pruned with the sockets, and only
            # the 2 newest retirees keep individual ledger rows.
            deadline = time.time() + 10
            while daemon._connections and time.time() < deadline:
                time.sleep(0.05)
            assert not daemon._connections
            stats = daemon.snapshot_stats()
            assert len(stats["clients"]["per_client"]) == 2
            retired = stats["clients"]["retired"]
            assert retired["clients"] == 3
            assert stats["clients"]["total"] == 5
            # The write-accounting invariant survives retirement.
            assert retired["writes"] + sum(
                c["writes"]
                for c in stats["clients"]["per_client"].values()
            ) == stats["store_stats"]["writes"] == 5
        finally:
            daemon.stop()

    def test_stale_socket_is_reclaimed(self, tmp_path):
        sock_path = tmp_path / "verdict.sock"
        dead = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        dead.bind(str(sock_path))
        dead.close()  # no unlink: the socket file outlives its server
        assert sock_path.exists()
        daemon = VerdictService(tmp_path / "dict.sqlite", sock_path)
        daemon.start()
        try:
            with ServiceStore(daemon.url) as client:
                assert client.ping()["service"] == SERVICE_MAGIC
        finally:
            daemon.stop()

    def test_non_socket_path_is_refused_and_survives(self, tmp_path):
        sock_path = tmp_path / "verdict.sock"
        sock_path.write_text("precious data, not a socket")
        daemon = VerdictService(tmp_path / "dict.sqlite", sock_path)
        with pytest.raises(ServiceError, match="not a socket"):
            daemon.start()
        assert sock_path.read_text() == "precious data, not a socket"

    def test_foreign_listener_is_refused_by_server_and_client(
        self, tmp_path
    ):
        sock_path = tmp_path / "verdict.sock"
        foreign = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        foreign.bind(str(sock_path))
        foreign.listen(4)

        def babble():
            while True:
                try:
                    conn, _ = foreign.accept()
                except OSError:
                    return
                conn.sendall(b"HTTP/1.1 200 OK\r\n\r\nhello")
                conn.close()

        thread = threading.Thread(target=babble, daemon=True)
        thread.start()
        try:
            with pytest.raises(ServiceError, match="not a verdict service"):
                ServiceStore(sock_path).ping()
            daemon = VerdictService(tmp_path / "dict.sqlite", sock_path)
            with pytest.raises(ServiceError, match="foreign"):
                daemon.start()
            assert sock_path.exists(), "foreign sockets are never unlinked"
        finally:
            foreign.close()
            thread.join(timeout=5)

    def test_client_reconnects_after_server_restart(self, tmp_path):
        store_path = tmp_path / "dict.sqlite"
        sock_path = tmp_path / "verdict.sock"
        first = VerdictService(store_path, sock_path).start()
        client = ServiceStore(first.url)
        client.put(key(), True)
        first.stop()
        # Same socket, same store, brand-new daemon: the client's next
        # request reconnects (and re-handshakes) transparently.
        second = VerdictService(store_path, sock_path).start()
        try:
            assert client.get(key()) is True
            assert client.stats.hits == 1
        finally:
            client.close()
            second.stop()

    def test_framing_error_retries_on_a_fresh_connection(self, tmp_path):
        """A peer that breaks framing *after* a good handshake is a
        corrupted transport, not a foreign listener: the poisoned
        connection is dropped and the same request retries on a fresh
        one (which re-handshakes, re-proving the peer)."""
        import struct

        from repro.store.resilience import RetryPolicy
        from repro.store.service import _recv_frame, _send_frame

        sock_path = tmp_path / "verdict.sock"
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(sock_path))
        listener.listen(4)
        hello = {
            "ok": True, "service": SERVICE_MAGIC,
            "protocol": PROTOCOL_VERSION, "pid": 1, "store": "x",
            "schema_version": 2,
        }

        def half_broken_server():
            # Connection 1: proper handshake, then a bogus oversize
            # header.  Connection 2 (the retry): all proper -- the
            # retried get_many is answered with an empty found list.
            conn, _ = listener.accept()
            _recv_frame(conn)
            _send_frame(conn, hello)
            _recv_frame(conn)
            conn.sendall(struct.pack(">I", 1 << 31))
            conn.close()
            conn, _ = listener.accept()
            _recv_frame(conn)
            _send_frame(conn, dict(hello, pid=2))
            _recv_frame(conn)
            _send_frame(conn, {"ok": True, "found": []})
            conn.close()

        thread = threading.Thread(target=half_broken_server, daemon=True)
        thread.start()
        client = ServiceStore(
            sock_path, retry=RetryPolicy(base_delay=0.001, seed=7)
        )
        try:
            assert client.get(key()) is None  # answered on connection 2
            assert client.retries == 1, (
                "the framing error must cost exactly one retry"
            )
        finally:
            client.close()
            listener.close()
            thread.join(timeout=5)

    def test_dead_service_fails_requests_cleanly(self, tmp_path):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        client = ServiceStore(daemon.url)
        client.ping()
        daemon.stop()
        with pytest.raises(ServiceError, match="no verdict service"):
            client.get(key())
        client.close()

    def test_stop_is_idempotent_and_start_validates_the_store(
        self, tmp_path
    ):
        daemon = VerdictService(
            tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        daemon.stop()
        daemon.stop()
        # A bad dictionary fails the daemon at startup, not the first
        # client: here a schema from the future is refused.
        import sqlite3

        conn = sqlite3.connect(tmp_path / "dict.sqlite")
        conn.execute(
            "UPDATE meta SET value='999' WHERE key='schema_version'"
        )
        conn.commit()
        conn.close()
        from repro.store import StoreSchemaError

        with pytest.raises(StoreSchemaError):
            VerdictService(
                tmp_path / "dict.sqlite", tmp_path / "verdict.sock"
            ).start()
        assert not (tmp_path / "verdict.sock").exists()


# -- kernel clients ------------------------------------------------------------


class TestKernelThroughService:
    def test_kernel_accepts_service_urls(self, service, saf_tf_list):
        kernel = SimulationKernel(backend="bitparallel", store=service.url)
        try:
            assert isinstance(kernel.store, ServiceStore)
            report = kernel.simulate_fault_list(MATS, saf_tf_list, 3)
            assert report.detected or report.missed
            assert kernel.store.stats.writes > 0
        finally:
            kernel.close()
        # The kernel owned the client it opened from the URL.
        assert kernel.store._sock is None

    @pytest.mark.parametrize("size", [3, 4, 5, 6])
    def test_concurrent_clients_byte_identical_to_direct_runs(
        self, size, service, full_library
    ):
        """One writer thread per March test, all hammering one daemon:
        the combined matrix must equal the in-memory (and therefore the
        direct-store) verdicts byte for byte."""
        in_memory = SimulationKernel(backend="bitparallel").detection_matrix(
            TESTS, full_library, size
        )
        matrices = {}
        errors = []

        def simulate(test):
            kernel = SimulationKernel(
                backend="bitparallel", store=service.url
            )
            try:
                matrices.update(
                    kernel.detection_matrix([test], full_library, size)
                )
            except BaseException as error:  # noqa: BLE001 - surfaced below
                errors.append(error)
            finally:
                kernel.close()

        threads = [
            threading.Thread(target=simulate, args=(test,))
            for test in TESTS
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=300)
        assert not errors, errors
        assert json.dumps(matrices, sort_keys=True) == json.dumps(
            in_memory, sort_keys=True
        )
        # A fresh client answers the whole matrix from the service.
        reader = SimulationKernel(backend="bitparallel", store=service.url)
        try:
            second = reader.detection_matrix(TESTS, full_library, size)
            assert reader.backend.served == {}, (
                "the second client must not simulate"
            )
        finally:
            reader.close()
        assert second == in_memory

    def test_syndromes_round_trip_through_the_service(
        self, service, saf_list
    ):
        writer = SimulationKernel(store=service.url)
        expected = {
            case.name: writer.syndrome(MARCH_C_MINUS, case, 4)
            for case in saf_list.instances(4)
        }
        writer.close()
        reader = SimulationKernel(store=service.url)
        for case in saf_list.instances(4):
            assert reader.syndrome(MARCH_C_MINUS, case, 4) == (
                expected[case.name]
            )
        assert reader.store.stats.hits == len(expected)
        reader.close()


# -- campaigns over the socket -------------------------------------------------


class TestServiceCampaign:
    def test_campaign_through_socket_matches_direct_store(self, tmp_path):
        spec = CampaignSpec.from_dict(
            dict(SPEC, backends=["bitparallel", "serial"])
        )
        direct = run_campaign(
            spec, store_path=str(tmp_path / "direct.sqlite"), jobs=1
        )
        daemon = VerdictService(
            tmp_path / "service.sqlite", tmp_path / "verdict.sock"
        )
        daemon.start()
        try:
            served = run_campaign(spec, store_path=daemon.url, jobs=2)
            stats = daemon.snapshot_stats()
        finally:
            daemon.stop()
        assert json.dumps(
            normalized_manifest(served), sort_keys=True
        ) == json.dumps(normalized_manifest(direct), sort_keys=True)
        # The daemon saw every verdict write; no worker opened SQLite
        # itself -- the only store files are the two created above.
        assert stats["store_stats"]["writes"] > 0
        assert sum(
            c["writes"] for c in stats["clients"]["per_client"].values()
        ) == stats["store_stats"]["writes"]
        sqlite_files = sorted(
            p.name for p in tmp_path.iterdir() if "sqlite" in p.name
        )
        assert sqlite_files == ["direct.sqlite", "service.sqlite"]

    def test_shard_mode_refuses_service_urls(self, tmp_path):
        spec = CampaignSpec.from_dict(SPEC)
        with pytest.raises(CampaignSpecError, match="file store"):
            run_campaign(
                spec,
                store_path=f"repro+unix://{tmp_path / 'v.sock'}",
                jobs=2,
                shard=True,
            )

    def test_unreachable_service_fails_the_campaign_up_front(
        self, tmp_path
    ):
        spec = CampaignSpec.from_dict(SPEC)
        with pytest.raises(ServiceError, match="no verdict service"):
            run_campaign(
                spec, store_path=f"repro+unix://{tmp_path / 'nope.sock'}"
            )


# -- CLI -----------------------------------------------------------------------


class TestCli:
    def test_store_stats_via_socket(self, service, capsys):
        with ServiceStore(service.url) as client:
            client.put_many([(key(case=f"c{i}"), True) for i in range(3)])
        assert main([
            "store", "stats", "--socket", str(service.socket_path),
            "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["service"] == SERVICE_MAGIC
        assert payload["row_stats"]["rows"] == 3
        assert payload["store_stats"]["writes"] == 3
        assert main([
            "store", "stats", "--socket", str(service.socket_path),
        ]) == 0
        human = capsys.readouterr().out
        assert "service [" in human and "3 rows" in human

    def test_store_compact_via_socket(self, service, capsys):
        with ServiceStore(service.url) as client:
            client.put_many([(key(case=f"c{i}"), True) for i in range(5)])
        assert main([
            "store", "compact", "--socket", str(service.socket_path),
            "--max-rows", "2", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows_before"] == 5
        assert payload["rows_after"] == 2

    def test_store_shutdown_via_socket(self, service, capsys):
        assert main([
            "store", "shutdown", "--socket", str(service.socket_path),
        ]) == 0
        assert "stopping" in capsys.readouterr().out
        assert service.wait(timeout=10)

    def test_store_stats_needs_a_path_or_socket(self):
        with pytest.raises(StoreError, match="PATH or --socket"):
            main(["store", "stats"])
        with pytest.raises(StoreError, match="PATH or --socket"):
            main(["store", "compact"])

    def test_store_commands_refuse_path_plus_socket(self, tmp_path):
        # Silent precedence would act on the daemon's store while the
        # operator believes PATH was inspected/compacted.
        for command in (["store", "stats"], ["store", "compact"]):
            with pytest.raises(StoreError, match="not both"):
                main(command + [
                    str(tmp_path / "a.sqlite"), "--socket",
                    str(tmp_path / "v.sock"),
                ])

    def test_serve_cli_round_trip(self, tmp_path):
        """`repro serve` end to end in a real subprocess: simulate
        through the socket, read the ledger, shut down gracefully."""
        src = Path(repro.__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(src) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        sock = tmp_path / "verdict.sock"
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             str(tmp_path / "dict.sqlite"), "--socket", str(sock)],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
            text=True, env=env,
        )
        try:
            for _ in range(150):
                try:
                    with ServiceStore(sock) as probe:
                        probe.ping()
                    break
                except ServiceError:
                    time.sleep(0.1)
            else:
                raise AssertionError(
                    "service never came up: " + daemon.stdout.read()
                )
            simulate = subprocess.run(
                [sys.executable, "-m", "repro", "simulate", "MATS", "SAF",
                 "--store", f"repro+unix://{sock}", "--sim-stats"],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert simulate.returncode == 0, simulate.stdout
            assert "service [" in simulate.stdout
        finally:
            if daemon.poll() is None:
                stats = subprocess.run(
                    [sys.executable, "-m", "repro", "store", "stats",
                     "--socket", str(sock), "--json"],
                    capture_output=True, text=True, env=env, timeout=60,
                )
                shutdown = subprocess.run(
                    [sys.executable, "-m", "repro", "store", "shutdown",
                     "--socket", str(sock)],
                    capture_output=True, text=True, env=env, timeout=60,
                )
                daemon.wait(timeout=30)
        assert daemon.returncode == 0, daemon.stdout.read()
        assert shutdown.returncode == 0
        payload = json.loads(stats.stdout)
        assert payload["store_stats"]["writes"] > 0
        assert not sock.exists()
