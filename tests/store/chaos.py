"""Fault-injection harness for the verdict service: the ChaosProxy.

A :class:`ChaosProxy` is a frame-aware man-in-the-middle between a
verdict-service client and its daemon: it listens on a socket of its
own, relays length-prefixed frames in both directions, and -- driven
by a *seeded* RNG -- injects the faults a real deployment produces:

* **delay** -- hold a frame for a moment (slow network, busy daemon);
* **drop** -- close both sides mid-conversation (connection reset);
* **truncate** -- forward only part of a frame, then close (a peer
  dying mid-write);
* **garbage** -- replace the frame's bytes with noise (transport
  corruption).  Never injected into the *first* server->client frame
  of a connection: that frame is the handshake, and a garbled
  handshake is by-design a permanent "foreign listener" error --
  chaos must only exercise the *transient* fault space.

Determinism: every per-connection, per-direction fault stream is
seeded as ``random.Random(f"{seed}:{conn_seq}:{direction}")`` --
string seeding hashes with SHA-512 internally, so the schedule is
stable across processes and runs.  Two proxies with the same plan and
the same connection arrival order inject the same faults.

:class:`ServeDaemon` runs ``repro serve`` as a real subprocess so
tests can SIGKILL it mid-campaign and (optionally) restart it -- the
one fault a proxy cannot fake.
"""

import os
import random
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass
from pathlib import Path

_HEADER = struct.Struct(">I")


@dataclass(frozen=True)
class ChaosPlan:
    """Seeded fault rates (per frame, cumulative <= 1.0)."""

    seed: int = 0
    delay_rate: float = 0.0
    delay_seconds: float = 0.002
    drop_rate: float = 0.0
    truncate_rate: float = 0.0
    garbage_rate: float = 0.0


class ChaosProxy:
    """A deterministic fault-injecting relay for one verdict service.

    ``with ChaosProxy(upstream, proxy_sock, plan) as proxy:`` listens
    on ``proxy_sock``; point clients at ``proxy.url``.  ``counters``
    tallies injected faults by kind; :meth:`total_injected` sums them.
    """

    def __init__(self, upstream, listen_path, plan: ChaosPlan) -> None:
        self.upstream = str(upstream)
        self.listen_path = Path(listen_path)
        self.plan = plan
        self.counters = {
            "connections": 0, "delay": 0, "drop": 0,
            "truncate": 0, "garbage": 0,
        }
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._listener = None
        self._accept_thread = None
        self._relays = []

    @property
    def url(self) -> str:
        return f"repro+unix://{self.listen_path}"

    def total_injected(self) -> int:
        with self._lock:
            return sum(
                count for kind, count in self.counters.items()
                if kind != "connections"
            )

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ChaosProxy":
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(str(self.listen_path))
        listener.listen(64)
        listener.settimeout(0.2)
        self._listener = listener
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="chaos-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        if self._listener is not None:
            try:
                self._listener.close()
            except OSError:
                pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        for thread in list(self._relays):
            thread.join(timeout=5)
        try:
            self.listen_path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- relaying ----------------------------------------------------------------

    def _accept_loop(self) -> None:
        conn_seq = 0
        while not self._stop.is_set():
            try:
                client, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            conn_seq += 1
            with self._lock:
                self.counters["connections"] += 1
            thread = threading.Thread(
                target=self._relay_connection,
                args=(client, conn_seq),
                name=f"chaos-relay-{conn_seq}",
                daemon=True,
            )
            thread.start()
            self._relays.append(thread)

    def _relay_connection(self, client, conn_seq: int) -> None:
        server = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        try:
            server.connect(self.upstream)
        except OSError:
            # Upstream daemon down: the client sees exactly what a
            # direct connection would -- nothing listening.
            client.close()
            server.close()
            return
        closing = threading.Event()
        pumps = [
            threading.Thread(
                target=self._pump,
                args=(client, server, conn_seq, "c2s", closing),
                daemon=True,
            ),
            threading.Thread(
                target=self._pump,
                args=(server, client, conn_seq, "s2c", closing),
                daemon=True,
            ),
        ]
        for pump in pumps:
            pump.start()
        for pump in pumps:
            pump.join()
        for sock in (client, server):
            try:
                sock.close()
            except OSError:
                pass

    def _pump(self, source, sink, conn_seq, direction, closing) -> None:
        rng = random.Random(f"{self.plan.seed}:{conn_seq}:{direction}")
        frame_index = 0
        while not closing.is_set():
            frame = self._read_frame_bytes(source)
            if frame is None:
                break
            fault = self._choose_fault(rng)
            if fault == "garbage" and direction == "s2c" \
                    and frame_index == 0:
                # The handshake frame: garbling it turns a transient
                # transport fault into a permanent "foreign listener"
                # verdict.  Demote to a plain connection drop.
                fault = "drop"
            frame_index += 1
            if fault is not None:
                with self._lock:
                    self.counters[fault] += 1
            if fault == "drop":
                break
            if fault == "truncate" and len(frame) > _HEADER.size:
                try:
                    sink.sendall(frame[: _HEADER.size + 1])
                except OSError:
                    pass
                break
            if fault == "garbage":
                body_len = len(frame) - _HEADER.size
                frame = frame[: _HEADER.size] + bytes(
                    rng.randrange(256) for _ in range(body_len)
                )
            elif fault == "delay":
                time.sleep(self.plan.delay_seconds)
            try:
                sink.sendall(frame)
            except OSError:
                break
        closing.set()
        for sock in (source, sink):
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _choose_fault(self, rng):
        roll = rng.random()
        threshold = 0.0
        for kind, rate in (
            ("drop", self.plan.drop_rate),
            ("truncate", self.plan.truncate_rate),
            ("garbage", self.plan.garbage_rate),
            ("delay", self.plan.delay_rate),
        ):
            threshold += rate
            if roll < threshold:
                return kind
        return None

    @staticmethod
    def _read_frame_bytes(source):
        header = ChaosProxy._recv_exact(source, _HEADER.size)
        if header is None:
            return None
        (length,) = _HEADER.unpack(header)
        body = ChaosProxy._recv_exact(source, length)
        if body is None:
            return None
        return header + body

    @staticmethod
    def _recv_exact(source, count):
        chunks = []
        remaining = count
        while remaining:
            try:
                chunk = source.recv(min(remaining, 65536))
            except OSError:
                return None
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


class ServeDaemon:
    """``repro serve`` as a killable subprocess.

    :meth:`start` blocks until the daemon answers a ping;
    :meth:`kill` SIGKILLs it (the fault a graceful shutdown can't
    model); :meth:`stop` shuts it down politely.  Restart by calling
    :meth:`start` again on the same instance.
    """

    def __init__(self, store_path, socket_path, repo_root=None) -> None:
        self.store_path = str(store_path)
        self.socket_path = Path(socket_path)
        root = Path(repo_root) if repo_root is not None \
            else Path(__file__).resolve().parents[2]
        self.cwd = str(root)
        env = dict(os.environ)
        src = str(root / "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.env = env
        self.process = None

    @property
    def url(self) -> str:
        return f"repro+unix://{self.socket_path}"

    def start(self, wait_seconds: float = 20.0) -> "ServeDaemon":
        from repro.store.resilience import RetryPolicy
        from repro.store.service import ServiceStore

        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", self.store_path,
             "--socket", str(self.socket_path)],
            cwd=self.cwd,
            env=self.env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        deadline = time.monotonic() + wait_seconds
        last_error = None
        while time.monotonic() < deadline:
            if self.process.poll() is not None:
                raise RuntimeError(
                    f"serve daemon exited rc={self.process.returncode}"
                    " before answering"
                )
            client = ServiceStore(
                self.url, retry=RetryPolicy.no_retry(), timeout=2.0
            )
            try:
                client.ping()
                return self
            except Exception as error:  # noqa: BLE001 - poll loop
                last_error = error
                time.sleep(0.05)
            finally:
                client.close()
        raise RuntimeError(f"serve daemon never came up: {last_error}")

    def kill(self) -> None:
        """SIGKILL: no WAL checkpoint, no socket unlink, no goodbyes."""
        if self.process is not None and self.process.poll() is None:
            self.process.send_signal(signal.SIGKILL)
            self.process.wait(timeout=10)

    def stop(self) -> None:
        if self.process is None or self.process.poll() is not None:
            return
        self.process.terminate()
        try:
            self.process.wait(timeout=10)
        except subprocess.TimeoutExpired:
            self.kill()

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
