"""Kernel + store integration: the tiered fault dictionary.

The acceptance criterion of the subsystem: store-backed verdicts are
byte-identical to in-memory simulation on the full standard fault
library at sizes 3-6, and a second process (modelled as a second
kernel with its own cold LRU and store connection) answers entirely
from the store without touching an execution backend.
"""

import json

import pytest

from repro.faults.faultlist import FaultList
from repro.faults.library import MODEL_REGISTRY
from repro.kernel import SimulationKernel
from repro.march.catalog import MARCH_C_MINUS, MATS, MATS_PLUS_PLUS
from repro.store import FaultDictionaryStore, TieredCache

TESTS = [MATS, MATS_PLUS_PLUS, MARCH_C_MINUS]


@pytest.fixture(scope="module")
def full_library():
    return FaultList.from_names(*MODEL_REGISTRY)


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "dict.sqlite"


# -- acceptance: byte-identical across the persistence boundary ----------------


@pytest.mark.parametrize("size", [3, 4, 5, 6])
def test_store_verdicts_byte_identical_to_in_memory(
    size, store_path, full_library
):
    in_memory = SimulationKernel(backend="bitparallel").detection_matrix(
        TESTS, full_library, size
    )
    writer = SimulationKernel(backend="bitparallel", store=store_path)
    first = writer.detection_matrix(TESTS, full_library, size)
    writer.close()
    reader = SimulationKernel(backend="bitparallel", store=store_path)
    second = reader.detection_matrix(TESTS, full_library, size)
    assert reader.backend.served == {}, "second process must not simulate"
    reader.close()
    assert first == in_memory
    assert second == in_memory
    assert json.dumps(second, sort_keys=True) == json.dumps(
        in_memory, sort_keys=True
    )


def test_store_rows_are_backend_agnostic(store_path, full_library):
    # Verdicts written by one backend must serve every other backend:
    # the row is keyed by (signature, case, size, domain) only.
    writer = SimulationKernel(backend="serial", store=store_path)
    serial = writer.detection_matrix(TESTS, full_library, 3)
    writer.close()
    reader = SimulationKernel(backend="bitparallel", store=store_path)
    packed = reader.detection_matrix(TESTS, full_library, 3)
    assert reader.backend.served == {}
    assert packed == serial
    reader.close()


def test_syndromes_round_trip_through_the_store(store_path, full_library):
    writer = SimulationKernel(store=store_path)
    expected = {
        case.name: writer.syndrome(MARCH_C_MINUS, case, 4)
        for case in full_library.instances(4)
    }
    writer.close()
    reader = SimulationKernel(store=store_path)
    for case in full_library.instances(4):
        assert reader.syndrome(MARCH_C_MINUS, case, 4) == expected[case.name]
    assert reader.store.stats.hits == len(expected)
    reader.close()


def test_two_port_verdicts_round_trip_through_the_store(store_path):
    from repro.multiport.faults import weak_fault_cases
    from repro.multiport.march2p import MARCH_2PF

    writer = SimulationKernel(store=store_path)
    expected = [
        writer.detects_2p(MARCH_2PF, case, 3)
        for case in weak_fault_cases(3)
    ]
    writer.close()
    reader = SimulationKernel(store=store_path)
    observed = [
        reader.detects_2p(MARCH_2PF, case, 3)
        for case in weak_fault_cases(3)
    ]
    assert observed == expected
    assert reader.store.stats.hits == len(expected)
    reader.close()


# -- tier mechanics ------------------------------------------------------------


class TestTieredCache:
    def test_kernel_without_store_has_plain_cache(self):
        kernel = SimulationKernel()
        assert kernel.store is None
        assert not isinstance(kernel.cache, TieredCache)

    def test_store_hits_promote_into_the_lru(self, store_path, saf_list):
        writer = SimulationKernel(store=store_path)
        writer.simulate_fault_list(MATS, saf_list, 3)
        writer.close()
        reader = SimulationKernel(store=store_path)
        reader.simulate_fault_list(MATS, saf_list, 3)
        first_disk_hits = reader.store.stats.hits
        assert first_disk_hits > 0
        reader.simulate_fault_list(MATS, saf_list, 3)
        # The repeat is answered by the promoted LRU entries: the
        # store sees no further traffic.
        assert reader.store.stats.hits == first_disk_hits
        assert reader.stats.hits > 0
        reader.close()

    def test_close_leaves_caller_provided_stores_open(
        self, store_path, saf_list
    ):
        # Two kernels sharing one store instance: closing one kernel
        # must not cut the other's connection.
        store = FaultDictionaryStore(store_path)
        first = SimulationKernel(store=store)
        second = SimulationKernel(store=store)
        first.simulate_fault_list(MATS, saf_list, 3)
        first.close()
        report = second.simulate_fault_list(MATS, saf_list, 3)
        assert report.detected or report.missed
        assert second.store.stats.hits > 0
        second.close()
        store.get_many([])  # still open: the caller owns its lifecycle
        store.close()

    def test_close_closes_stores_opened_from_a_path(
        self, store_path, saf_list
    ):
        kernel = SimulationKernel(store=store_path)
        kernel.simulate_fault_list(MATS, saf_list, 3)
        kernel.close()
        assert kernel.store._conn is None

    def test_write_through_persists_before_process_exit(
        self, store_path, saf_list
    ):
        kernel = SimulationKernel(store=store_path)
        kernel.simulate_fault_list(MATS, saf_list, 3)
        # No close(): simulate a killed process.  WAL keeps the rows.
        with FaultDictionaryStore(store_path) as store:
            assert len(store) == len(saf_list.instances(3))

    def test_readonly_kernel_never_writes(self, store_path, saf_tf_list):
        writer = SimulationKernel(store=store_path)
        writer.simulate_fault_list(MATS, FaultList.from_names("SAF"), 3)
        writer.close()
        rows_before = len(FaultDictionaryStore(store_path))
        reader = SimulationKernel(
            store=store_path, store_readonly=True
        )
        reader.simulate_fault_list(MATS, saf_tf_list, 3)  # TF rows are new
        assert reader.store.stats.skipped_writes > 0
        reader.close()
        assert len(FaultDictionaryStore(store_path)) == rows_before

    def test_get_many_answers_memory_misses_in_one_store_pass(
        self, store_path, saf_list
    ):
        writer = SimulationKernel(store=store_path)
        writer.simulate_fault_list(MATS, saf_list, 3)
        writer.close()
        reader = SimulationKernel(store=store_path)
        from repro.kernel import SimKey, canonical_signature

        keys = [
            SimKey(canonical_signature(MATS), case.name, 3)
            for case in saf_list.instances(3)
        ] + [SimKey("absent", "case", 3)]
        found = reader.cache.get_many(keys)
        assert set(found) == set(keys[:-1])
        assert reader.store.stats.hits == len(keys) - 1
        # Found keys were promoted: a repeat stays in memory.
        reader.cache.get_many(keys[:-1])
        assert reader.store.stats.hits == len(keys) - 1
        reader.close()

    def test_peek_and_contains_see_both_tiers(self, store_path, saf_list):
        writer = SimulationKernel(store=store_path)
        writer.simulate_fault_list(MATS, saf_list, 3)
        writer.close()
        reader = SimulationKernel(store=store_path)
        from repro.kernel import SimKey, canonical_signature

        key = SimKey(
            canonical_signature(MATS), saf_list.instances(3)[0].name, 3
        )
        assert reader.cache.peek(key)  # in store, not yet in memory
        assert key in reader.cache
        reader.close()


# -- stat hygiene (the clear()/describe_stats() satellite) ---------------------


class TestStatHygiene:
    def test_describe_stats_reports_the_store_tier(
        self, store_path, saf_list
    ):
        kernel = SimulationKernel(store=store_path)
        kernel.simulate_fault_list(MATS, saf_list, 3)
        description = kernel.describe_stats()
        assert "store [dict.sqlite]" in description
        assert "writes" in description
        kernel.close()

    def test_describe_stats_marks_readonly_stores(
        self, store_path, saf_list
    ):
        SimulationKernel(store=store_path).simulate_fault_list(
            MATS, saf_list, 3
        )
        kernel = SimulationKernel(store=store_path, store_readonly=True)
        assert "readonly" in kernel.describe_stats()
        kernel.close()

    def test_clear_resets_store_counters_but_keeps_rows(
        self, store_path, saf_list
    ):
        kernel = SimulationKernel(store=store_path)
        kernel.simulate_fault_list(MATS, saf_list, 3)
        assert kernel.store.stats.writes > 0
        kernel.clear()
        # Every counter of every tier starts from zero: --sim-stats
        # can never mix numbers from two runs.
        assert kernel.store.stats.writes == 0
        assert kernel.store.stats.hits == kernel.store.stats.misses == 0
        assert kernel.stats.lookups == 0
        assert getattr(kernel.backend, "served", {}) == {}
        # ... but the persistent rows survive: a fresh run is all hits.
        kernel.simulate_fault_list(MATS, saf_list, 3)
        assert kernel.store.stats.hits > 0
        assert kernel.backend.served == {}
        kernel.close()

    def test_without_store_describe_stats_has_no_store_segment(self):
        kernel = SimulationKernel()
        assert "store [" not in kernel.describe_stats()
