"""The declarative campaign runner and its manifest contract."""

import json

import pytest

from repro.store.campaign import (
    MANIFEST_SCHEMA,
    CampaignSpec,
    CampaignSpecError,
    normalized_manifest,
    run_campaign,
    summarize,
    write_manifest,
)


def normalized_dump(manifest):
    return json.dumps(normalized_manifest(manifest), sort_keys=True)

SPEC = {
    "name": "unit",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["bitparallel"],
}


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "dict.sqlite"


class TestSpec:
    def test_from_dict_normalizes_and_validates(self):
        spec = CampaignSpec.from_dict(dict(SPEC, faults=["saf", "tf"]))
        assert spec.faults == ("SAF", "TF")
        assert spec.sizes == (3,)
        assert spec.backends == ("bitparallel",)

    def test_defaults(self):
        spec = CampaignSpec.from_dict(
            {"name": "d", "tests": ["MATS"], "faults": ["SAF"]}
        )
        assert spec.sizes == (3,)
        assert spec.backends == ("bitparallel",)
        assert spec.store is None

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown campaign"):
            CampaignSpec.from_dict(dict(SPEC, typo=1))

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown fault model"):
            CampaignSpec.from_dict(dict(SPEC, faults=["NOPE"]))

    def test_unknown_backend_rejected(self):
        # Campaign specs share the kernel's validate_backend_name, so
        # the message (and its valid-choices list) is the unified one.
        with pytest.raises(
            CampaignSpecError, match="unknown simulation backend"
        ):
            CampaignSpec.from_dict(dict(SPEC, backends=["gpu"]))

    def test_bad_sizes_rejected(self):
        for sizes in ([], [0], [True], ["3"]):
            with pytest.raises(CampaignSpecError, match="sizes"):
                CampaignSpec.from_dict(dict(SPEC, sizes=sizes))

    def test_missing_required_keys_rejected(self):
        with pytest.raises(CampaignSpecError, match="requires"):
            CampaignSpec.from_dict({"name": "x", "tests": ["MATS"]})

    def test_from_file_and_json_errors(self, tmp_path):
        good = tmp_path / "spec.json"
        good.write_text(json.dumps(SPEC))
        assert CampaignSpec.from_file(good).name == "unit"
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="not valid JSON"):
            CampaignSpec.from_file(bad)

    def test_missing_spec_file_raises_spec_error(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="cannot read"):
            CampaignSpec.from_file(tmp_path / "absent.json")

    def test_non_string_fault_names_rejected(self):
        with pytest.raises(CampaignSpecError, match="must be strings"):
            CampaignSpec.from_dict(dict(SPEC, faults=[3]))

    def test_tests_accept_literal_notation(self):
        spec = CampaignSpec.from_dict(
            dict(SPEC, tests=["MATS", "{up(w0); up(r0)}"])
        )
        resolved = spec.resolved_tests()
        assert resolved[0].name == "MATS"
        assert resolved[1].name == "{up(w0); up(r0)}"
        assert len(resolved[1].elements) == 2

    def test_jobs_iterate_backends_slowest_tests_fastest(self):
        spec = CampaignSpec.from_dict(
            dict(SPEC, sizes=[3, 4], backends=["bitparallel", "serial"])
        )
        assert spec.jobs() == [
            ("bitparallel", 3, "MATS"), ("bitparallel", 3, "MarchC-"),
            ("bitparallel", 4, "MATS"), ("bitparallel", 4, "MarchC-"),
            ("serial", 3, "MATS"), ("serial", 3, "MarchC-"),
            ("serial", 4, "MATS"), ("serial", 4, "MarchC-"),
        ]


class TestRunCampaign:
    def test_manifest_shape_and_verdicts(self, store_path):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec, store_path=str(store_path))
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["campaign"] == "unit"
        assert manifest["spec"]["faults"] == ["SAF", "TF"]
        # One job per (test, backend, size) cell of the sweep.
        assert manifest["totals"]["jobs"] == 2
        assert manifest["totals"]["results"] == 2
        assert manifest["totals"]["failed"] == 0
        assert manifest["parallel"]["mode"] == "sequential"
        assert [job["test"] for job in manifest["jobs"]] == [
            "MATS", "MarchC-"
        ]
        rows = {row["test"]: row for row in manifest["results"]}
        # MarchC- covers SAF+TF fully; MATS misses TF cases.
        assert rows["MarchC-"]["coverage"] == 1.0
        assert rows["MarchC-"]["missed"] == []
        assert rows["MATS"]["coverage"] < 1.0
        assert rows["MATS"]["missed"]
        assert rows["MATS"]["detected"] + len(rows["MATS"]["missed"]) == (
            rows["MATS"]["fault_cases"]
        )

    def test_second_campaign_is_pure_store_lookup(self, store_path):
        spec = CampaignSpec.from_dict(SPEC)
        first = run_campaign(spec, store_path=str(store_path))
        second = run_campaign(spec, store_path=str(store_path))
        assert first["totals"]["verdicts_simulated"] > 0
        assert second["totals"]["verdicts_simulated"] == 0
        assert second["totals"]["verdicts_from_store"] > 0
        assert first["results"] == second["results"]

    def test_backends_deduplicate_through_the_store(self, store_path):
        spec = CampaignSpec.from_dict(
            dict(SPEC, backends=["bitparallel", "serial"])
        )
        manifest = run_campaign(spec, store_path=str(store_path))
        packed_jobs = manifest["jobs"][:2]
        serial_jobs = manifest["jobs"][2:]
        assert sum(j["store"]["writes"] for j in packed_jobs) > 0
        assert sum(j["store"]["hits"] for j in serial_jobs) == sum(
            j["store"]["writes"] for j in packed_jobs
        )
        for job in serial_jobs:
            assert job["served"] == {}, "second backend must not simulate"
        # Same verdicts either way.
        by_backend = {}
        for row in manifest["results"]:
            by_backend.setdefault(row["backend"], []).append(
                {k: v for k, v in row.items() if k != "backend"}
            )
        assert by_backend["bitparallel"] == by_backend["serial"]

    def test_campaign_without_store_still_runs(self):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec)
        assert manifest["store"] is None
        assert manifest["totals"]["verdicts_from_store"] == 0
        assert manifest["jobs"][0].get("store") is None

    def test_spec_store_field_is_used_and_cli_overrides(self, tmp_path):
        spec_store = tmp_path / "from-spec.sqlite"
        spec = CampaignSpec.from_dict(dict(SPEC, store=str(spec_store)))
        manifest = run_campaign(spec)
        assert manifest["store"] == str(spec_store)
        assert spec_store.exists()
        override = tmp_path / "override.sqlite"
        manifest = run_campaign(spec, store_path=str(override))
        assert manifest["store"] == str(override)
        assert override.exists()

    def test_manifest_writes_and_summarizes(self, store_path, tmp_path):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec, store_path=str(store_path))
        path = write_manifest(manifest, tmp_path / "manifest.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["campaign"] == "unit"
        assert reloaded["totals"]["results"] == 2
        text = summarize(manifest)
        assert "campaign 'unit'" in text
        assert "MarchC-" in text and "100.0%" in text


class TestFanOut:
    """The parallel executor: determinism, isolation, sharding."""

    SWEEP = dict(SPEC, backends=["bitparallel", "serial"])  # 4 jobs

    def test_parallel_manifest_identical_to_sequential(self, store_path):
        spec = CampaignSpec.from_dict(self.SWEEP)
        sequential = run_campaign(spec, store_path=str(store_path), jobs=1)
        fanned = run_campaign(spec, store_path=str(store_path), jobs=4)
        assert fanned["parallel"] == {
            "jobs": 4, "mode": "shared", "shard_merge": None,
        }
        assert normalized_dump(fanned) == normalized_dump(sequential)
        # The normalized form still carries the determinism contract.
        normalized = normalized_manifest(fanned)
        assert [job["test"] for job in normalized["jobs"]] == [
            "MATS", "MarchC-", "MATS", "MarchC-"
        ]
        assert normalized["results"] == fanned["results"]
        assert "seconds" not in normalized["totals"]
        assert "parallel" not in normalized

    def test_parallel_without_store_identical_too(self):
        spec = CampaignSpec.from_dict(self.SWEEP)
        sequential = run_campaign(spec, jobs=1)
        fanned = run_campaign(spec, jobs=3)
        assert normalized_dump(fanned) == normalized_dump(sequential)

    def test_progress_reports_every_job(self, store_path):
        spec = CampaignSpec.from_dict(self.SWEEP)
        events = []
        run_campaign(
            spec, store_path=str(store_path), jobs=2,
            progress=lambda done, total, record: events.append(
                (done, total, record["test"], record["error"])
            ),
        )
        assert len(events) == 4
        assert [done for done, _, _, _ in events] == [1, 2, 3, 4]
        assert all(total == 4 for _, total, _, _ in events)
        assert all(error is None for _, _, _, error in events)

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_crashed_job_is_recorded_and_the_sweep_continues(self, jobs):
        spec = CampaignSpec.from_dict(dict(SPEC, tests=["MATS", "{bogus"]))
        manifest = run_campaign(spec, jobs=jobs)
        assert manifest["totals"]["jobs"] == 2
        assert manifest["totals"]["failed"] == 1
        assert manifest["totals"]["results"] == 1
        healthy, crashed = manifest["jobs"]
        assert healthy["error"] is None
        assert crashed["error"] is not None
        assert "ValueError" in crashed["error"]
        assert crashed["test"] == "{bogus"
        assert manifest["results"][0]["test"] == "MATS"
        text = summarize(manifest)
        assert "FAILED" in text and "ValueError" in text

    def test_crash_isolation_is_deterministic_across_widths(self):
        spec = CampaignSpec.from_dict(dict(
            SPEC, tests=["MATS", "{broken", "MarchC-"],
        ))
        assert normalized_dump(run_campaign(spec, jobs=1)) == (
            normalized_dump(run_campaign(spec, jobs=3))
        )

    def test_bad_jobs_width_rejected(self):
        spec = CampaignSpec.from_dict(SPEC)
        with pytest.raises(CampaignSpecError, match="jobs"):
            run_campaign(spec, jobs=0)

    def test_hard_worker_death_still_yields_a_manifest(self, monkeypatch):
        """A SIGKILLed worker (OOM killer, segfault) breaks the whole
        pool: every live future fails with BrokenProcessPool.  The
        campaign must record every unfinished job as failed and still
        return the manifest -- losing it would cost the record of every
        job that *did* complete."""
        import os
        import signal

        from repro.store import campaign as campaign_module

        real = campaign_module._simulate_job

        def killer(request):
            if request.test_text == "MarchY":
                os.kill(os.getpid(), signal.SIGKILL)
            return real(request)

        # Fork-context workers inherit the patched module, so the kill
        # happens inside a real pool worker, not the test process.
        monkeypatch.setattr(campaign_module, "_simulate_job", killer)
        spec = CampaignSpec.from_dict(dict(
            SPEC, tests=["MATS", "MarchY", "MSCAN", "MarchX"],
        ))
        manifest = run_campaign(spec, jobs=2)
        assert manifest["totals"]["jobs"] == 4
        assert manifest["totals"]["failed"] >= 1
        by_test = {job["test"]: job for job in manifest["jobs"]}
        assert by_test["MarchY"]["error"] is not None
        assert "BrokenProcessPool" in by_test["MarchY"]["error"]
        # No job row is silently dropped: each either carries its
        # result or an error, and the totals reconcile.
        for job in manifest["jobs"]:
            assert (job["error"] is None) == (job["fault_cases"] is not None)
        assert manifest["totals"]["failed"] + manifest["totals"]["results"] \
            == manifest["totals"]["jobs"]
        assert "FAILED" in summarize(manifest)


class TestSharding:
    SWEEP = dict(SPEC, backends=["bitparallel", "serial"])

    def test_shards_are_merged_and_deleted(self, store_path):
        spec = CampaignSpec.from_dict(self.SWEEP)
        manifest = run_campaign(
            spec, store_path=str(store_path), jobs=2, shard=True
        )
        assert manifest["parallel"]["mode"] == "sharded"
        merge = manifest["parallel"]["shard_merge"]
        assert merge["shards"] == 4
        # Shard mode trades live dedup away: both backends simulated,
        # so half the merged rows were conflict-resolved duplicates.
        assert merge["inserted"] > 0 and merge["merged"] > 0
        assert merge["inserted"] + merge["merged"] == merge["source_rows"]
        assert not list(
            store_path.parent.glob(f"{store_path.name}.shard-*")
        ), "worker shards must be cleaned up"
        # The merged store now serves a sequential re-run entirely.
        again = run_campaign(spec, store_path=str(store_path), jobs=1)
        assert again["totals"]["verdicts_simulated"] == 0
        assert again["totals"]["verdicts_from_store"] > 0

    def test_sharded_manifest_identical_to_sequential(self, tmp_path):
        spec = CampaignSpec.from_dict(self.SWEEP)
        sequential = run_campaign(
            spec, store_path=str(tmp_path / "seq.sqlite"), jobs=1
        )
        sharded = run_campaign(
            spec, store_path=str(tmp_path / "shard.sqlite"),
            jobs=2, shard=True,
        )
        assert normalized_dump(sharded) == normalized_dump(sequential)

    def test_shard_requires_writable_store(self, store_path):
        spec = CampaignSpec.from_dict(SPEC)
        with pytest.raises(CampaignSpecError, match="--store"):
            run_campaign(spec, jobs=2, shard=True)
        run_campaign(spec, store_path=str(store_path))  # build the store
        with pytest.raises(CampaignSpecError, match="readonly"):
            run_campaign(
                spec, store_path=str(store_path), jobs=2,
                shard=True, store_readonly=True,
            )
