"""The declarative campaign runner and its manifest contract."""

import json

import pytest

from repro.store.campaign import (
    MANIFEST_SCHEMA,
    CampaignSpec,
    CampaignSpecError,
    run_campaign,
    summarize,
    write_manifest,
)

SPEC = {
    "name": "unit",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["bitparallel"],
}


@pytest.fixture
def store_path(tmp_path):
    return tmp_path / "dict.sqlite"


class TestSpec:
    def test_from_dict_normalizes_and_validates(self):
        spec = CampaignSpec.from_dict(dict(SPEC, faults=["saf", "tf"]))
        assert spec.faults == ("SAF", "TF")
        assert spec.sizes == (3,)
        assert spec.backends == ("bitparallel",)

    def test_defaults(self):
        spec = CampaignSpec.from_dict(
            {"name": "d", "tests": ["MATS"], "faults": ["SAF"]}
        )
        assert spec.sizes == (3,)
        assert spec.backends == ("bitparallel",)
        assert spec.store is None

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown campaign"):
            CampaignSpec.from_dict(dict(SPEC, typo=1))

    def test_unknown_fault_model_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown fault model"):
            CampaignSpec.from_dict(dict(SPEC, faults=["NOPE"]))

    def test_unknown_backend_rejected(self):
        with pytest.raises(CampaignSpecError, match="unknown backend"):
            CampaignSpec.from_dict(dict(SPEC, backends=["gpu"]))

    def test_bad_sizes_rejected(self):
        for sizes in ([], [0], [True], ["3"]):
            with pytest.raises(CampaignSpecError, match="sizes"):
                CampaignSpec.from_dict(dict(SPEC, sizes=sizes))

    def test_missing_required_keys_rejected(self):
        with pytest.raises(CampaignSpecError, match="requires"):
            CampaignSpec.from_dict({"name": "x", "tests": ["MATS"]})

    def test_from_file_and_json_errors(self, tmp_path):
        good = tmp_path / "spec.json"
        good.write_text(json.dumps(SPEC))
        assert CampaignSpec.from_file(good).name == "unit"
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(CampaignSpecError, match="not valid JSON"):
            CampaignSpec.from_file(bad)

    def test_missing_spec_file_raises_spec_error(self, tmp_path):
        with pytest.raises(CampaignSpecError, match="cannot read"):
            CampaignSpec.from_file(tmp_path / "absent.json")

    def test_non_string_fault_names_rejected(self):
        with pytest.raises(CampaignSpecError, match="must be strings"):
            CampaignSpec.from_dict(dict(SPEC, faults=[3]))

    def test_tests_accept_literal_notation(self):
        spec = CampaignSpec.from_dict(
            dict(SPEC, tests=["MATS", "{up(w0); up(r0)}"])
        )
        resolved = spec.resolved_tests()
        assert resolved[0].name == "MATS"
        assert resolved[1].name == "{up(w0); up(r0)}"
        assert len(resolved[1].elements) == 2

    def test_jobs_iterate_sizes_fastest(self):
        spec = CampaignSpec.from_dict(
            dict(SPEC, sizes=[3, 4], backends=["bitparallel", "serial"])
        )
        assert list(spec.jobs()) == [
            ("bitparallel", 3), ("bitparallel", 4),
            ("serial", 3), ("serial", 4),
        ]


class TestRunCampaign:
    def test_manifest_shape_and_verdicts(self, store_path):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec, store_path=str(store_path))
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["campaign"] == "unit"
        assert manifest["spec"]["faults"] == ["SAF", "TF"]
        assert manifest["totals"]["jobs"] == 1
        assert manifest["totals"]["results"] == 2
        rows = {row["test"]: row for row in manifest["results"]}
        # MarchC- covers SAF+TF fully; MATS misses TF cases.
        assert rows["MarchC-"]["coverage"] == 1.0
        assert rows["MarchC-"]["missed"] == []
        assert rows["MATS"]["coverage"] < 1.0
        assert rows["MATS"]["missed"]
        assert rows["MATS"]["detected"] + len(rows["MATS"]["missed"]) == (
            rows["MATS"]["fault_cases"]
        )

    def test_second_campaign_is_pure_store_lookup(self, store_path):
        spec = CampaignSpec.from_dict(SPEC)
        first = run_campaign(spec, store_path=str(store_path))
        second = run_campaign(spec, store_path=str(store_path))
        assert first["totals"]["verdicts_simulated"] > 0
        assert second["totals"]["verdicts_simulated"] == 0
        assert second["totals"]["verdicts_from_store"] > 0
        assert first["results"] == second["results"]

    def test_backends_deduplicate_through_the_store(self, store_path):
        spec = CampaignSpec.from_dict(
            dict(SPEC, backends=["bitparallel", "serial"])
        )
        manifest = run_campaign(spec, store_path=str(store_path))
        packed_job, serial_job = manifest["jobs"]
        assert packed_job["store"]["writes"] > 0
        assert serial_job["store"]["hits"] == packed_job["store"]["writes"]
        assert serial_job["served"] == {}, "second backend must not simulate"
        # Same verdicts either way.
        by_backend = {}
        for row in manifest["results"]:
            by_backend.setdefault(row["backend"], []).append(
                {k: v for k, v in row.items() if k != "backend"}
            )
        assert by_backend["bitparallel"] == by_backend["serial"]

    def test_campaign_without_store_still_runs(self):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec)
        assert manifest["store"] is None
        assert manifest["totals"]["verdicts_from_store"] == 0
        assert manifest["jobs"][0].get("store") is None

    def test_spec_store_field_is_used_and_cli_overrides(self, tmp_path):
        spec_store = tmp_path / "from-spec.sqlite"
        spec = CampaignSpec.from_dict(dict(SPEC, store=str(spec_store)))
        manifest = run_campaign(spec)
        assert manifest["store"] == str(spec_store)
        assert spec_store.exists()
        override = tmp_path / "override.sqlite"
        manifest = run_campaign(spec, store_path=str(override))
        assert manifest["store"] == str(override)
        assert override.exists()

    def test_manifest_writes_and_summarizes(self, store_path, tmp_path):
        spec = CampaignSpec.from_dict(SPEC)
        manifest = run_campaign(spec, store_path=str(store_path))
        path = write_manifest(manifest, tmp_path / "manifest.json")
        reloaded = json.loads(path.read_text())
        assert reloaded["campaign"] == "unit"
        assert reloaded["totals"]["results"] == 2
        text = summarize(manifest)
        assert "campaign 'unit'" in text
        assert "MarchC-" in text and "100.0%" in text
