"""Chaos acceptance: campaigns survive a faulting infrastructure.

The subsystem's acceptance criteria (ISSUE 7):

* a Table 3 campaign run through a :class:`ChaosProxy` injecting
  seeded disconnects, truncated frames and one mid-campaign daemon
  kill/restart produces a ``normalized_manifest()`` **byte-identical**
  to the direct-store run, with zero failed jobs;
* with retries disabled, the same faults produce ``degraded`` rows
  whose spill shards merge back to an **identical verdict
  population** -- zero verdicts lost, ever.

Fault schedules are seeded, so a failure here reproduces exactly.
"""

import json
import sqlite3
import time
import warnings

import pytest

from chaos import ChaosPlan, ChaosProxy, ServeDaemon
from repro.store.campaign import (
    CampaignSpec,
    normalized_manifest,
    run_campaign,
)
from repro.store.resilience import RetryPolicy
from repro.store.service import VerdictService

#: A Table 3 slice: 2 tests x 2 backends = 4 jobs, small enough for a
#: test suite, wide enough that jobs overlap under --jobs 2.
SPEC = CampaignSpec.from_dict({
    "name": "chaos-table3",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["bitparallel", "serial"],
})

#: The --jobs 4 kill sweep: 8 jobs so every worker holds several.
WIDE_SPEC = CampaignSpec.from_dict({
    "name": "chaos-wide",
    "tests": ["MATS", "MATS++", "MarchX", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["bitparallel", "serial"],
})


def normalized_dump(manifest):
    return json.dumps(normalized_manifest(manifest), sort_keys=True)


def verdict_population(store_path):
    """Every verdict row, as a set: what must survive any fault."""
    conn = sqlite3.connect(store_path)
    try:
        return set(conn.execute(
            "SELECT signature, case_name, size, domain, verdict"
            " FROM verdicts"
        ))
    finally:
        conn.close()


def reference_run(spec, tmp_path):
    """The ground truth: the same spec against a direct file store."""
    store = tmp_path / "reference.sqlite"
    manifest = run_campaign(spec, store_path=str(store), jobs=1)
    assert manifest["totals"]["failed"] == 0
    assert manifest["totals"]["degraded"] == 0
    return manifest, verdict_population(store)


class TestChaosProxyCampaigns:
    def test_faulty_transport_with_daemon_restart_is_byte_identical(
        self, tmp_path
    ):
        """The tentpole acceptance: seeded drops, truncated frames,
        garbage, delays AND one SIGKILL+restart of the daemon -- and
        the normalized manifest must not flinch."""
        reference, population = reference_run(SPEC, tmp_path)

        store = tmp_path / "chaos.sqlite"
        daemon_sock = tmp_path / "daemon.sock"
        proxy_sock = tmp_path / "proxy.sock"
        plan = ChaosPlan(
            seed=1301,
            drop_rate=0.04,
            truncate_rate=0.02,
            garbage_rate=0.02,
            delay_rate=0.10,
            delay_seconds=0.001,
        )
        daemon = ServeDaemon(store, daemon_sock)
        daemon.start()
        restarted = []

        def restart_once(done, total, record):
            # One real daemon death mid-campaign: SIGKILL (stale
            # socket, unflushed WAL) and a cold restart while the
            # other workers are still writing through the proxy.
            if not restarted:
                restarted.append(done)
                daemon.kill()
                daemon.start()

        try:
            with ChaosProxy(str(daemon_sock), proxy_sock, plan) as proxy:
                manifest = run_campaign(
                    SPEC,
                    store_path=proxy.url,
                    jobs=2,
                    progress=restart_once,
                    retry=RetryPolicy(
                        max_attempts=25,
                        base_delay=0.02,
                        max_delay=0.4,
                        seed=7,
                    ),
                )
                injected = proxy.total_injected()
        finally:
            daemon.stop()

        assert restarted, "the restart hook never fired"
        assert injected > 0, (
            "the chaos plan injected nothing; the run proved nothing"
        )
        assert manifest["totals"]["failed"] == 0
        assert normalized_dump(manifest) == normalized_dump(reference), (
            "infrastructure faults may never change campaign results"
        )
        assert verdict_population(store) == population

    def test_retries_disabled_degrades_and_merges_identically(
        self, tmp_path
    ):
        """Same fault space, zero retry budget: jobs must degrade to
        spill shards (not fail) and the merged population must equal
        the direct run's exactly."""
        reference, population = reference_run(SPEC, tmp_path)

        store = tmp_path / "chaos.sqlite"
        daemon_sock = tmp_path / "daemon.sock"
        proxy_sock = tmp_path / "proxy.sock"
        plan = ChaosPlan(
            seed=99,
            drop_rate=0.15,
            truncate_rate=0.08,
            garbage_rate=0.08,
        )
        daemon = VerdictService(store, daemon_sock, checkpoint_interval=0)
        daemon.start()
        try:
            with ChaosProxy(str(daemon_sock), proxy_sock, plan) as proxy:
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    manifest = run_campaign(
                        SPEC,
                        store_path=proxy.url,
                        jobs=2,
                        retry=RetryPolicy.no_retry(seed=5),
                    )
                assert proxy.total_injected() > 0
        finally:
            daemon.stop()

        totals = manifest["totals"]
        assert totals["failed"] == 0, (
            "a transient fault must degrade a job, never fail it"
        )
        assert totals["degraded"] >= 1, (
            "with no retry budget these fault rates must degrade"
            " at least one job"
        )
        spill_merge = manifest["resilience"]["spill_merge"]
        assert spill_merge["spills"] == totals["degraded"]
        assert spill_merge["unmerged"] == []
        degraded_jobs = [
            job for job in manifest["jobs"] if job["degraded"]
        ]
        for job in degraded_jobs:
            assert job["error"] is None
            assert job["spill"], "degraded jobs must name their spill"
        assert normalized_dump(manifest) == normalized_dump(reference)
        assert verdict_population(store) == population, (
            "spill-shard merging lost or altered verdicts"
        )

    def test_sigkill_mid_campaign_degrades_with_zero_lost_verdicts(
        self, tmp_path
    ):
        """The satellite: SIGKILL the daemon under --jobs 4 writers and
        never bring it back.  Workers retry, degrade, and their spill
        shards carry every verdict; the fallback file merge (into the
        store path learned from the opening handshake) recovers all of
        them."""
        reference, population = reference_run(WIDE_SPEC, tmp_path)

        store = tmp_path / "killed.sqlite"
        daemon_sock = tmp_path / "daemon.sock"
        daemon = ServeDaemon(store, daemon_sock)
        daemon.start()
        killed = []

        def kill_once(done, total, record):
            if not killed:
                killed.append(done)
                daemon.kill()

        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                manifest = run_campaign(
                    WIDE_SPEC,
                    store_path=daemon.url,
                    jobs=4,
                    progress=kill_once,
                    retry=RetryPolicy(
                        max_attempts=3, base_delay=0.01, seed=3
                    ),
                )
        finally:
            daemon.stop()

        assert killed, "the kill hook never fired"
        totals = manifest["totals"]
        assert totals["failed"] == 0
        assert totals["degraded"] >= 1, (
            "every job that outlived the daemon must have degraded"
        )
        spill_merge = manifest["resilience"]["spill_merge"]
        assert spill_merge["via"] == "file", (
            "with the daemon dead, spills must merge through the"
            " server store file directly"
        )
        assert spill_merge["unmerged"] == []
        assert spill_merge["spills"] == totals["degraded"]
        # Zero lost verdicts: what the daemon committed before SIGKILL
        # (WAL-durable) plus every spill shard equals the full
        # population of a direct run.
        assert verdict_population(store) == population
        assert normalized_dump(manifest) == normalized_dump(reference)

    def test_chaos_schedule_is_deterministic(self, tmp_path):
        """Two proxies with the same plan inject the same faults for
        the same traffic -- the harness itself is reproducible."""
        import socket as socket_module
        import struct

        plan = ChaosPlan(
            seed=4, drop_rate=0.3, truncate_rate=0.2, garbage_rate=0.2
        )
        header = struct.Struct(">I")

        def drive(tag):
            upstream = tmp_path / f"up-{tag}.sock"
            listen = tmp_path / f"chaos-{tag}.sock"
            server = socket_module.socket(
                socket_module.AF_UNIX, socket_module.SOCK_STREAM
            )
            server.bind(str(upstream))
            server.listen(8)

            def echo():
                while True:
                    try:
                        conn, _ = server.accept()
                    except OSError:
                        return
                    try:
                        while True:
                            head = conn.recv(header.size)
                            if len(head) < header.size:
                                break
                            (length,) = header.unpack(head)
                            body = b""
                            while len(body) < length:
                                chunk = conn.recv(length - len(body))
                                if not chunk:
                                    break
                                body += chunk
                            conn.sendall(head + body)
                    except OSError:
                        pass
                    finally:
                        conn.close()

            import threading
            thread = threading.Thread(target=echo, daemon=True)
            thread.start()
            events = []
            with ChaosProxy(str(upstream), listen, plan) as proxy:
                for _ in range(12):
                    client = socket_module.socket(
                        socket_module.AF_UNIX, socket_module.SOCK_STREAM
                    )
                    client.settimeout(5)
                    outcome = "ok"
                    try:
                        client.connect(str(listen))
                        for _ in range(4):
                            payload = b'{"n": 1}'
                            client.sendall(
                                header.pack(len(payload)) + payload
                            )
                            echoed = client.recv(4096)
                            if not echoed:
                                outcome = "dead"
                                break
                    except OSError:
                        outcome = "error"
                    finally:
                        client.close()
                    events.append(outcome)
                # Give relay threads a beat to tally their counters.
                time.sleep(0.2)
                counters = dict(proxy.counters)
            server.close()
            thread.join(timeout=5)
            return events, counters

        first_events, first_counters = drive("a")
        second_events, second_counters = drive("b")
        # The client-visible outcome sequence is the contract; the
        # counters are tallied by relay threads and only their totals
        # are asserted (a thread may still be mid-tally at snapshot).
        assert first_events == second_events
        assert sum(
            v for k, v in first_counters.items() if k != "connections"
        ) > 0
        assert sum(
            v for k, v in second_counters.items() if k != "connections"
        ) > 0


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-v"]))
