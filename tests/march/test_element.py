"""Tests for March elements and operations."""

import pytest

from repro.march.element import (
    AddressOrder,
    DelayElement,
    MarchElement,
    MarchOp,
    element,
    parse_march_op,
    r0,
    r1,
    w0,
    w1,
)


class TestMarchOp:
    def test_constructors(self):
        assert str(w0()) == "w0"
        assert str(w1()) == "w1"
        assert str(r0()) == "r0"
        assert str(r1()) == "r1"

    def test_plain_read(self):
        op = MarchOp("r", None)
        assert str(op) == "r"
        assert op.is_read and not op.is_write

    def test_validation(self):
        with pytest.raises(ValueError):
            MarchOp("x", 0)
        with pytest.raises(ValueError):
            MarchOp("w", None)
        with pytest.raises(ValueError):
            MarchOp("r", 2)

    @pytest.mark.parametrize("text", ["w0", "w1", "r0", "r1", "r"])
    def test_parse_roundtrip(self, text):
        assert str(parse_march_op(text)) == text

    @pytest.mark.parametrize("bad", ["", "x0", "w"])
    def test_parse_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_march_op(bad)


class TestAddressOrder:
    def test_symbols(self):
        assert AddressOrder.UP.symbol == "⇑"
        assert AddressOrder.DOWN.symbol == "⇓"
        assert AddressOrder.ANY.symbol == "⇕"

    def test_addresses(self):
        assert list(AddressOrder.UP.addresses(3)) == [0, 1, 2]
        assert list(AddressOrder.DOWN.addresses(3)) == [2, 1, 0]
        assert list(AddressOrder.ANY.addresses(2)) == [0, 1]


class TestMarchElement:
    def test_complexity(self):
        e = element("up", "r0", "w1")
        assert e.complexity == 2
        assert len(e) == 2

    def test_str(self):
        assert str(element("down", "r1", "w0")) == "⇓(r1,w0)"
        assert str(element("any", "w0")) == "⇕(w0)"

    def test_needs_ops(self):
        with pytest.raises(ValueError):
            MarchElement(AddressOrder.UP, ())

    def test_with_order(self):
        e = element("up", "r0")
        assert e.with_order(AddressOrder.DOWN).order is AddressOrder.DOWN

    def test_unknown_order(self):
        with pytest.raises(ValueError):
            element("sideways", "r0")


class TestDelayElement:
    def test_complexity_zero(self):
        assert DelayElement().complexity == 0

    def test_str(self):
        assert str(DelayElement()) == "Del"
