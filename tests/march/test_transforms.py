"""Tests for detection-preserving March transformations."""

import pytest

from repro.faults import FaultList
from repro.march.catalog import CATALOG, MARCH_C_MINUS, MARCH_X, MATS
from repro.march.element import AddressOrder
from repro.march.test import parse_march
from repro.march.transforms import complement, mirror
from repro.simulator.faultsim import simulate_fault_list


class TestStructure:
    def test_mirror_swaps_orders(self):
        test = parse_march("{up(w0); down(r0,w1); any(r1)}")
        mirrored = mirror(test)
        assert [e.order for e in mirrored.march_elements] == [
            AddressOrder.DOWN, AddressOrder.UP, AddressOrder.ANY,
        ]

    def test_complement_swaps_values(self):
        test = parse_march("{any(w0); up(r0,w1); down(r1)}")
        assert str(complement(test)) == "{⇕(w1); ⇑(r1,w0); ⇓(r0)}"

    def test_transforms_are_involutions(self):
        for name, test in CATALOG.items():
            assert str(mirror(mirror(test))) == str(test), name
            assert str(complement(complement(test))) == str(test), name

    def test_complexity_invariant(self):
        for test in (MATS, MARCH_X, MARCH_C_MINUS):
            assert mirror(test).complexity == test.complexity
            assert complement(test).complexity == test.complexity

    def test_delay_preserved(self):
        test = parse_march("{any(w1); Del; any(r1)}")
        assert "Del" in str(mirror(test))
        assert "Del" in str(complement(test))

    def test_names_tagged(self):
        assert mirror(MATS).name == "MATS~mirror"
        assert complement(MATS).name == "MATS~complement"


ROW5 = ("SAF", "TF", "ADF", "CFIN", "CFID")


class TestDetectionPreservation:
    """The library fault models are direction- and polarity-symmetric,
    so both transforms preserve full coverage."""

    @pytest.mark.parametrize("names", [("SAF",), ("SAF", "TF"), ROW5])
    def test_mirror_preserves_coverage(self, names):
        faults = FaultList.from_names(*names)
        test = MARCH_C_MINUS
        base = simulate_fault_list(test, faults, 3)
        transformed = simulate_fault_list(mirror(test), faults, 3)
        assert base.complete and transformed.complete

    @pytest.mark.parametrize("names", [("SAF",), ("SAF", "TF"), ROW5])
    def test_complement_preserves_coverage(self, names):
        faults = FaultList.from_names(*names)
        base = simulate_fault_list(MARCH_C_MINUS, faults, 3)
        transformed = simulate_fault_list(
            complement(MARCH_C_MINUS), faults, 3
        )
        assert base.complete and transformed.complete

    def test_transforms_preserve_misses_too(self):
        # MATS misses TF either way: the transforms do not create
        # coverage out of thin air.
        faults = FaultList.from_names("TF")
        assert not simulate_fault_list(MATS, faults, 3).complete
        assert not simulate_fault_list(mirror(MATS), faults, 3).complete
        assert not simulate_fault_list(complement(MATS), faults, 3).complete
