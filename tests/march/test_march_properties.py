"""Property-based tests on March test structure and simulation."""

from hypothesis import given, settings, strategies as st

from repro.march.builder import normalize_expectations
from repro.march.element import AddressOrder, MarchElement, MarchOp
from repro.march.test import MarchTest, parse_march
from repro.simulator.engine import good_run, is_well_formed

orders = st.sampled_from(list(AddressOrder))
ops = st.sampled_from(
    [MarchOp("w", 0), MarchOp("w", 1), MarchOp("r", 0), MarchOp("r", 1)]
)


@st.composite
def march_tests(draw):
    """Random tests whose first operation is a write (so normalization
    always succeeds)."""
    element_count = draw(st.integers(min_value=1, max_value=5))
    elements = []
    for index in range(element_count):
        length = draw(st.integers(min_value=1, max_value=4))
        body = [draw(ops) for _ in range(length)]
        if index == 0:
            body[0] = MarchOp("w", draw(st.sampled_from([0, 1])))
        elements.append(MarchElement(draw(orders), tuple(body)))
    return MarchTest(tuple(elements))


class TestStructuralProperties:
    @given(march_tests())
    @settings(max_examples=80, deadline=None)
    def test_notation_roundtrip(self, test):
        assert str(parse_march(str(test))) == str(test)

    @given(march_tests())
    @settings(max_examples=80, deadline=None)
    def test_complexity_is_sum_of_elements(self, test):
        assert test.complexity == sum(len(e.ops) for e in test.march_elements)
        assert test.operation_count(7) == 7 * test.complexity

    @given(march_tests())
    @settings(max_examples=50, deadline=None)
    def test_variant_count_is_two_to_the_any(self, test):
        any_count = sum(
            1
            for e in test.march_elements
            if e.order is AddressOrder.ANY
        )
        assert len(test.concrete_order_variants()) == 2 ** any_count

    @given(march_tests())
    @settings(max_examples=80, deadline=None)
    def test_normalization_is_idempotent(self, test):
        once = normalize_expectations(test)
        assert once is not None  # first op is a write
        twice = normalize_expectations(once)
        assert str(once) == str(twice)

    @given(march_tests())
    @settings(max_examples=60, deadline=None)
    def test_normalized_tests_are_well_formed(self, test):
        normalized = normalize_expectations(test)
        assert is_well_formed(normalized, size=3)

    @given(march_tests(), st.integers(min_value=1, max_value=5))
    @settings(max_examples=40, deadline=None)
    def test_good_run_read_count(self, test, size):
        normalized = normalize_expectations(test)
        run = good_run(normalized, size)
        reads_per_cell = sum(
            1
            for e in normalized.march_elements
            for op in e.ops
            if op.is_read
        )
        assert len(run.reads) == reads_per_cell * size

    @given(march_tests())
    @settings(max_examples=40, deadline=None)
    def test_normalization_preserves_shape(self, test):
        normalized = normalize_expectations(test)
        assert normalized.complexity == test.complexity
        assert len(normalized.elements) == len(test.elements)
        for old, new in zip(test.march_elements, normalized.march_elements):
            assert old.order is new.order
            assert [op.kind for op in old.ops] == [op.kind for op in new.ops]
