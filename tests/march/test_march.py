"""Tests for March tests: notation, metrics, variants."""

import pytest

from repro.march.element import AddressOrder, DelayElement
from repro.march.test import MarchTest, march, parse_march


class TestNotation:
    def test_parse_unicode(self):
        test = parse_march("{⇕(w0); ⇑(r0,w1); ⇓(r1)}")
        assert test.complexity == 4
        assert [e.order for e in test.march_elements] == [
            AddressOrder.ANY, AddressOrder.UP, AddressOrder.DOWN,
        ]

    def test_parse_ascii(self):
        test = parse_march("{any(w0); up(r0,w1); down(r1,w0,r0)}")
        assert test.complexity == 6

    def test_parse_delay(self):
        test = parse_march("{any(w0); Del; any(r0)}")
        assert any(isinstance(e, DelayElement) for e in test.elements)
        assert test.complexity == 2

    def test_str_roundtrip(self):
        text = "{⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}"
        assert str(parse_march(text)) == text

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            parse_march("{}")
        with pytest.raises(ValueError):
            parse_march("{up()}")

    def test_march_builder(self):
        test = march(("any", "w0"), ("up", "r0", "w1"), name="demo")
        assert test.name == "demo"
        assert test.complexity == 3

    def test_march_builder_with_delay(self):
        test = march(("any", "w0"), "Del", ("any", "r0"))
        assert test.complexity == 2


class TestMetrics:
    def test_complexity_label(self):
        assert parse_march("{any(w0); any(r0)}").complexity_label == "2n"

    def test_operation_count(self):
        test = parse_march("{any(w0); up(r0,w1)}")
        assert test.operation_count(1024) == 3 * 1024

    def test_needs_elements(self):
        with pytest.raises(ValueError):
            MarchTest(())

    def test_renamed(self):
        test = parse_march("{any(w0)}").renamed("init")
        assert test.name == "init"


class TestOrderVariants:
    def test_concrete_variants_expand_any(self):
        test = parse_march("{any(w0); up(r0); any(r0)}")
        variants = test.concrete_order_variants()
        assert len(variants) == 4
        for variant in variants:
            assert all(
                e.order is not AddressOrder.ANY for e in variant.march_elements
            )

    def test_concrete_test_has_single_variant(self):
        test = parse_march("{up(w0); down(r0)}")
        assert len(test.concrete_order_variants()) == 1
