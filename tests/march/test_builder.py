"""Tests for GTS segmentation and pattern realization."""

import pytest

from repro.march.builder import (
    build_march,
    normalize_expectations,
    realize_pattern_blocks,
    segment,
    sequential_march,
)
from repro.march.element import AddressOrder, DelayElement, MarchElement
from repro.march.test import MarchTest, parse_march
from repro.memory.operations import read, wait, write
from repro.memory.state import MemoryState
from repro.patterns.test_pattern import TestPattern
from repro.sequence.gts import (
    Color,
    GlobalTestSequence,
    GTSSymbol,
    Role,
)


def state(text):
    return MemoryState.parse(text)


def sym(op, role=Role.SETUP, color=None, merged=False):
    s = GTSSymbol(op, role, 0, color=color)
    return s.as_merged() if merged else s


class TestSegmentation:
    def test_red_opens_blue_closes(self):
        gts = GlobalTestSequence([
            sym(write("i", 0), merged=True),
            sym(read("i", 0), Role.OBSERVE, Color.RED),
            sym(write("i", 1), Role.EXCITE, Color.BLUE),
            sym(read("i", 1), Role.OBSERVE),
        ])
        test = segment(gts)
        assert len(test.elements) == 3
        assert [e.complexity for e in test.elements] == [1, 2, 1]

    def test_orders_follow_cell_tags(self):
        gts = GlobalTestSequence([
            sym(write("i", 0), merged=True),
            sym(read("i", 0), Role.OBSERVE, Color.RED),
            sym(write("i", 1), Role.EXCITE, Color.BLUE),
            sym(read("j", 1), Role.OBSERVE, Color.RED),
            sym(write("j", 0), Role.EXCITE, Color.BLUE),
        ])
        test = segment(gts)
        orders = [e.order for e in test.elements]
        assert orders == [
            AddressOrder.ANY,   # merged symbol: Rule 5
            AddressOrder.UP,    # i-tagged: Rule 3
            AddressOrder.DOWN,  # j-tagged: Rule 4
        ]

    def test_wait_becomes_delay_element(self):
        gts = GlobalTestSequence([
            sym(write("i", 1)),
            sym(wait(), Role.EXCITE),
            sym(read("i", 1), Role.OBSERVE),
        ])
        test = segment(gts)
        assert isinstance(test.elements[1], DelayElement)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            segment(GlobalTestSequence([]))


class TestNormalizeExpectations:
    def test_recomputes_read_values(self):
        test = parse_march("{any(w0); any(r1)}")  # r1 is inconsistent
        fixed = normalize_expectations(test)
        assert str(fixed) == "{⇕(w0); ⇕(r0)}"

    def test_rejects_read_before_write(self):
        test = parse_march("{any(r0); any(w0)}")
        assert normalize_expectations(test) is None

    def test_keeps_delay(self):
        test = parse_march("{any(w1); Del; any(r1)}")
        fixed = normalize_expectations(test)
        assert any(isinstance(e, DelayElement) for e in fixed.elements)

    def test_build_march_none_on_malformed(self):
        gts = GlobalTestSequence([sym(read("i", 0), Role.OBSERVE)])
        assert build_march(gts) is None


class TestRealizePatternBlocks:
    def test_single_cell_pattern(self):
        tp = TestPattern(state("0-"), write("i", 1), read("i", 1))
        (element,) = realize_pattern_blocks(tp)
        assert [str(op) for op in element.ops] == ["w0", "w1", "r1"]

    def test_lambda_single_cell(self):
        tp = TestPattern(state("1-"), None, read("i", 1))
        (element,) = realize_pattern_blocks(tp)
        assert [str(op) for op in element.ops] == ["w1", "r1"]

    def test_two_cell_aggressor_first(self):
        # CFid <up,0> with i aggressor: (01, w1i, r1j).
        tp = TestPattern(state("01"), write("i", 1), read("j", 1))
        elements = realize_pattern_blocks(tp)
        assert len(elements) == 2
        init, body = elements
        assert [str(op) for op in init.ops] == ["w1"]
        assert body.order is AddressOrder.UP  # i marches first
        assert [str(op) for op in body.ops] == ["r1", "w0", "w1"]

    def test_two_cell_j_aggressor_marches_down(self):
        tp = TestPattern(state("10"), write("j", 1), read("i", 1))
        _, body = realize_pattern_blocks(tp)
        assert body.order is AddressOrder.DOWN

    def test_retention_pattern_inserts_delay(self):
        tp = TestPattern(state("1-"), wait(), read("i", 1))
        elements = realize_pattern_blocks(tp)
        assert isinstance(elements[1], DelayElement)

    def test_same_cell_excite_observe_with_context(self):
        # ADF-style: (00, w1i, r1i) -- j supplies state context.
        tp = TestPattern(state("00"), write("i", 1), read("i", 1))
        elements = realize_pattern_blocks(tp)
        assert len(elements) == 2

    def test_realizations_verify_by_simulation(self):
        from repro.core.optimize import make_verifier
        from repro.faults import CouplingIdempotentFault, FaultList

        faults = FaultList([CouplingIdempotentFault(primitives=("up",))])
        classes = faults.classes()
        from repro.core.selection import enumerate_selections

        selection = next(enumerate_selections(classes, 1))
        test = sequential_march(selection.patterns)
        assert test is not None
        verify = make_verifier(faults.instances(2), 2)
        assert verify(test)


class TestSequentialMarch:
    def test_empty_patterns(self):
        assert sequential_march([]) is None

    def test_concatenates_with_guard_reads(self):
        tp1 = TestPattern(state("0-"), write("i", 1), read("i", 1))
        tp2 = TestPattern(state("1-"), write("i", 0), read("i", 0))
        test = sequential_march([tp1, tp2])
        # Block 1 (3 ops) + guarded block 2 (1 guard read + 3 ops).
        assert test.complexity == 7
        second = test.march_elements[1]
        assert second.ops[0].is_read  # the guard read
