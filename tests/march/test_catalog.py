"""Tests for the literature catalog of March tests."""

import pytest

from repro.march.catalog import (
    CATALOG,
    MARCH_A,
    MARCH_B,
    MARCH_C,
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS,
    MATS_PLUS_PLUS,
    by_name,
)
from repro.simulator.engine import is_well_formed


class TestComplexities:
    """The complexities quoted in the paper's Table 3 and van de Goor."""

    @pytest.mark.parametrize(
        "test, expected",
        [
            (MATS, 4),
            (MATS_PLUS, 5),
            (MATS_PLUS_PLUS, 6),
            (MARCH_X, 6),
            (MARCH_Y, 8),
            (MARCH_C_MINUS, 10),
            (MARCH_C, 11),
            (MARCH_A, 15),
            (MARCH_B, 17),
        ],
    )
    def test_complexity(self, test, expected):
        assert test.complexity == expected


class TestWellFormedness:
    @pytest.mark.parametrize("name", sorted(CATALOG))
    def test_every_catalog_test_is_well_formed(self, name):
        # Every verifying read expects the value the good memory holds.
        assert is_well_formed(CATALOG[name], size=4)


class TestLookup:
    def test_by_name_case_insensitive(self):
        assert by_name("mats+").name == "MATS+"
        assert by_name("MARCHC-").name == "MarchC-"

    def test_by_name_unknown(self):
        with pytest.raises(KeyError):
            by_name("MarchZ")


class TestMarchG:
    def test_complexity(self):
        from repro.march.catalog import MARCH_G

        assert MARCH_G.complexity == 23
        from repro.march.element import DelayElement

        assert sum(
            1 for e in MARCH_G.elements if isinstance(e, DelayElement)
        ) == 2

    def test_covers_retention_faults(self):
        from repro.faults import FaultList
        from repro.march.catalog import MARCH_G
        from repro.simulator.faultsim import simulate_fault_list

        assert simulate_fault_list(
            MARCH_G, FaultList.from_names("DRF"), 3
        ).complete

    def test_march_c_minus_misses_retention(self):
        from repro.faults import FaultList
        from repro.march.catalog import MARCH_C_MINUS
        from repro.simulator.faultsim import simulate_fault_list

        assert not simulate_fault_list(
            MARCH_C_MINUS, FaultList.from_names("DRF"), 3
        ).complete
