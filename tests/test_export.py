"""Tests for test-program export."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.export import operation_trace, to_assembly, to_csv, trace_length
from repro.march.catalog import MARCH_C_MINUS, MATS
from repro.march.test import parse_march


class TestTrace:
    def test_mats_trace_shape(self):
        entries = list(operation_trace(MATS, 4))
        assert len(entries) == trace_length(MATS, 4) == 16
        assert entries[0].kind == "w" and entries[0].address == 0

    def test_descending_element_addresses(self):
        test = parse_march("{down(w0)}")
        addresses = [e.address for e in operation_trace(test, 3)]
        assert addresses == [2, 1, 0]

    def test_delay_entry(self):
        test = parse_march("{any(w1); Del; any(r1)}")
        kinds = [e.kind for e in operation_trace(test, 2)]
        assert kinds == ["w", "w", "T", "r", "r"]
        assert trace_length(test, 2) == 5

    @given(st.integers(min_value=1, max_value=16))
    @settings(max_examples=20, deadline=None)
    def test_linearity(self, size):
        # The paper's opening claim: march tests are linear in n.
        entries = list(operation_trace(MARCH_C_MINUS, size))
        assert len(entries) == MARCH_C_MINUS.complexity * size

    def test_trace_replays_correctly(self):
        """Replaying the trace on a fault-free memory satisfies every
        expectation -- the export is execution-equivalent."""
        from repro.memory.array import MemoryArray

        memory = MemoryArray(5)
        for entry in operation_trace(MARCH_C_MINUS, 5):
            if entry.kind == "w":
                memory.write(entry.address, entry.data)
            elif entry.kind == "r":
                value = memory.read(entry.address)
                if entry.data is not None:
                    assert value == entry.data
            else:
                memory.wait()


class TestFormats:
    def test_csv(self):
        text = to_csv(MATS, 2)
        lines = text.splitlines()
        assert lines[0] == "index,op,address,data"
        assert lines[1] == "0,w,0,0"
        assert len(lines) == 1 + 8

    def test_csv_without_header(self):
        assert to_csv(MATS, 1, header=False).splitlines()[0] == "0,w,0,0"

    def test_assembly_structure(self):
        listing = to_assembly(MARCH_C_MINUS)
        assert listing.count("FOR a =") == 6
        assert "STEP -1" in listing and "STEP +1" in listing
        assert "EXPECT 1" in listing
        assert "complexity 10n" in listing

    def test_assembly_wait(self):
        listing = to_assembly(parse_march("{any(w1); Del; any(r1)}"))
        assert "WAIT Tret" in listing
