"""Tests for k-cell memory states, including property-based checks."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.operations import read, write
from repro.memory.state import DASH, MemoryState, all_states


def state(text):
    return MemoryState.parse(text)


states2 = st.sampled_from([state(a + b) for a in "01-" for b in "01-"])
concrete2 = st.sampled_from([state(a + b) for a in "01" for b in "01"])


class TestConstruction:
    def test_parse_and_str_roundtrip(self):
        for text in ("00", "01", "1-", "--"):
            assert str(state(text)) == text

    def test_of_orders_cells(self):
        s = MemoryState.of(j=1, i=0)
        assert s.cells == ("i", "j")
        assert str(s) == "01"

    def test_uniform_and_unknown(self):
        assert str(MemoryState.uniform(("i", "j"), 1)) == "11"
        assert str(MemoryState.unknown(("i", "j"))) == "--"

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            MemoryState(("i", "j"), (0,))

    def test_rejects_bad_value(self):
        with pytest.raises(ValueError):
            MemoryState(("i",), (7,))

    def test_rejects_unordered_cells(self):
        with pytest.raises(ValueError):
            MemoryState(("j", "i"), (0, 1))

    def test_getitem_and_contains(self):
        s = state("01")
        assert s["i"] == 0 and s["j"] == 1
        assert "i" in s and "k" not in s
        with pytest.raises(KeyError):
            s["k"]


class TestAlgebra:
    def test_set(self):
        assert str(state("00").set("j", 1)) == "01"

    def test_set_unknown_cell(self):
        with pytest.raises(KeyError):
            state("00").set("k", 1)

    def test_apply_write(self):
        assert str(state("00").apply(write("i", 1))) == "10"

    def test_apply_read_is_identity(self):
        s = state("01")
        assert s.apply(read("i")) == s

    def test_matches_concrete(self):
        assert state("01").matches(state("01"))
        assert not state("01").matches(state("11"))

    def test_dash_requirement_matches_anything(self):
        assert state("0-").matches(state("00"))
        assert state("0-").matches(state("01"))

    def test_concrete_requirement_not_satisfied_by_dash(self):
        assert not state("01").matches(state("0-"))

    def test_completions(self):
        completions = {str(s) for s in state("0-").completions()}
        assert completions == {"00", "01"}

    def test_completions_concrete(self):
        assert list(state("10").completions()) == [state("10")]

    def test_merge_refines_dashes(self):
        assert str(state("0-").merge(state("11"))) == "01"

    def test_all_states(self):
        assert [str(s) for s in all_states(("i", "j"))] == [
            "00", "01", "10", "11",
        ]


class TestHamming:
    def test_paper_f41_concrete(self):
        # Figure 4's weights come from these distances.
        assert state("11").hamming(state("10")) == 1
        assert state("10").hamming(state("00")) == 1
        assert state("01").hamming(state("01")) == 0
        assert state("11").hamming(state("00")) == 2

    def test_dash_costs_nothing(self):
        assert state("1-").hamming(state("10")) == 0
        assert state("--").hamming(state("11")) == 0

    def test_incompatible_cells(self):
        with pytest.raises(ValueError):
            state("0").hamming(state("00"))

    @given(concrete2, concrete2)
    def test_symmetry_on_concrete(self, a, b):
        assert a.hamming(b) == b.hamming(a)

    @given(concrete2, concrete2, concrete2)
    def test_triangle_inequality_on_concrete(self, a, b, c):
        assert a.hamming(c) <= a.hamming(b) + b.hamming(c)

    @given(states2)
    def test_self_distance_zero(self, s):
        assert s.hamming(s) == 0


class TestFillOperations:
    def test_fill_matches_weight(self):
        src, dst = state("11"), state("00")
        ops = src.fill_operations(dst)
        assert len(ops) == src.hamming(dst) == 2

    def test_fill_reaches_target(self):
        src, dst = state("10"), state("01")
        result = src
        for op in src.fill_operations(dst):
            result = result.apply(op)
        assert dst.matches(result)

    def test_fill_from_unknown_writes_concrete_targets(self):
        ops = state("--").fill_operations(state("1-"))
        assert [str(op) for op in ops] == ["w1i"]

    @given(states2, states2)
    def test_fill_always_satisfies_requirement(self, src, dst):
        result = src
        for op in src.fill_operations(dst):
            result = result.apply(op)
        assert dst.matches(result)

    @given(concrete2, concrete2)
    def test_fill_cost_equals_hamming_on_concrete(self, src, dst):
        assert len(src.fill_operations(dst)) == src.hamming(dst)
