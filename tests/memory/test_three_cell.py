"""The model layer generalizes beyond two cells: three-cell machines.

The paper argues a two-cell machine suffices for its fault list; the
substrate nevertheless supports k cells (states, alphabet, Mealy
machine), which the future-work directions (neighborhood faults) need.
"""

import pytest

from repro.memory.mealy import good_machine
from repro.memory.operations import alphabet, parse_sequence, read, write
from repro.memory.state import MemoryState, all_states


CELLS = ("i", "j", "k")


class TestThreeCellStates:
    def test_all_states(self):
        states = all_states(CELLS)
        assert len(states) == 8
        assert str(states[0]) == "000" and str(states[-1]) == "111"

    def test_parse_and_set(self):
        s = MemoryState.parse("010", CELLS)
        assert s["j"] == 1
        assert str(s.set("k", 1)) == "011"

    def test_hamming_three_cells(self):
        a = MemoryState.parse("000", CELLS)
        b = MemoryState.parse("111", CELLS)
        assert a.hamming(b) == 3

    def test_fill_operations(self):
        a = MemoryState.parse("0--", CELLS)
        b = MemoryState.parse("011", CELLS)
        ops = a.fill_operations(b)
        assert len(ops) == 2

    def test_completions(self):
        s = MemoryState.parse("0--", CELLS)
        assert len(list(s.completions())) == 4


class TestThreeCellMachine:
    def test_alphabet_size(self):
        # 3 ops per cell + T.
        assert len(alphabet(CELLS)) == 10

    def test_machine_runs(self):
        machine = good_machine(CELLS)
        final, outputs = machine.run(
            MemoryState.unknown(CELLS),
            parse_sequence("w0i, w1j, w0k, rj, ri, rk"),
        )
        assert str(final) == "010"
        assert outputs[-3:] == (1, 0, 0)

    def test_concrete_state_count(self):
        machine = good_machine(CELLS)
        concrete = [s for s in machine.states if s.is_concrete]
        assert len(concrete) == 8

    def test_three_cell_deviation(self):
        machine = good_machine(CELLS)
        faulty = machine.with_transition(
            MemoryState.parse("010", CELLS),
            write("i", 1),
            MemoryState.parse("100", CELLS),
        )
        # A neighborhood-style fault: w1i with j=1 clears j.
        nxt, _ = faulty.step(MemoryState.parse("010", CELLS), write("i", 1))
        assert str(nxt) == "100"
        assert len(faulty.deviations_from(machine)) == 1
