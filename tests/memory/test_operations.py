"""Tests for the memory operation alphabet."""

import pytest

from repro.memory.operations import (
    Operation,
    OpKind,
    alphabet,
    cell_order,
    format_sequence,
    parse_operation,
    parse_sequence,
    read,
    wait,
    write,
)


class TestConstruction:
    def test_write_carries_cell_and_value(self):
        op = write("i", 1)
        assert op.kind is OpKind.WRITE
        assert op.cell == "i"
        assert op.value == 1

    def test_read_without_verify(self):
        op = read("j")
        assert op.is_read
        assert op.value is None
        assert not op.is_verifying_read

    def test_read_and_verify(self):
        op = read("j", 0)
        assert op.is_verifying_read

    def test_wait_is_global(self):
        op = wait()
        assert op.is_wait
        assert op.cell is None

    def test_wait_rejects_cell(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WAIT, cell="i")

    def test_write_requires_binary_value(self):
        with pytest.raises(ValueError):
            write("i", 2)

    def test_write_requires_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.WRITE, cell="i")

    def test_read_rejects_bad_verify_value(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ, cell="i", value=3)

    def test_operation_requires_cell(self):
        with pytest.raises(ValueError):
            Operation(OpKind.READ)


class TestDerivedOperations:
    def test_on_cell_retargets(self):
        assert write("i", 0).on_cell("j") == write("j", 0)

    def test_on_cell_keeps_wait(self):
        assert wait().on_cell("j") == wait()

    def test_plain_read_drops_verify(self):
        assert read("i", 1).plain_read() == read("i")

    def test_plain_read_rejects_writes(self):
        with pytest.raises(ValueError):
            write("i", 1).plain_read()


class TestTextForms:
    @pytest.mark.parametrize(
        "op, text",
        [
            (write("i", 0), "w0i"),
            (write("j", 1), "w1j"),
            (read("i"), "ri"),
            (read("j", 1), "r1j"),
            (wait(), "T"),
        ],
    )
    def test_str(self, op, text):
        assert str(op) == text

    @pytest.mark.parametrize(
        "text", ["w0i", "w1j", "ri", "rj", "r0i", "r1j", "T"]
    )
    def test_parse_roundtrip(self, text):
        assert str(parse_operation(text)) == text

    @pytest.mark.parametrize("bad", ["", "x1i", "w2i", "w", "wi"])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_operation(bad)

    def test_parse_sequence(self):
        ops = parse_sequence("w0i, w1j, r0i")
        assert ops == (write("i", 0), write("j", 1), read("i", 0))

    def test_format_sequence_roundtrip(self):
        ops = (write("i", 0), read("j", 1), wait())
        assert parse_sequence(format_sequence(ops)) == ops


class TestAlphabet:
    def test_two_cell_alphabet_size(self):
        # 3 ops per cell + T: the X alphabet of f.2.1.
        assert len(alphabet(("i", "j"))) == 7

    def test_alphabet_without_wait(self):
        ops = alphabet(("i",), include_wait=False)
        assert len(ops) == 3
        assert all(not op.is_wait for op in ops)

    def test_alphabet_reads_are_plain(self):
        assert all(
            op.value is None for op in alphabet(("i", "j")) if op.is_read
        )


class TestCellOrder:
    def test_paper_convention(self):
        # The paper fixes address(i) < address(j).
        assert cell_order("i") < cell_order("j")

    def test_unknown_cell(self):
        with pytest.raises(ValueError):
            cell_order("z")
