"""Tests for the simulated n-cell memory array."""

import pytest

from repro.memory.array import MemoryArray, NullFaultInstance
from repro.memory.state import DASH


class TestBasics:
    def test_initial_contents_are_unknown(self):
        memory = MemoryArray(4)
        assert memory.snapshot() == (DASH,) * 4

    def test_write_then_read(self):
        memory = MemoryArray(2)
        memory.write(0, 1)
        assert memory.read(0) == 1
        assert memory.read(1) == DASH

    def test_fill(self):
        memory = MemoryArray(3)
        memory.fill(0)
        assert memory.snapshot() == (0, 0, 0)

    def test_len(self):
        assert len(MemoryArray(5)) == 5

    def test_size_must_be_positive(self):
        with pytest.raises(ValueError):
            MemoryArray(0)

    def test_explicit_contents_must_match_size(self):
        with pytest.raises(ValueError):
            MemoryArray(2, raw=[0])

    def test_address_bounds(self):
        memory = MemoryArray(2)
        with pytest.raises(IndexError):
            memory.read(2)
        with pytest.raises(IndexError):
            memory.write(-1, 0)

    def test_value_bounds(self):
        memory = MemoryArray(2)
        with pytest.raises(ValueError):
            memory.write(0, 2)


class TestFaultHooks:
    def test_null_instance_is_transparent(self):
        memory = MemoryArray(2, fault=NullFaultInstance())
        memory.write(1, 0)
        assert memory.read(1) == 0

    def test_custom_instance_intercepts(self):
        class InvertingWrites(NullFaultInstance):
            def on_write(self, memory, address, value):
                memory.raw[address] = 1 - value

        memory = MemoryArray(2, fault=InvertingWrites())
        memory.write(0, 1)
        assert memory.read(0) == 0

    def test_wait_reaches_instance(self):
        class CountsWaits(NullFaultInstance):
            waits = 0

            def on_wait(self, memory):
                type(self).waits += 1

        memory = MemoryArray(1, fault=CountsWaits())
        memory.wait()
        memory.wait()
        assert CountsWaits.waits == 2


class TestTrace:
    def test_trace_records_operations(self):
        memory = MemoryArray(2, trace=True)
        memory.write(0, 1)
        memory.read(0)
        memory.wait()
        assert memory.log == [("w", 0, 1), ("r", 0, 1), ("T", None, None)]
