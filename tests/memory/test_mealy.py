"""Tests for the Mealy memory model (Figure 1 of the paper)."""

import pytest

from repro.memory.mealy import good_machine, machines_equal
from repro.memory.operations import parse_sequence, read, wait, write
from repro.memory.state import DASH, MemoryState, all_states


def state(text):
    return MemoryState.parse(text)


class TestM0Structure:
    """The fault-free machine of Figure 1."""

    def test_concrete_state_count(self, m0):
        concrete = [s for s in m0.states if s.is_concrete]
        assert len(concrete) == 4  # {00, 01, 10, 11}

    def test_writes_move_to_expected_state(self, m0):
        nxt, out = m0.step(state("00"), write("i", 1))
        assert str(nxt) == "10"
        assert out == DASH

    def test_reads_are_self_loops_with_cell_output(self, m0):
        for s in all_states(("i", "j")):
            for cell in ("i", "j"):
                nxt, out = m0.step(s, read(cell))
                assert nxt == s
                assert out == s[cell]

    def test_wait_is_identity(self, m0):
        for s in all_states(("i", "j")):
            nxt, out = m0.step(s, wait())
            assert nxt == s
            assert out == DASH

    def test_uninitialized_states_present(self, m0):
        nxt, out = m0.step(state("--"), write("j", 0))
        assert str(nxt) == "-0"
        nxt, out = m0.step(state("-0"), read("i"))
        assert out == DASH  # reading a non-initialized cell

    def test_verifying_read_input_is_canonicalized(self, m0):
        # r1i and ri are the same machine input.
        nxt1, out1 = m0.step(state("10"), read("i", 1))
        nxt2, out2 = m0.step(state("10"), read("i"))
        assert (nxt1, out1) == (nxt2, out2)

    def test_unknown_transition_raises(self, m0):
        with pytest.raises(KeyError):
            m0.step(MemoryState.parse("0", cells=("i",)), read("i"))


class TestRun:
    def test_run_collects_outputs(self, m0):
        ops = parse_sequence("w0i, w1j, ri, rj")
        final, outputs = m0.run(state("--"), ops)
        assert str(final) == "01"
        assert outputs == (DASH, DASH, 0, 1)

    def test_run_from_power_up_covers_all_states(self, m0):
        final, _ = m0.run(
            state("--"), parse_sequence("w1i, w1j, w0i, w0j")
        )
        assert str(final) == "00"


class TestDerivation:
    def test_copy_is_structural(self, m0):
        clone = m0.copy("clone")
        assert machines_equal(m0, clone)
        assert clone.name == "clone"

    def test_with_transition_deviates_once(self, m0):
        faulty = m0.with_transition(state("00"), write("i", 1), state("11"))
        diffs = faulty.deviations_from(m0)
        assert diffs == (("delta", (state("00"), write("i", 1))),)

    def test_with_output_deviates_once(self, m0):
        faulty = m0.with_output(state("10"), read("i"), 0)
        diffs = faulty.deviations_from(m0)
        assert diffs == (("lambda", (state("10"), read("i"))),)

    def test_with_transition_requires_existing_edge(self, m0):
        with pytest.raises(KeyError):
            m0.with_transition(
                MemoryState.parse("0", cells=("i",)), write("i", 1), state("00")
            )

    def test_deviated_machine_behaviour(self, m0):
        # The <up,1> coupling deviation: w1i from 00 lands in 11.
        faulty = m0.with_transition(state("00"), write("i", 1), state("11"))
        final, outputs = faulty.run(
            state("--"), parse_sequence("w0i, w0j, w1i, rj")
        )
        assert outputs[-1] == 1  # good machine would output 0
        good_final, good_outputs = m0.run(
            state("--"), parse_sequence("w0i, w0j, w1i, rj")
        )
        assert good_outputs[-1] == 0
