"""Tests for Markdown/LaTeX rendering."""

from repro.core.report import GenerationReport
from repro.march.catalog import MATS
from repro.march.test import parse_march
from repro.render import (
    coverage_summary_markdown,
    detection_matrix_markdown,
    march_to_latex,
    report_to_markdown_row,
    table3_markdown,
)


def make_report():
    return GenerationReport(
        test=MATS,
        fault_names=("SAF",),
        elapsed_seconds=0.123,
        verified=True,
        equivalent_known="MATS (4n)",
    )


class TestLatex:
    def test_orders_mapped(self):
        text = march_to_latex(parse_march("{up(r0,w1); down(r1); any(w0)}"))
        assert r"\Uparrow(r0,w1)" in text
        assert r"\Downarrow(r1)" in text
        assert r"\Updownarrow(w0)" in text
        assert text.startswith(r"\{") and text.endswith(r"\}")

    def test_delay_rendered(self):
        text = march_to_latex(parse_march("{any(w1); Del; any(r1)}"))
        assert r"\mathrm{Del}" in text


class TestMarkdown:
    def test_report_row(self):
        row = report_to_markdown_row(make_report())
        assert "SAF" in row and "4n" in row and "MATS (4n)" in row

    def test_table3(self):
        table = table3_markdown([make_report()])
        assert table.count("\n") == 2
        assert table.startswith("| Fault list |")

    def test_detection_matrix(self):
        matrix = {
            "MATS": {"SA0@0": True, "SA1@0": True},
            "MSCAN": {"SA0@0": True, "SA1@0": False},
        }
        text = detection_matrix_markdown(matrix)
        assert "| MATS | x | x |" in text
        assert "| MSCAN | x |   |" in text

    def test_empty_matrix(self):
        assert detection_matrix_markdown({}) == ""

    def test_coverage_summary(self):
        text = coverage_summary_markdown(
            {"MATS": {"SAF": 1.0, "TF": 0.5}}
        )
        assert "full" in text and "50%" in text
