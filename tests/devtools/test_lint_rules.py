"""One flagged-bad and one passing-good fixture per shipped rule."""


class TestLockDiscipline:
    BAD = {"box.py": """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self):
                with self._lock:
                    self._count = self._count + 1

            def peek(self):
                return self._count
    """}

    GOOD = {"box.py": """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._count = 0

            def add(self):
                with self._lock:
                    self._count = self._count + 1

            def peek(self):
                with self._lock:
                    return self._count
    """}

    def test_flags_unlocked_read_of_guarded_attribute(self, lint_tree):
        result = lint_tree(self.BAD, only=["lock-discipline"])
        (finding,) = result.findings
        assert finding.rule == "lock-discipline"
        assert "Box._count" in finding.message
        assert "peek" in finding.message

    def test_passes_when_every_access_is_locked(self, lint_tree):
        assert lint_tree(self.GOOD, only=["lock-discipline"]).ok

    def test_init_writes_are_exempt(self, lint_tree):
        # The __init__ assignments in both fixtures are unlocked and
        # must not be findings: the object is not yet shared.
        result = lint_tree(self.GOOD, only=["lock-discipline"])
        assert result.ok

    def test_closure_under_lock_does_not_count_as_locked(self, lint_tree):
        result = lint_tree({"box.py": """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self._count = 0

                def register(self, registry):
                    with self._lock:
                        self._count = 1
                        registry.append(lambda: self._count)
        """}, only=["lock-discipline"])
        (finding,) = result.findings
        assert "read" in finding.message


class TestEventLoopBlocking:
    BAD = {"svc.py": """\
        import time

        class Loop:
            def _serve_loop(self):
                while True:
                    self._tick()

            def _tick(self):
                time.sleep(0.1)
    """}

    GOOD = {"svc.py": """\
        import time

        class Loop:
            def _serve_loop(self):
                while True:
                    self._tick()

            def _tick(self):
                pass

            def wait_outside_loop(self):
                time.sleep(0.1)
    """}

    def test_flags_sleep_reachable_from_the_loop(self, lint_tree):
        result = lint_tree(self.BAD, only=["event-loop-blocking"])
        (finding,) = result.findings
        assert "time.sleep" in finding.message
        assert "Loop._tick" in finding.message

    def test_unreachable_sleep_is_fine(self, lint_tree):
        assert lint_tree(self.GOOD, only=["event-loop-blocking"]).ok

    def test_flags_blocking_socket_without_setblocking(self, lint_tree):
        result = lint_tree({"svc.py": """\
            class Loop:
                def _serve_loop(self):
                    data = self._sock.recv(4096)
        """}, only=["event-loop-blocking"])
        (finding,) = result.findings
        assert "setblocking" in finding.message

    def test_nonblocking_socket_ops_are_fine(self, lint_tree):
        result = lint_tree({"svc.py": """\
            import socket

            class Loop:
                def start(self):
                    sock = socket.socket()
                    sock.setblocking(False)
                    self._sock = sock

                def _serve_loop(self):
                    data = self._sock.recv(4096)
        """}, only=["event-loop-blocking"])
        assert result.ok

    def test_flags_subprocess_in_dispatch_path(self, lint_tree):
        result = lint_tree({"svc.py": """\
            import subprocess

            class Loop:
                def _serve_loop(self):
                    self._handle()

                def _handle(self):
                    subprocess.run(["true"])
        """}, only=["event-loop-blocking"])
        (finding,) = result.findings
        assert "subprocess" in finding.message


class TestInjectableClock:
    def test_flags_naked_wall_clock_calls(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                return time.time(), time.monotonic()
        """}, only=["injectable-clock"])
        assert len(result.findings) == 2

    def test_flags_unseeded_random(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import random

            def jitter():
                return random.Random().random()
        """}, only=["injectable-clock"])
        (finding,) = result.findings
        assert "seed" in finding.message

    def test_injectable_default_reference_is_fine(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import random
            import time

            class Timer:
                def __init__(self, clock=None, seed=0):
                    self.clock = clock if clock is not None else time.monotonic
                    self.rng = random.Random(seed)
        """}, only=["injectable-clock"])
        assert result.ok

    def test_allowlisted_files_may_use_their_declared_clock(self, lint_tree):
        result = lint_tree({"src/repro/store/store.py": """\
            import time

            def row_stamp():
                return int(time.time())
        """}, only=["injectable-clock"])
        assert result.ok

    def test_allowlist_is_per_call_not_per_file(self, lint_tree):
        # store.py may call time.time() but not time.monotonic().
        result = lint_tree({"src/repro/store/store.py": """\
            import time

            def uptime():
                return time.monotonic()
        """}, only=["injectable-clock"])
        (finding,) = result.findings
        assert "time.monotonic" in finding.message


class TestResourceOwnership:
    def test_flags_connect_outside_the_store_module(self, lint_tree):
        result = lint_tree({"src/repro/kernel/rogue.py": """\
            import sqlite3

            def side_channel(path):
                conn = sqlite3.connect(path)
                try:
                    return conn.execute("select 1").fetchone()
                finally:
                    conn.close()
        """}, only=["resource-ownership"])
        (finding,) = result.findings
        assert "store/store.py" in finding.message

    def test_flags_unclosed_acquisition_in_store_stack(self, lint_tree):
        result = lint_tree({"src/repro/store/leaky.py": """\
            import socket

            def probe(path):
                sock = socket.socket()
                sock.connect(path)
                return sock.recv(1)
        """}, only=["resource-ownership"])
        (finding,) = result.findings
        assert "sock.close()" in finding.message

    def test_closed_and_owned_acquisitions_pass(self, lint_tree):
        result = lint_tree({"src/repro/store/store.py": """\
            import sqlite3

            class Store:
                def __init__(self, path):
                    self._conn = sqlite3.connect(path)

                def reopen(self, path):
                    conn = sqlite3.connect(path)
                    try:
                        conn.execute("PRAGMA quick_check")
                    except BaseException:
                        conn.close()
                        raise
                    return conn
        """}, only=["resource-ownership"])
        assert result.ok


class TestWireContract:
    SERVICE = """\
        SERVICE_OPS = ("ping", "stats")

        class VerdictService:
            def _dispatch(self, request):
                op = request["op"]
                if op == "ping":
                    return {"ok": True}
                if op == "stats":
                    return {"ok": True}
                return {"ok": False}

            def _other(self):
                pass
    """

    DOC_OK = """\
        ## 4. Op reference

        | op | writes | request | response |
        |---|---|---|---|
        | `ping` | no | - | `service` |
        | `stats` | no | - | `stats` |
    """

    def tree(self, service, doc):
        return {
            "src/repro/store/service.py": service,
            "docs/PROTOCOL.md": doc,
        }

    def test_agreement_passes(self, lint_tree):
        result = lint_tree(
            self.tree(self.SERVICE, self.DOC_OK), only=["wire-contract"],
            paths=None,
        )
        assert result.ok

    def test_undocumented_op_is_flagged_both_ways(self, lint_tree):
        doc_missing_stats = self.DOC_OK.replace(
            "| `stats` | no | - | `stats` |\n", ""
        )
        result = lint_tree(
            self.tree(self.SERVICE, doc_missing_stats),
            only=["wire-contract"],
        )
        assert not result.ok
        assert any("stats" in f.message and "documented" in f.message
                   for f in result.findings)

    def test_documented_ghost_op_is_flagged(self, lint_tree):
        doc_extra = self.DOC_OK + "| `vanish` | no | - | - |\n"
        result = lint_tree(
            self.tree(self.SERVICE, doc_extra), only=["wire-contract"],
        )
        assert not result.ok
        assert any("vanish" in f.message for f in result.findings)

    def test_dispatch_handler_missing_from_registry_is_flagged(
        self, lint_tree
    ):
        service = self.SERVICE.replace(
            'SERVICE_OPS = ("ping", "stats")',
            'SERVICE_OPS = ("ping",)',
        )
        doc = self.DOC_OK.replace("| `stats` | no | - | `stats` |\n", "")
        result = lint_tree(
            self.tree(service, doc), only=["wire-contract"],
        )
        assert any(
            "dispatched by _dispatch but not registered" in f.message
            for f in result.findings
        )


class TestMetricCatalog:
    def test_undeclared_series_is_flagged(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def record(telemetry):
                telemetry.counter("repro.sevice.requests").inc()
        """}, only=["metric-catalog"])
        (finding,) = result.findings
        assert "repro.sevice.requests" in finding.message

    def test_declared_series_passes(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def record(telemetry):
                telemetry.counter("repro.service.requests", op="ping").inc()
        """}, only=["metric-catalog"])
        assert result.ok

    def test_fstring_prefix_must_match_a_declared_series(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def adopt(registry, field, counter):
                registry.adopt(f"repro.nothing.{field}", counter)
        """}, only=["metric-catalog"])
        (finding,) = result.findings
        assert "repro.nothing." in finding.message

    def test_fstring_with_declared_prefix_passes(self, lint_tree):
        result = lint_tree({"mod.py": """\
            def adopt(registry, field, counter):
                registry.adopt(f"repro.kernel.cache.{field}", counter)
        """}, only=["metric-catalog"])
        assert result.ok

    def test_non_metric_strings_are_ignored(self, lint_tree):
        result = lint_tree({"mod.py": """\
            NAME = "repro.not.a.metric"

            def log(logger):
                logger.info("repro.also.not.a.metric")
        """}, only=["metric-catalog"])
        assert result.ok
