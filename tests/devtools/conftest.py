"""Shared fixture for the lint-suite tests: write a file tree into
tmp_path and lint it."""

from textwrap import dedent

import pytest

from repro.devtools.lint import run_lint


@pytest.fixture
def lint_tree(tmp_path):
    """Write ``{relpath: source}`` under tmp_path and lint the tree.

    Call with a ``{relpath: source}`` dict (sources are dedented) and
    optional ``only=[rule-id]``; returns the LintResult.
    """

    def _lint(files, only=(), paths=None):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(dedent(source), encoding="utf-8")
        roots = paths if paths is not None else [str(tmp_path)]
        return run_lint(roots, only=only, root=tmp_path)

    return _lint
