"""telemetry/catalog.py cannot rot: every series a fully instrumented
run registers must be declared (tier-1)."""

from repro.store.campaign import CampaignSpec, run_campaign
from repro.store.service import VerdictService
from repro.telemetry import Telemetry
from repro.telemetry.catalog import CATALOG, METRIC_SERIES, is_declared

#: A miniature Table 3 sweep: store-backed so kernel, tiered-cache and
#: store series all register, same shape as the paper's campaign.
SPEC = {
    "name": "catalog-cross-check",
    "tests": ["MATS", "MarchC-"],
    "faults": ["SAF", "TF"],
    "sizes": [3],
    "backends": ["serial"],
}


class TestRuntimeCrossCheck:
    def test_campaign_series_are_a_subset_of_the_catalog(self, tmp_path):
        manifest = run_campaign(
            CampaignSpec.from_dict(SPEC),
            store_path=str(tmp_path / "dict.sqlite"),
            clock=lambda: 0.0,
        )
        registered = set(manifest["telemetry"]["metrics"]["metrics"])
        assert registered, "instrumented campaign registered nothing"
        undeclared = registered - METRIC_SERIES
        assert not undeclared, (
            f"series missing from telemetry/catalog.py: {sorted(undeclared)}"
        )

    def test_daemon_collector_series_are_declared(self, tmp_path):
        # Constructing the daemon registers every collector series; no
        # need to serve traffic to check their names.
        service = VerdictService(store_path=tmp_path / "dict.sqlite")
        registered = set(service.telemetry.snapshot()["metrics"])
        assert registered
        undeclared = registered - METRIC_SERIES
        assert not undeclared, (
            f"series missing from telemetry/catalog.py: {sorted(undeclared)}"
        )

    def test_injected_clock_pins_the_manifest_stamp(self, tmp_path):
        manifest = run_campaign(
            CampaignSpec.from_dict(SPEC),
            store_path=str(tmp_path / "dict.sqlite"),
            clock=lambda: 1234.5678,
        )
        assert manifest["generated_unix"] == 1234.568

    def test_catalog_shape(self):
        assert METRIC_SERIES == frozenset(CATALOG)
        assert all(name.startswith("repro.") for name in METRIC_SERIES)
        assert all(CATALOG[name] for name in CATALOG)
        assert is_declared("repro.service.requests")
        assert not is_declared("repro.sevice.requests")
