"""The lint framework itself: suppressions, reporters, CLI plumbing."""

import json

import pytest

from repro.cli import main
from repro.devtools.lint import (
    REPORT_SCHEMA,
    all_rule_ids,
    build_report,
    render_json,
    render_text,
    run_lint,
)


def rules_hit(result):
    return sorted({finding.rule for finding in result.findings})

#: A minimal injectable-clock violation used as the framework's guinea pig.
BAD_CLOCK = """\
    import time

    def stamp():
        return time.time()
"""


class TestSuppressions:
    def test_trailing_waiver_silences_its_line(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=injectable-clock -- test stamp
        """})
        assert result.ok
        assert result.waived == 1

    def test_standalone_waiver_covers_the_next_line(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                # repro-lint: disable=injectable-clock -- test stamp
                return time.time()
        """})
        assert result.ok
        assert result.waived == 1

    def test_unjustified_waiver_does_not_suppress(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            def stamp():
                return time.time()  # repro-lint: disable=injectable-clock
        """})
        assert set(rules_hit(result)) == {"injectable-clock", "suppression"}

    def test_unknown_rule_in_waiver_is_flagged(self, lint_tree):
        result = lint_tree({"mod.py": """\
            x = 1  # repro-lint: disable=not-a-rule -- because
        """})
        assert rules_hit(result) == ["suppression"]
        assert "unknown rule" in result.findings[0].message

    def test_scope_waiver_covers_the_whole_method(self, lint_tree):
        result = lint_tree({"mod.py": """\
            import time

            class Stamps:
                def many(self):
                    # repro-lint: disable-scope=injectable-clock -- all benign
                    first = time.time()
                    second = time.monotonic()
                    return first, second
        """})
        assert result.ok
        assert result.waived == 2

    def test_scope_waiver_at_module_level_is_rejected(self, lint_tree):
        result = lint_tree({"mod.py": """\
            # repro-lint: disable-scope=injectable-clock -- too broad
            x = 1
        """})
        assert rules_hit(result) == ["suppression"]
        assert "module-wide" in result.findings[0].message

    def test_directive_in_a_string_is_inert(self, lint_tree):
        result = lint_tree({"mod.py": '''\
            DOC = "# repro-lint: disable=injectable-clock -- not a comment"
            """Docstring mentioning # repro-lint: disable=stuff."""
        '''})
        assert result.ok
        assert result.waived == 0

    def test_suppression_hygiene_problems_cannot_be_waived(self, lint_tree):
        result = lint_tree({"mod.py": """\
            x = 1  # repro-lint: disable=not-a-rule -- reason  # repro-lint: disable=suppression -- nice try
        """})
        assert "suppression" in rules_hit(result)


class TestReporters:
    def test_json_report_schema(self, lint_tree):
        result = lint_tree({"mod.py": BAD_CLOCK})
        report = json.loads(render_json(
            result.findings, result.checked_files, result.waived
        ))
        assert report["schema"] == REPORT_SCHEMA
        assert report["tool"] == "repro-lint"
        assert report["checked_files"] == 1
        assert report["waived"] == 0
        assert report["counts"] == {"injectable-clock": 1}
        (finding,) = report["findings"]
        assert set(finding) == {"rule", "path", "line", "message"}
        assert finding["rule"] == "injectable-clock"
        assert finding["line"] == 4

    def test_findings_are_sorted_and_deterministic(self, lint_tree):
        result = lint_tree({
            "b.py": BAD_CLOCK,
            "a.py": BAD_CLOCK,
        })
        paths = [finding.path for finding in result.findings]
        assert paths == sorted(paths)
        first = build_report(result.findings, 2, 0)
        second = build_report(result.findings, 2, 0)
        assert first == second

    def test_text_report_carries_locations(self, lint_tree):
        result = lint_tree({"mod.py": BAD_CLOCK})
        text = render_text(
            result.findings, result.checked_files, result.waived
        )
        assert "mod.py:4: [injectable-clock]" in text
        assert "1 finding(s) in 1 file(s)" in text


class TestRunner:
    def test_parse_error_is_a_finding_not_a_crash(self, lint_tree):
        result = lint_tree({"broken.py": "def oops(:\n"})
        assert rules_hit(result) == ["parse-error"]

    def test_rule_filter_runs_only_that_rule(self, lint_tree):
        files = {
            "repro/store/extra.py": """\
                import sqlite3, time

                def open_it(path):
                    t = time.time()
                    conn = sqlite3.connect(path)
                    return conn, t
            """,
        }
        everything = lint_tree(files)
        assert set(rules_hit(everything)) == {
            "injectable-clock", "resource-ownership",
        }
        only_clock = lint_tree(files, only=["injectable-clock"])
        assert rules_hit(only_clock) == ["injectable-clock"]

    def test_missing_path_raises(self):
        with pytest.raises(FileNotFoundError):
            run_lint(["definitely/not/here"])

    def test_all_rule_ids_include_the_six_shipped_rules(self):
        ids = all_rule_ids()
        for expected in (
            "lock-discipline", "event-loop-blocking", "injectable-clock",
            "resource-ownership", "wire-contract", "metric-catalog",
        ):
            assert expected in ids


class TestCli:
    def test_exit_zero_and_report_on_clean_tree(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_one_with_findings(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\nstamp = time.time()\n"
        )
        assert main(["lint", str(tmp_path)]) == 1
        assert "[injectable-clock]" in capsys.readouterr().out

    def test_json_flag_emits_the_schema_document(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text(
            "import time\nstamp = time.time()\n"
        )
        assert main(["lint", "--json", str(tmp_path)]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["schema"] == REPORT_SCHEMA
        assert report["counts"] == {"injectable-clock": 1}

    def test_unknown_rule_is_a_usage_error(self, tmp_path, capsys):
        assert main(["lint", "--rule", "nope", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err

    def test_missing_path_is_a_usage_error(self, capsys):
        assert main(["lint", "no/such/dir"]) == 2
        assert "does not exist" in capsys.readouterr().err
