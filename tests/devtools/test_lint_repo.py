"""The gate itself: the repo self-lints clean, and a seeded violation
turns the static-analysis job red (tier-1)."""

from pathlib import Path

import pytest

from repro.cli import main
from repro.devtools.lint import run_lint

REPO = Path(__file__).resolve().parents[2]
SERVICE = REPO / "src" / "repro" / "store" / "service.py"
PROTOCOL = REPO / "docs" / "PROTOCOL.md"


class TestSelfLint:
    def test_repo_lints_clean(self):
        """`repro lint src/ benchmarks/` exits 0 on the merged tree."""
        assert main([
            "lint", str(REPO / "src" / "repro"), str(REPO / "benchmarks"),
        ]) == 0

    def test_repo_waivers_are_active_and_justified(self):
        # The clean run relies on justified suppressions, not on the
        # rules being blind: some findings must actually be waived,
        # and none of the `suppression` hygiene checks may fire.
        result = run_lint(
            [str(REPO / "src" / "repro"), str(REPO / "benchmarks")],
            root=REPO,
        )
        assert result.ok
        assert result.waived > 0


@pytest.fixture
def doctored_tree(tmp_path):
    """A hermetic src/repro/store/service.py + docs/PROTOCOL.md copy of
    the real pair, ready to be doctored."""
    service_copy = tmp_path / "src" / "repro" / "store" / "service.py"
    service_copy.parent.mkdir(parents=True)
    service_copy.write_text(SERVICE.read_text(encoding="utf-8"),
                            encoding="utf-8")
    doc_copy = tmp_path / "docs" / "PROTOCOL.md"
    doc_copy.parent.mkdir()
    doc_copy.write_text(PROTOCOL.read_text(encoding="utf-8"),
                        encoding="utf-8")
    return tmp_path


class TestSeededViolations:
    """What CI's static-analysis job would do with a bad push."""

    def test_pristine_copy_lints_clean(self, doctored_tree):
        assert main(["lint", str(doctored_tree / "src")]) == 0

    def test_seeded_sleep_in_the_loop_goes_red(self, doctored_tree):
        service = doctored_tree / "src" / "repro" / "store" / "service.py"
        text = service.read_text(encoding="utf-8")
        assert "def _serve_loop(self) -> None:" in text
        service.write_text(text.replace(
            "def _serve_loop(self) -> None:",
            "def _serve_loop(self) -> None:\n        time.sleep(0.5)",
            1,
        ), encoding="utf-8")
        result = run_lint([str(doctored_tree / "src")], root=doctored_tree)
        assert any(
            f.rule == "event-loop-blocking" and "time.sleep" in f.message
            for f in result.findings
        )
        assert main(["lint", str(doctored_tree / "src")]) == 1

    def test_seeded_doc_drift_goes_red(self, doctored_tree):
        doc = doctored_tree / "docs" / "PROTOCOL.md"
        lines = doc.read_text(encoding="utf-8").splitlines(keepends=True)
        pruned = [line for line in lines if not line.startswith("| `compact`")]
        assert len(pruned) == len(lines) - 1
        doc.write_text("".join(pruned), encoding="utf-8")
        result = run_lint([str(doctored_tree / "src")], root=doctored_tree)
        assert any(
            f.rule == "wire-contract" and "compact" in f.message
            for f in result.findings
        )

    def test_seeded_unexplained_waiver_goes_red(self, doctored_tree):
        service = doctored_tree / "src" / "repro" / "store" / "service.py"
        text = service.read_text(encoding="utf-8")
        service.write_text(text.replace(
            "# repro-lint: disable=lock-discipline -- racy read is tolerated",
            "# repro-lint: disable=lock-discipline",
            1,
        ), encoding="utf-8")
        result = run_lint([str(doctored_tree / "src")], root=doctored_tree)
        assert any(
            f.rule == "suppression" and "justification" in f.message
            for f in result.findings
        )
