"""Tests for fault diagnosis by output tracing."""

import pytest

from repro.diagnosis import (
    build_dictionary,
    build_dictionary_for,
    diagnose_memory,
    syndrome_of,
)
from repro.faults import FaultList
from repro.faults.instances import StuckAtInstance
from repro.march.catalog import MARCH_C_MINUS, MATS
from repro.memory.array import MemoryArray


class TestSyndromes:
    def test_fault_free_syndrome_is_empty(self):
        assert syndrome_of(MATS, lambda: None or _null(), 3) == frozenset()

    def test_opposite_polarities_differ(self):
        sa0 = syndrome_of(MATS, lambda: StuckAtInstance(1, 0), 3)
        sa1 = syndrome_of(MATS, lambda: StuckAtInstance(1, 1), 3)
        assert sa0 and sa1 and sa0 != sa1

    def test_different_cells_differ(self):
        a = syndrome_of(MATS, lambda: StuckAtInstance(0, 0), 3)
        b = syndrome_of(MATS, lambda: StuckAtInstance(2, 0), 3)
        assert a != b
        assert {f[2] for f in a} == {0}
        assert {f[2] for f in b} == {2}


def _null():
    from repro.memory.array import NullFaultInstance

    return NullFaultInstance()


class TestDictionary:
    def test_saf_fully_resolvable_by_mats(self, saf_list):
        dictionary = build_dictionary_for(MATS, saf_list, 3)
        assert dictionary.resolution() == 1.0
        assert dictionary.undetected_cases() == ()

    def test_diagnose_injected_fault(self, saf_list):
        dictionary = build_dictionary_for(MATS, saf_list, 3)
        memory = MemoryArray(3, fault=StuckAtInstance(1, 0))
        candidates = diagnose_memory(MATS, memory, dictionary)
        assert candidates == ("SA0@1",)

    def test_diagnose_good_memory(self, saf_list):
        dictionary = build_dictionary_for(MATS, saf_list, 3)
        memory = MemoryArray(3)
        assert diagnose_memory(MATS, memory, dictionary) == ()

    def test_unknown_syndrome_yields_no_candidates(self, saf_list):
        dictionary = build_dictionary_for(MATS, saf_list, 3)
        assert dictionary.diagnose(frozenset({(0, 0, 0, 1)})) == ()

    def test_row5_dictionary_statistics(self):
        faults = FaultList.from_names("SAF", "TF", "CFIN", "CFID")
        dictionary = build_dictionary_for(MARCH_C_MINUS, faults, 3)
        assert dictionary.undetected_cases() == ()
        # March C- is a detection test, not a diagnostic one: plenty of
        # coupling cases share syndromes (measured resolution 0.25),
        # which is exactly why [6] builds dedicated diagnostic tests.
        assert 0.1 < dictionary.resolution() < 0.9
        assert dictionary.syndromes < dictionary.case_count
        assert dictionary.case_count == len(faults.instances(3))

    def test_mats_cannot_resolve_tf_from_saf(self):
        # TF<up> and SA0 on the same cell produce the same MATS
        # syndrome -- diagnosis needs a richer test.
        faults = FaultList.from_names("SAF", "TF")
        dictionary = build_dictionary_for(MATS, faults, 2)
        ambiguous = [
            names for names in dictionary.entries.values() if len(names) > 1
        ]
        assert ambiguous
