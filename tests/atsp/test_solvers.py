"""Cross-checked tests for the exact and heuristic ATSP solvers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.atsp.branch_bound import branch_and_bound_cycle
from repro.atsp.held_karp import held_karp_cycle, held_karp_path
from repro.atsp.heuristics import (
    nearest_neighbor_cycle,
    nearest_neighbor_with_or_opt,
    or_opt_improve,
    tour_cost,
)
from repro.atsp.solver import brute_force_cycle, solve_cycle, solve_path


def random_matrix(n, seed, high=40):
    rng = random.Random(seed)
    return [
        [0 if r == c else rng.randint(1, high) for c in range(n)]
        for r in range(n)
    ]


small_instances = st.tuples(
    st.integers(min_value=2, max_value=7), st.integers(min_value=0, max_value=10 ** 6)
).map(lambda t: random_matrix(*t))


class TestHeldKarp:
    def test_trivial_sizes(self):
        assert held_karp_cycle([]) == ([], 0.0)
        assert held_karp_cycle([[0]]) == ([0], 0.0)

    def test_known_instance(self):
        cost = [
            [0, 1, 9],
            [9, 0, 1],
            [1, 9, 0],
        ]
        tour, total = held_karp_cycle(cost)
        assert tour == [0, 1, 2]
        assert total == 3.0

    @given(small_instances)
    @settings(max_examples=40, deadline=None)
    def test_matches_brute_force(self, cost):
        _, expected = brute_force_cycle(cost)
        tour, total = held_karp_cycle(cost)
        assert total == expected
        assert total == tour_cost(cost, tour)
        assert sorted(tour) == list(range(len(cost)))


class TestBranchAndBound:
    @given(small_instances)
    @settings(max_examples=40, deadline=None)
    def test_matches_held_karp(self, cost):
        _, expected = held_karp_cycle(cost)
        tour, total = branch_and_bound_cycle(cost)
        assert total == expected
        assert total == tour_cost(cost, tour)

    def test_moderate_instance(self):
        cost = random_matrix(18, seed=7)
        tour, total = branch_and_bound_cycle(cost)
        assert sorted(tour) == list(range(18))
        assert total == tour_cost(cost, tour)
        # Sanity: never worse than the greedy heuristic.
        _, greedy = nearest_neighbor_cycle(cost)
        assert total <= greedy


class TestHeuristics:
    def test_nearest_neighbor_visits_all(self):
        cost = random_matrix(9, seed=3)
        tour, total = nearest_neighbor_cycle(cost)
        assert sorted(tour) == list(range(9))
        assert total == tour_cost(cost, tour)

    def test_or_opt_never_worsens(self):
        cost = random_matrix(10, seed=5)
        tour, base = nearest_neighbor_cycle(cost)
        improved, better = or_opt_improve(cost, tour)
        assert better <= base
        assert sorted(improved) == list(range(10))

    @given(small_instances)
    @settings(max_examples=20, deadline=None)
    def test_heuristic_upper_bounds_optimum(self, cost):
        _, optimum = held_karp_cycle(cost)
        _, heuristic = nearest_neighbor_with_or_opt(cost)
        assert heuristic >= optimum


class TestFacade:
    @pytest.mark.parametrize("method", ["held_karp", "branch_bound", "brute"])
    def test_methods_agree(self, method):
        cost = random_matrix(7, seed=11)
        _, expected = brute_force_cycle(cost)
        _, total = solve_cycle(cost, method=method)
        assert total == expected

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            solve_cycle([[0]], method="annealing")

    def test_auto_scales(self):
        cost = random_matrix(20, seed=13)
        tour, total = solve_cycle(cost)
        assert sorted(tour) == list(range(20))


class TestPathSolving:
    def test_path_ignores_closing_arc(self):
        # Costs make the cycle expensive but the open path cheap.
        cost = [
            [0, 1, 100],
            [100, 0, 1],
            [1, 100, 0],
        ]
        order, total = solve_path(cost)
        assert sorted(order) == [0, 1, 2]
        assert total == 2.0  # two unit arcs, no closing arc

    def test_path_start_costs(self):
        cost = [[0, 5], [5, 0]]
        order, total = solve_path(cost, start_costs=[10, 0])
        assert order == [1, 0]
        assert total == 5.0

    def test_allowed_starts_restriction(self):
        cost = [[0, 5], [5, 0]]
        order, total = solve_path(
            cost, start_costs=[10, 0], allowed_starts={0}
        )
        assert order == [0, 1]
        assert total == 15.0

    def test_infeasible_restriction_raises(self):
        with pytest.raises(ValueError):
            solve_path([[0]], start_costs=[0], allowed_starts=set())

    def test_path_matches_brute_force_path(self):
        import itertools

        cost = random_matrix(6, seed=17)
        starts = [random.Random(23 + k).randint(0, 5) for k in range(6)]
        best = float("inf")
        for perm in itertools.permutations(range(6)):
            total = starts[perm[0]] + sum(
                cost[perm[k]][perm[k + 1]] for k in range(5)
            )
            best = min(best, total)
        _, total = solve_path(cost, start_costs=starts)
        assert total == best

    def test_large_instance_uses_depot_construction(self):
        cost = random_matrix(16, seed=29)
        order, total = solve_path(cost)
        assert sorted(order) == list(range(16))
        walked = sum(cost[order[k]][order[k + 1]] for k in range(15))
        assert walked == total
