"""Tests for the assignment-problem solver."""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.atsp.hungarian import (
    FORBIDDEN,
    assignment_cycles,
    solve_assignment,
)


def brute_force_assignment(cost):
    n = len(cost)
    best, best_perm = float("inf"), None
    for perm in itertools.permutations(range(n)):
        total = sum(cost[r][perm[r]] for r in range(n))
        if total < best:
            best, best_perm = total, list(perm)
    return best_perm, best


class TestBasics:
    def test_empty(self):
        assert solve_assignment([]) == ([], 0.0)

    def test_single(self):
        assert solve_assignment([[7]]) == ([0], 7.0)

    def test_two_by_two(self):
        assignment, total = solve_assignment([[4, 1], [2, 3]])
        assert assignment == [1, 0]
        assert total == 3.0

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            solve_assignment([[1, 2], [3]])

    def test_identity_optimal(self):
        cost = [
            [0, 9, 9],
            [9, 0, 9],
            [9, 9, 0],
        ]
        assignment, total = solve_assignment(cost)
        assert assignment == [0, 1, 2]
        assert total == 0.0

    def test_forbidden_arcs_avoided(self):
        cost = [
            [FORBIDDEN, 1],
            [1, FORBIDDEN],
        ]
        assignment, total = solve_assignment(cost)
        assert assignment == [1, 0]
        assert total == 2.0


matrices = st.integers(min_value=2, max_value=6).flatmap(
    lambda n: st.lists(
        st.lists(st.integers(min_value=0, max_value=50), min_size=n, max_size=n),
        min_size=n,
        max_size=n,
    )
)


class TestAgainstBruteForce:
    @given(matrices)
    @settings(max_examples=60, deadline=None)
    def test_optimal_cost(self, cost):
        _, expected = brute_force_assignment(cost)
        assignment, total = solve_assignment(cost)
        assert total == expected
        # And the reported assignment realizes the reported cost.
        assert sum(cost[r][assignment[r]] for r in range(len(cost))) == total

    @given(matrices)
    @settings(max_examples=30, deadline=None)
    def test_assignment_is_permutation(self, cost):
        assignment, _ = solve_assignment(cost)
        assert sorted(assignment) == list(range(len(cost)))


class TestCycles:
    def test_single_cycle(self):
        assert assignment_cycles([1, 2, 0]) == [[0, 1, 2]]

    def test_multiple_cycles(self):
        assert assignment_cycles([1, 0, 3, 2]) == [[0, 1], [2, 3]]

    def test_fixed_points(self):
        assert assignment_cycles([0, 1]) == [[0], [1]]
