"""Tests for the dual-port memory extension."""

import pytest

from repro.memory.state import DASH
from repro.multiport import (
    MARCH_2PF,
    DualPortMemoryArray,
    March2PTest,
    WeakPortCoupling,
    WeakReadReadDisturb,
    WeakWriteLostOnRead,
    covers_all_weak_faults,
    detects_weak_case,
    parse_march_2p,
    port_read,
    port_write,
    run_march_2p,
    weak_fault_cases,
)
from repro.faults.instances import case


class TestDualPortArray:
    def test_single_port_cycles(self):
        memory = DualPortMemoryArray(3)
        memory.cycle(port_write(0, 1), None)
        result = memory.cycle(port_read(0), None)
        assert result.port_a == 1

    def test_simultaneous_reads_same_cell(self):
        memory = DualPortMemoryArray(2)
        memory.cycle(port_write(1, 0), None)
        result = memory.cycle(port_read(1), port_read(1))
        assert result.port_a == 0 and result.port_b == 0

    def test_read_during_write_is_indeterminate(self):
        memory = DualPortMemoryArray(2)
        memory.cycle(port_write(0, 0), None)
        result = memory.cycle(port_write(0, 1), port_read(0))
        assert result.port_b == DASH
        assert memory.raw[0] == 1  # the write lands

    def test_conflicting_writes_leave_indeterminate(self):
        memory = DualPortMemoryArray(2)
        memory.cycle(port_write(0, 0), port_write(0, 1))
        assert memory.raw[0] == DASH

    def test_agreeing_writes_ok(self):
        memory = DualPortMemoryArray(2)
        memory.cycle(port_write(0, 1), port_write(0, 1))
        assert memory.raw[0] == 1

    def test_parallel_writes_different_cells(self):
        memory = DualPortMemoryArray(2)
        memory.cycle(port_write(0, 1), port_write(1, 0))
        assert memory.snapshot() == (1, 0)

    def test_address_bounds(self):
        memory = DualPortMemoryArray(2)
        with pytest.raises(IndexError):
            memory.cycle(port_read(2), None)


class TestWeakFaults:
    def test_wrr_flips_only_under_double_read(self):
        memory = DualPortMemoryArray(2, fault=WeakReadReadDisturb(0))
        memory.cycle(port_write(0, 0), None)
        single = memory.cycle(port_read(0), None)
        assert single.port_a == 0 and memory.raw[0] == 0
        double = memory.cycle(port_read(0), port_read(0))
        assert double.port_a == 1  # flipped and lied
        assert memory.raw[0] == 1

    def test_wwl_loses_write_only_on_collision(self):
        memory = DualPortMemoryArray(2, fault=WeakWriteLostOnRead(1))
        memory.cycle(port_write(1, 0), None)   # fine alone
        memory.cycle(port_write(1, 1), port_read(1))  # lost
        assert memory.raw[1] == 0

    def test_wpc_inverts_read_during_neighbour_write(self):
        memory = DualPortMemoryArray(3, fault=WeakPortCoupling(1, 0))
        memory.cycle(port_write(0, 1), None)
        result = memory.cycle(port_write(1, 0), port_read(0))
        assert result.port_b == 0   # inverted crosstalk readout
        assert memory.raw[0] == 1   # stored value intact

    def test_wpc_requires_distinct_cells(self):
        with pytest.raises(ValueError):
            WeakPortCoupling(1, 1)

    def test_case_inventory(self):
        cases = weak_fault_cases(3)
        names = {c.name for c in cases}
        assert len([n for n in names if n.startswith("wRR")]) == 3
        assert len([n for n in names if n.startswith("wWL")]) == 3
        assert len([n for n in names if n.startswith("wPC")]) == 4


class TestNotation:
    def test_parse_roundtrip(self):
        text = "{⇕(w0); ⇑(r0:r,w1:r,r1:r); ⇑(w0:r-1); ⇓(w1:r+1)}"
        test = parse_march_2p(text)
        assert str(test) == text
        assert test.complexity == 6

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_march_2p("{up(x0)}")
        with pytest.raises(ValueError):
            parse_march_2p("nothing")

    def test_order_variants(self):
        test = parse_march_2p("{any(w0); any(r0:r)}")
        assert len(test.concrete_order_variants()) == 4


class TestMarch2PF:
    def test_covers_all_weak_faults(self):
        ok, missed = covers_all_weak_faults(MARCH_2PF, 3)
        assert ok, missed

    def test_covers_at_larger_size(self):
        ok, missed = covers_all_weak_faults(MARCH_2PF, 5)
        assert ok, missed

    def test_single_port_projection_misses_weak_faults(self):
        # Stripping the companion reads makes every weak fault
        # invisible -- the defining property of two-port faults.
        single = parse_march_2p(
            "{any(w0); up(r0, w1, r1); up(w0); down(w1)}"
        )
        ok, missed = covers_all_weak_faults(single, 3)
        assert not ok
        assert len(missed) == len(weak_fault_cases(3))

    def test_each_structural_piece_is_needed(self):
        # Dropping the up(w0:r-1) element loses the wPC a->a-1 cases.
        reduced = parse_march_2p(
            "{any(w0); up(r0:r, w1:r, r1:r); down(w1:r+1)}"
        )
        ok, missed = covers_all_weak_faults(reduced, 3)
        assert not ok
        assert any("wPC" in name for name in missed)

    def test_fault_free_run_stable(self):
        memory = DualPortMemoryArray(4)
        observations = run_march_2p(
            MARCH_2PF.concrete_order_variants()[0], memory
        )
        assert observations
        assert memory.snapshot() == (1, 1, 1, 1)

    def test_detects_single_case(self):
        fc = case("wRR@1", lambda: WeakReadReadDisturb(1))
        assert detects_weak_case(MARCH_2PF, fc, 3)


class TestGeneration:
    def test_generator_with_reduced_targets(self):
        """Fast check: generate against the wRR cases only."""
        from repro.multiport.generate import Search2PStats, generate_march_2p
        from repro.multiport import weak_fault_cases

        targets = [
            fc for fc in weak_fault_cases(3) if fc.name.startswith("wRR")
        ]
        stats = Search2PStats()
        found = generate_march_2p(
            size=3, max_complexity=4, budget=20000, stats=stats, cases=targets
        )
        assert found is not None
        assert found.complexity <= 4
        assert stats.candidates_tested > 0

    def test_generated_5n_result_is_valid(self):
        """The full generator's known 5n output, verified directly."""
        from repro.multiport import covers_all_weak_faults, parse_march_2p

        found = parse_march_2p(
            "{up(w0); up(r0:r, w1:r-1, w0:r); up(w1:r+1)}"
        )
        ok, missed = covers_all_weak_faults(found, 3)
        assert ok, missed
        ok4, _ = covers_all_weak_faults(found, 4)
        assert ok4
        assert found.complexity < MARCH_2PF.complexity
