"""GeneratorConfig validation: unknown backends fail fast."""

import pytest

from repro.core.config import GeneratorConfig
from repro.kernel import BACKENDS


def test_default_config_valid():
    assert GeneratorConfig().backend == "bitparallel"


@pytest.mark.parametrize("name", sorted(BACKENDS))
def test_every_registered_backend_name_accepted(name):
    # Name validity is independent of environment: 'bitparallel-np'
    # without NumPy is a valid *name* that degrades at resolve time.
    assert GeneratorConfig(backend=name).backend == name


def test_unknown_backend_rejected_at_construction():
    with pytest.raises(ValueError) as excinfo:
        GeneratorConfig(backend="bitparalel")  # typo
    message = str(excinfo.value)
    assert "bitparalel" in message
    # The error lists every valid choice, so the fix is self-evident.
    for name in BACKENDS:
        assert name in message


def test_campaign_spec_shares_the_validation():
    from repro.store.campaign import CampaignSpec, CampaignSpecError

    with pytest.raises(CampaignSpecError) as excinfo:
        CampaignSpec.from_dict(
            {"tests": ["MATS"], "faults": ["SAF"], "backends": ["bogus"]}
        )
    assert "valid choices" in str(excinfo.value)
