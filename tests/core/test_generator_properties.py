"""Property-based end-to-end tests: the generator handles *arbitrary*
user-defined two-cell faults.

Hypothesis draws random single-deviation faulty machines (delta or
lambda BFEs); each becomes a :class:`GenericPairFault` whose simulator
instances are derived automatically.  The generated March test must
always be verified and non-trivial.  This is the strongest invariant of
the system: generation is sound for the whole unconstrained fault
space the paper's model covers, not just the named library models.
"""

from hypothesis import given, settings, strategies as st

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.faults.bfe import delta_bfe, lambda_bfe
from repro.faults.faultlist import BFEClass, FaultList
from repro.faults.generic import GenericPairFault
from repro.memory.operations import read, write
from repro.memory.state import MemoryState
from repro.simulator.faultsim import simulate_fault_list

concrete_states = st.sampled_from(
    [MemoryState.parse(a + b) for a in "01" for b in "01"]
)
cells = st.sampled_from(["i", "j"])
bits = st.sampled_from([0, 1])


@st.composite
def delta_bfes(draw):
    """A random genuine, observable delta deviation on a write."""
    state = draw(concrete_states)
    cell = draw(cells)
    value = draw(bits)
    op = write(cell, value)
    good = state.apply(op)
    # Choose a faulty next state differing from the good one.
    flip_i = draw(st.booleans())
    flip_j = draw(st.booleans())
    if not (flip_i or flip_j):
        flip_i = True
    faulty = good
    if flip_i:
        faulty = faulty.set("i", 1 - int(good["i"]))
    if flip_j:
        faulty = faulty.set("j", 1 - int(good["j"]))
    return delta_bfe(state, op, faulty, label="random-delta")


@st.composite
def lambda_bfes(draw):
    state = draw(concrete_states)
    cell = draw(cells)
    return lambda_bfe(state, read(cell), 1 - int(state[cell]),
                      label="random-lambda")


FAST = GeneratorConfig(
    selection_limit=8,
    polish=False,
    check_redundancy=False,
    confirm_size=3,
)


def _generate_for(bfe):
    model = GenericPairFault("RAND", [BFEClass("c0", (bfe,))])
    faults = FaultList([model])
    report = MarchTestGenerator(FAST).generate(faults)
    return faults, report


class TestArbitraryFaults:
    @given(delta_bfes())
    @settings(max_examples=25, deadline=None)
    def test_random_delta_faults_always_covered(self, bfe):
        faults, report = _generate_for(bfe)
        assert report.verified
        assert simulate_fault_list(report.test, faults, 3).complete
        assert 2 <= report.complexity <= 12

    @given(lambda_bfes())
    @settings(max_examples=15, deadline=None)
    def test_random_lambda_faults_always_covered(self, bfe):
        faults, report = _generate_for(bfe)
        assert report.verified
        assert simulate_fault_list(report.test, faults, 3).complete

    @given(st.lists(delta_bfes(), min_size=2, max_size=3))
    @settings(max_examples=10, deadline=None)
    def test_random_fault_lists_covered(self, bfes):
        classes = [
            BFEClass(f"c{k}", (bfe,)) for k, bfe in enumerate(bfes)
        ]
        model = GenericPairFault("RANDLIST", classes)
        faults = FaultList([model])
        report = MarchTestGenerator(FAST).generate(faults)
        assert report.verified
        assert simulate_fault_list(report.test, faults, 3).complete
