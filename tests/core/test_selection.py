"""Tests for Section 5 equivalence-class selection enumeration."""

import pytest

from repro.core.selection import (
    class_candidates,
    enumerate_selections,
    selection_space_size,
)
from repro.faults import (
    CouplingInversionFault,
    FaultList,
    StuckAtFault,
    TransitionFault,
)


class TestCandidates:
    def test_cfin_class_has_two_candidates(self):
        cls = CouplingInversionFault(primitives=("up",)).classes()[0]
        candidates = class_candidates(cls)
        assert len(candidates.patterns) == 2

    def test_saf_class_candidates(self):
        cls = StuckAtFault().classes()[0]
        candidates = class_candidates(cls)
        # delta TP (0-, w1i, r1i) and lambda TP (1-, -, r1i).
        assert len(candidates.patterns) == 2


class TestEnumeration:
    def test_space_size_is_product(self):
        classes = CouplingInversionFault().classes()
        assert selection_space_size(classes) == 2 ** 4

    def test_limit_one_is_greedy(self):
        classes = CouplingInversionFault().classes()
        selections = list(enumerate_selections(classes, 1))
        assert len(selections) == 1
        assert len(selections[0].choices) == len(classes)

    def test_budget_respected(self):
        # Truncation may land under the budget, never over it.
        classes = CouplingInversionFault().classes()
        assert 1 <= len(list(enumerate_selections(classes, 5))) <= 5

    def test_full_enumeration_when_it_fits(self):
        classes = CouplingInversionFault(primitives=("up",)).classes()
        selections = list(enumerate_selections(classes, 100))
        assert len(selections) == 4  # 2 classes x 2 alternatives

    def test_shared_patterns_ranked_first(self):
        # SAF's delta TPs coincide with TF's mandatory TPs; the first
        # selection must therefore reuse them.
        faults = FaultList([StuckAtFault(), TransitionFault()])
        classes = faults.classes()
        first = next(enumerate_selections(classes, 16))
        assert first.unique_count == 2  # two shared patterns cover all four

    def test_selection_patterns_deduplicated(self):
        faults = FaultList([StuckAtFault(), TransitionFault()])
        classes = faults.classes()
        first = next(enumerate_selections(classes, 16))
        assert len(first.patterns) == first.unique_count

    def test_truncation_under_tiny_budget(self):
        classes = CouplingInversionFault().classes()
        selections = list(enumerate_selections(classes, 2))
        assert 1 <= len(selections) <= 2
