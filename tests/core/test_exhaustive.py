"""Tests for the bounded exhaustive baseline (Section 2)."""

import pytest

from repro.core.exhaustive import SearchStats, exhaustive_search
from repro.core.optimize import make_verifier
from repro.faults import FaultList


@pytest.fixture(scope="module")
def saf_verifier():
    faults = FaultList.from_names("SAF")
    return make_verifier(faults.instances(2), 2)


class TestSearch:
    def test_finds_minimal_saf_test(self, saf_verifier):
        stats = SearchStats()
        found = exhaustive_search(saf_verifier, max_complexity=5, stats=stats)
        assert found is not None
        assert found.complexity == 4  # MATS-equivalent is minimal
        assert stats.candidates_tested > 0

    def test_respects_max_complexity(self, saf_verifier):
        found = exhaustive_search(saf_verifier, max_complexity=3)
        assert found is None

    def test_min_complexity_skips_small_bounds(self, saf_verifier):
        stats = SearchStats()
        found = exhaustive_search(
            saf_verifier, max_complexity=5, min_complexity=4, stats=stats
        )
        assert found is not None and found.complexity == 4

    def test_budget_cuts_off(self, saf_verifier):
        stats = SearchStats()
        found = exhaustive_search(
            saf_verifier, max_complexity=8, budget=3, stats=stats
        )
        assert found is None
        assert stats.candidates_tested == 4  # budget + the overflow probe

    def test_saf_tf_needs_five(self):
        faults = FaultList.from_names("SAF", "TF")
        verify = make_verifier(faults.instances(2), 2)
        found = exhaustive_search(verify, max_complexity=5)
        assert found is not None
        assert found.complexity == 5

    def test_found_tests_are_verified(self, saf_verifier):
        found = exhaustive_search(saf_verifier, max_complexity=5)
        assert saf_verifier(found)
