"""Tests for the generation report object."""

from repro.core.report import GenerationReport
from repro.march.catalog import MATS, MARCH_C_MINUS
from repro.sequence.gts import GlobalTestSequence


def make(**overrides):
    defaults = dict(
        test=MATS,
        fault_names=("SAF",),
        elapsed_seconds=0.5,
        verified=True,
    )
    defaults.update(overrides)
    return GenerationReport(**defaults)


class TestReport:
    def test_complexity_delegates(self):
        report = make(test=MARCH_C_MINUS)
        assert report.complexity == 10
        assert report.complexity_label == "10n"

    def test_summary_core_fields(self):
        text = make().summary()
        assert "SAF" in text
        assert "4n" in text
        assert "0.500s" in text
        assert "verified   : True" in text

    def test_summary_optional_fields(self):
        report = make(
            non_redundant=True,
            equivalent_known="MATS (4n)",
            tpg_size=2,
            selections_explored=3,
            selection_space=4,
            used_repair=True,
        )
        text = report.summary()
        assert "non-redundant : True" in text
        assert "MATS (4n)" in text
        assert "selections 3/4" in text
        assert "repair fallback" in text

    def test_notes_appended(self):
        report = make()
        report.notes.append("something noteworthy")
        assert "something noteworthy" in report.summary()

    def test_gts_provenance(self):
        report = make(gts=GlobalTestSequence([]), tour=(0, 1))
        assert report.gts is not None
        assert report.tour == (0, 1)
