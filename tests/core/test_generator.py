"""End-to-end generator tests: the paper's Table 3."""

import pytest

from repro.core import (
    GenerationError,
    GeneratorConfig,
    MarchTestGenerator,
    generate_march_test,
)
from repro.core.optimize import make_verifier
from repro.faults import FaultList, UserDefinedFault
from repro.simulator.faultsim import simulate_fault_list


def generate(*names, **config_kwargs):
    config = GeneratorConfig(**config_kwargs) if config_kwargs else None
    return generate_march_test(*names, config=config)


class TestTable3:
    """Every row of the paper's Table 3, complexity-exact."""

    def test_row1_saf(self):
        report = generate("SAF")
        assert report.complexity == 4
        assert report.verified
        assert report.equivalent_known.startswith("MATS")

    def test_row2_saf_tf(self):
        report = generate("SAF", "TF")
        assert report.complexity == 5
        assert report.verified

    def test_row3_saf_tf_adf(self):
        report = generate("SAF", "TF", "ADF")
        assert report.complexity == 6
        assert report.verified
        assert "MATS++" in (report.equivalent_known or "")

    def test_row4_march_x_class(self):
        report = generate("SAF", "TF", "ADF", "CFIN")
        assert report.complexity == 6
        assert report.verified
        assert "MarchX" in (report.equivalent_known or "")

    def test_row5_march_c_minus_class(self):
        report = generate("SAF", "TF", "ADF", "CFIN", "CFID")
        assert report.complexity == 10
        assert report.verified
        assert "MarchC-" in (report.equivalent_known or "")

    def test_row6_cfin_only(self):
        report = generate("CFIN")
        assert report.complexity == 5  # the paper's "Not Found" row
        assert report.verified


class TestReportInvariants:
    def test_generated_test_detects_its_fault_list(self):
        faults = FaultList.from_names("SAF", "TF")
        report = MarchTestGenerator().generate(faults)
        assert simulate_fault_list(report.test, faults, 3).complete

    def test_non_redundancy_reported(self):
        report = generate("SAF")
        assert report.non_redundant is True

    def test_timings_recorded(self):
        report = generate("SAF")
        assert report.elapsed_seconds > 0
        assert report.complexity_label.endswith("n")

    def test_summary_renders(self):
        report = generate("SAF")
        text = report.summary()
        assert "march test" in text and "4n" in text

    def test_selection_space_tracked(self):
        report = generate("SAF")
        assert report.selection_space >= report.selections_explored >= 1
        assert report.tpg_size >= 1


class TestConfigurations:
    def test_without_equivalence_enumeration(self):
        report = generate("SAF", equivalence_enumeration=False)
        assert report.verified
        assert report.selections_explored == 1

    def test_without_start_preference(self):
        report = generate("SAF", "TF", prefer_uniform_start=False)
        assert report.verified
        assert report.complexity <= 6

    def test_without_tighten(self):
        report = generate(
            "SAF", tighten=False, polish=False, canonicalize_orders=False
        )
        assert report.verified  # possibly longer, still correct

    def test_without_polish(self):
        report = generate("CFIN", polish=False)
        assert report.verified

    def test_redundancy_check_optional(self):
        report = generate("SAF", check_redundancy=False)
        assert report.non_redundant is None


class TestFurtherFaultModels:
    @pytest.mark.parametrize(
        "names, max_complexity",
        [
            (("RDF",), 4),
            (("IRF",), 4),
            (("WDF",), 6),
            (("DRDF",), 8),
            (("SOF",), 4),
            (("CFST",), 8),
        ],
    )
    def test_single_model_generation(self, names, max_complexity):
        report = generate(*names)
        assert report.verified
        assert report.complexity <= max_complexity

    def test_retention_fault_needs_delay(self):
        report = generate("DRF")
        assert report.verified
        from repro.march.element import DelayElement

        assert any(
            isinstance(e, DelayElement) for e in report.test.elements
        )


class TestErrors:
    def test_empty_fault_list(self):
        with pytest.raises(GenerationError):
            MarchTestGenerator().generate(FaultList([]))

    def test_fault_without_instances(self):
        from repro.faults import BFEClass, delta_bfe
        from repro.memory.operations import write
        from repro.memory.state import MemoryState

        bfe = delta_bfe(
            MemoryState.parse("0-"), write("i", 1), MemoryState.parse("0-")
        )
        model = UserDefinedFault(
            "NOSIM", [BFEClass("c", (bfe,), cell_symmetric=True)]
        )
        with pytest.raises(GenerationError):
            MarchTestGenerator().generate(FaultList([model]))
