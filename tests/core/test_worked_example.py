"""The paper's Section 4 worked example, end to end.

Fault list {<up,1>, <up,0>} (idempotent coupling, up transitions):
four test patterns, a 12-operation GTS along the optimal tour, and a
non-redundant 8n March test.
"""

import pytest

from repro.core import GeneratorConfig, MarchTestGenerator
from repro.faults import CouplingIdempotentFault, FaultList
from repro.march.test import parse_march
from repro.simulator.coverage import is_non_redundant
from repro.simulator.faultsim import simulate_fault_list


@pytest.fixture(scope="module")
def faults():
    return FaultList(
        [CouplingIdempotentFault(primitives=("up",), values=(0, 1))]
    )


@pytest.fixture(scope="module")
def report(faults):
    return MarchTestGenerator().generate(faults)


class TestWorkedExample:
    def test_complexity_matches_paper(self, report):
        assert report.complexity == 8  # the paper's 8n result

    def test_verified_and_non_redundant(self, report):
        assert report.verified
        assert report.non_redundant

    def test_tpg_has_four_patterns(self, report):
        assert report.tpg_size == 4

    def test_gts_is_twelve_operations(self, report):
        assert report.gts is not None
        assert report.gts.length == 12

    def test_detects_all_instances_on_larger_memory(self, report, faults):
        assert simulate_fault_list(report.test, faults, 4).complete

    def test_papers_own_test_also_passes_our_simulator(self, faults):
        paper = parse_march(
            "{up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1)}",
            "paper-8n",
        )
        assert simulate_fault_list(paper, faults, 3).complete
        assert is_non_redundant(paper, faults.instances(3), 3)

    def test_paper_test_and_ours_are_equally_long(self, report, faults):
        paper = parse_march(
            "{up(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1)}"
        )
        assert report.complexity == paper.complexity
