"""Tests for the simulation-checked optimizer."""

import pytest

from repro.core.optimize import (
    canonicalize_orders,
    make_verifier,
    optimize,
    tighten,
)
from repro.faults import FaultList
from repro.march.catalog import MARCH_C, MARCH_C_MINUS, MATS
from repro.march.element import AddressOrder
from repro.march.test import parse_march


@pytest.fixture(scope="module")
def saf_verifier():
    faults = FaultList.from_names("SAF")
    return make_verifier(faults.instances(2), 2)


class TestVerifier:
    def test_accepts_covering_test(self, saf_verifier):
        assert saf_verifier(MATS)

    def test_rejects_malformed(self, saf_verifier):
        assert not saf_verifier(parse_march("{any(w0); any(r1)}"))

    def test_rejects_non_covering(self, saf_verifier):
        assert not saf_verifier(parse_march("{any(w0); any(r0)}"))


class TestTighten:
    def test_removes_padding(self, saf_verifier):
        padded = parse_march("{any(w0); any(r0); any(w0); any(w1); any(r1)}")
        slim = tighten(padded, saf_verifier)
        assert slim.complexity == 4
        assert saf_verifier(slim)

    def test_march_c_loses_redundant_read(self):
        # The optimizer rediscovers March C- from March C.
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        verify = make_verifier(faults.instances(2), 2)
        slim = tighten(MARCH_C, verify)
        assert slim.complexity == MARCH_C_MINUS.complexity == 10

    def test_already_minimal_unchanged(self, saf_verifier):
        assert tighten(MATS, saf_verifier).complexity == MATS.complexity


class TestCanonicalize:
    def test_relaxes_order_insensitive_elements(self, saf_verifier):
        concrete = parse_march("{up(w0); up(r0,w1); up(r1)}")
        relaxed = canonicalize_orders(concrete, saf_verifier)
        assert all(
            e.order is AddressOrder.ANY for e in relaxed.march_elements
        )

    def test_keeps_load_bearing_orders(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        verify = make_verifier(faults.instances(2), 2)
        relaxed = canonicalize_orders(MARCH_C_MINUS, verify)
        orders = [e.order for e in relaxed.march_elements]
        # March C- needs its up/down structure for coupling faults.
        assert AddressOrder.UP in orders or AddressOrder.DOWN in orders

    def test_optimize_composes(self, saf_verifier):
        padded = parse_march("{up(w0); up(r0); up(w1); up(r1); up(r1)}")
        out = optimize(padded, saf_verifier)
        assert out.complexity == 4
        assert saf_verifier(out)
