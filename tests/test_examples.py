"""Integration smoke tests: every example script runs to completion.

The slow full-table script is exercised through its building blocks
elsewhere (tests/core/test_generator.py); here it runs with a trimmed
row set via its importable pieces.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.parametrize(
    "name",
    [
        "quickstart",
        "tpg_exploration",
        "custom_fault_model",
        "word_oriented",
        "fault_diagnosis",
    ],
)
def test_example_runs(name, capsys):
    module = load(name)
    if hasattr(module, "main"):
        module.main()
    out = capsys.readouterr().out
    assert out.strip()


def test_fault_simulation_example(capsys):
    module = load("fault_simulation")
    module.main()
    out = capsys.readouterr().out
    assert "MarchC-" in out and "yes" in out


def test_escape_study_example(capsys):
    module = load("escape_study")
    module.TRIALS = 60  # trim the Monte Carlo for CI speed
    module.main()
    out = capsys.readouterr().out
    assert "escape rate" in out


def test_linked_faults_example(capsys):
    module = load("linked_faults")
    module.main()
    out = capsys.readouterr().out
    assert "MarchA" in out


def test_reproduce_table3_structure():
    # Import without running main (full run is covered by benchmarks).
    module = load("reproduce_table3")
    assert len(module.PAPER_ROWS) == 6
    complexities = [row[1] for row in module.PAPER_ROWS]
    assert complexities == [4, 5, 6, 6, 10, 5]
