"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestGenerate:
    def test_saf(self, capsys):
        assert main(["generate", "SAF"]) == 0
        out = capsys.readouterr().out
        assert "4n" in out and "verified   : True" in out

    def test_flags(self, capsys):
        code = main([
            "generate", "SAF", "--no-equivalence", "--no-polish",
            "--selection-limit", "4",
        ])
        assert code == 0

    def test_unknown_fault(self):
        with pytest.raises(KeyError):
            main(["generate", "NOPE"])


class TestSimulate:
    def test_catalog_name(self, capsys):
        assert main(["simulate", "MATS", "SAF"]) == 0
        assert "full" in capsys.readouterr().out

    def test_notation_literal(self, capsys):
        assert main(["simulate", "{any(w0); any(r0,w1); any(r1)}", "SAF"]) == 0

    def test_incomplete_coverage_fails(self, capsys):
        assert main(["simulate", "MATS", "TF"]) == 1


class TestListings:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "MATS" in out and "MarchC-" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "SAF" in out and "BFE classes" in out


class TestDot:
    def test_m0(self, capsys):
        assert main(["dot", "m0"]) == 0
        assert capsys.readouterr().out.startswith("digraph M0")

    def test_tpg(self, capsys):
        assert main(["dot", "tpg", "CFIN"]) == 0
        assert "digraph TPG" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_march_c_minus(self, capsys):
        assert main(["analyze", "MarchC-", "SAF", "TF"]) == 0
        out = capsys.readouterr().out
        assert "covers all cases : True" in out
        assert "block analysis" in out

    def test_analyze_flags_redundancy(self, capsys):
        assert main(["analyze", "MarchC", "SAF", "TF", "CFIN", "CFID"]) == 0
        out = capsys.readouterr().out
        assert "redundant" in out


class TestDiagnose:
    def test_diagnose_saf(self, capsys):
        assert main(["diagnose", "MATS", "SAF"]) == 0
        out = capsys.readouterr().out
        assert "unique resolution  : 100%" in out

    def test_diagnose_reports_misses(self, capsys):
        assert main(["diagnose", "MATS", "TF"]) == 1
        assert "undetected" in capsys.readouterr().out


class TestExport:
    def test_export_asm(self, capsys):
        assert main(["export", "MATS"]) == 0
        assert "FOR a =" in capsys.readouterr().out

    def test_export_csv(self, capsys):
        assert main(["export", "MATS", "--format", "csv", "--size", "2"]) == 0
        assert "index,op,address,data" in capsys.readouterr().out

    def test_export_latex(self, capsys):
        assert main(["export", "MATS", "--format", "latex"]) == 0
        assert r"\Updownarrow" in capsys.readouterr().out
