"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestGenerate:
    def test_saf(self, capsys):
        assert main(["generate", "SAF"]) == 0
        out = capsys.readouterr().out
        assert "4n" in out and "verified   : True" in out

    def test_flags(self, capsys):
        code = main([
            "generate", "SAF", "--no-equivalence", "--no-polish",
            "--selection-limit", "4",
        ])
        assert code == 0

    def test_unknown_fault(self):
        with pytest.raises(KeyError):
            main(["generate", "NOPE"])


class TestSimulate:
    def test_catalog_name(self, capsys):
        assert main(["simulate", "MATS", "SAF"]) == 0
        assert "full" in capsys.readouterr().out

    def test_notation_literal(self, capsys):
        assert main(["simulate", "{any(w0); any(r0,w1); any(r1)}", "SAF"]) == 0

    def test_incomplete_coverage_fails(self, capsys):
        assert main(["simulate", "MATS", "TF"]) == 1


class TestStoreFlags:
    def test_simulate_populates_then_reads_the_store(self, capsys, tmp_path):
        store = tmp_path / "dict.sqlite"
        args = ["simulate", "MarchC-", "SAF", "TF",
                "--store", str(store), "--sim-stats"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "writes" in first and store.exists()
        # Second invocation: a brand-new process would behave the same
        # way -- cold LRU, warm store, zero backend tasks.
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "served no tasks" in second
        assert ", 0 writes" in second  # anchored: "10 writes" must fail

    def test_store_readonly_missing_file_errors(self, tmp_path):
        from repro.store import StoreError

        with pytest.raises(StoreError, match="does not exist"):
            main(["simulate", "MATS", "SAF",
                  "--store", str(tmp_path / "absent.sqlite"),
                  "--store-readonly"])

    def test_backend_defaults_to_bitparallel(self, capsys):
        assert main(["simulate", "MATS", "SAF", "--sim-stats"]) == 0
        assert "backend [bitparallel]" in capsys.readouterr().out

    def test_serial_backend_still_selectable(self, capsys):
        assert main(["simulate", "MATS", "SAF", "--backend", "serial",
                     "--sim-stats"]) == 0
        assert "backend [serial]" in capsys.readouterr().out

    def test_generate_accepts_store(self, capsys, tmp_path):
        store = tmp_path / "gen.sqlite"
        assert main(["generate", "SAF", "--no-polish",
                     "--store", str(store), "--sim-stats"]) == 0
        assert store.exists()
        assert "store [gen.sqlite]" in capsys.readouterr().out


class TestCampaign:
    def test_campaign_runs_and_writes_manifest(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-smoke",
            "tests": ["MATS", "MarchC-"],
            "faults": ["SAF", "TF"],
            "sizes": [3],
            "backends": ["bitparallel"],
        }))
        manifest_path = tmp_path / "manifest.json"
        store = tmp_path / "dict.sqlite"
        assert main(["campaign", str(spec), "--store", str(store),
                     "--manifest", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "campaign 'cli-smoke'" in out
        assert f"wrote {manifest_path}" in out
        manifest = json.loads(manifest_path.read_text())
        assert manifest["totals"]["results"] == 2
        assert store.exists()

    def test_campaign_rejects_bad_spec(self, tmp_path):
        from repro.store.campaign import CampaignSpecError

        spec = tmp_path / "bad.json"
        spec.write_text(json.dumps({"name": "x", "tests": ["MATS"]}))
        with pytest.raises(CampaignSpecError):
            main(["campaign", str(spec)])

    def test_campaign_jobs_fans_out_with_live_progress(
        self, capsys, tmp_path
    ):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-fanout",
            "tests": ["MATS", "MarchC-"],
            "faults": ["SAF"],
            "backends": ["bitparallel", "serial"],
        }))
        manifest_path = tmp_path / "manifest.json"
        assert main(["campaign", str(spec), "--jobs", "2",
                     "--store", str(tmp_path / "dict.sqlite"),
                     "--manifest", str(manifest_path)]) == 0
        out = capsys.readouterr().out
        assert "[4/4]" in out  # live per-job progress lines
        manifest = json.loads(manifest_path.read_text())
        assert manifest["parallel"] == {
            "jobs": 2, "mode": "shared", "shard_merge": None,
        }
        assert manifest["totals"]["jobs"] == 4

    def test_campaign_failed_job_sets_exit_code(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-crash",
            "tests": ["MATS", "{bogus"],
            "faults": ["SAF"],
        }))
        assert main(["campaign", str(spec),
                     "--manifest", str(tmp_path / "m.json")]) == 1
        out = capsys.readouterr().out
        assert "FAILED" in out and "ValueError" in out

    def test_campaign_shard_mode(self, capsys, tmp_path):
        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "name": "cli-shard",
            "tests": ["MATS"],
            "faults": ["SAF"],
        }))
        store = tmp_path / "dict.sqlite"
        assert main(["campaign", str(spec), "--jobs", "2", "--shard",
                     "--store", str(store),
                     "--manifest", str(tmp_path / "m.json")]) == 0
        assert store.exists()
        assert not list(tmp_path.glob("dict.sqlite.shard-*"))


class TestStoreSubcommand:
    def populate(self, tmp_path):
        store = tmp_path / "dict.sqlite"
        assert main(["simulate", "MarchC-", "SAF", "TF",
                     "--store", str(store)]) in (0, 1)
        return store

    def test_stats(self, capsys, tmp_path):
        store = self.populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "stats", str(store)]) == 0
        out = capsys.readouterr().out
        assert "schema 2" in out and "rows" in out

    def test_stats_json(self, capsys, tmp_path):
        store = self.populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "stats", str(store), "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["rows"] > 0
        assert stats["by_domain"] == {"sp": stats["rows"]}

    def test_compact(self, capsys, tmp_path):
        store = self.populate(tmp_path)
        capsys.readouterr()
        assert main(["store", "compact", str(store),
                     "--max-rows", "5", "--json"]) == 0
        stats = json.loads(capsys.readouterr().out)
        assert stats["rows_after"] == 5
        assert main(["store", "stats", str(store), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["rows"] == 5

    def test_merge(self, capsys, tmp_path):
        first = self.populate(tmp_path)
        second_dir = tmp_path / "second"
        second_dir.mkdir()
        second = self.populate(second_dir)
        dest = tmp_path / "merged.sqlite"
        capsys.readouterr()
        assert main(["store", "merge", str(dest), str(first),
                     str(second)]) == 0
        out = capsys.readouterr().out
        assert "merged 2 sources" in out
        assert main(["store", "stats", str(dest), "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["rows"] > 0


class TestListings:
    def test_catalog(self, capsys):
        assert main(["catalog"]) == 0
        out = capsys.readouterr().out
        assert "MATS" in out and "MarchC-" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "SAF" in out and "BFE classes" in out


class TestDot:
    def test_m0(self, capsys):
        assert main(["dot", "m0"]) == 0
        assert capsys.readouterr().out.startswith("digraph M0")

    def test_tpg(self, capsys):
        assert main(["dot", "tpg", "CFIN"]) == 0
        assert "digraph TPG" in capsys.readouterr().out


class TestAnalyze:
    def test_analyze_march_c_minus(self, capsys):
        assert main(["analyze", "MarchC-", "SAF", "TF"]) == 0
        out = capsys.readouterr().out
        assert "covers all cases : True" in out
        assert "block analysis" in out

    def test_analyze_flags_redundancy(self, capsys):
        assert main(["analyze", "MarchC", "SAF", "TF", "CFIN", "CFID"]) == 0
        out = capsys.readouterr().out
        assert "redundant" in out


class TestDiagnose:
    def test_diagnose_saf(self, capsys):
        assert main(["diagnose", "MATS", "SAF"]) == 0
        out = capsys.readouterr().out
        assert "unique resolution  : 100%" in out

    def test_diagnose_reports_misses(self, capsys):
        assert main(["diagnose", "MATS", "TF"]) == 1
        assert "undetected" in capsys.readouterr().out


class TestExport:
    def test_export_asm(self, capsys):
        assert main(["export", "MATS"]) == 0
        assert "FOR a =" in capsys.readouterr().out

    def test_export_csv(self, capsys):
        assert main(["export", "MATS", "--format", "csv", "--size", "2"]) == 0
        assert "index,op,address,data" in capsys.readouterr().out

    def test_export_latex(self, capsys):
        assert main(["export", "MATS", "--format", "latex"]) == 0
        assert r"\Updownarrow" in capsys.readouterr().out
