"""Tests for test-pattern derivation (paper, f.2.3 and Section 4)."""

import pytest

from repro.faults import CouplingIdempotentFault, FaultList, StuckAtFault
from repro.faults.bfe import delta_bfe, lambda_bfe
from repro.memory.operations import read, wait, write
from repro.memory.state import MemoryState
from repro.patterns.test_pattern import TestPattern, patterns_for_bfe


def state(text):
    return MemoryState.parse(text)


class TestPaperExamples:
    """Section 3's <up,0> example: TP1 = (01, w1i, r1j), TP2 = (10, w1j, r1i)."""

    def test_cfid_up0_patterns(self):
        fault = CouplingIdempotentFault(primitives=("up",), values=(0,))
        tps = []
        for cls in fault.classes():
            for member in cls.members:
                tps.extend(patterns_for_bfe(member))
        texts = {str(tp) for tp in tps}
        assert texts == {"(01, w1i, r1j)", "(10, w1j, r1i)"}

    def test_cfid_up1_patterns(self):
        fault = CouplingIdempotentFault(primitives=("up",), values=(1,))
        tps = []
        for cls in fault.classes():
            for member in cls.members:
                tps.extend(patterns_for_bfe(member))
        texts = {str(tp) for tp in tps}
        # The paper's TP3 = (00, w1i, r0j) and TP4 = (00, w1j, r0i).
        assert texts == {"(00, w1i, r0j)", "(00, w1j, r0i)"}


class TestDerivation:
    def test_lambda_pattern_has_no_excitation(self):
        bfe = lambda_bfe(state("1-"), read("i"), 0, "SA0")
        (tp,) = patterns_for_bfe(bfe)
        assert tp.excite is None
        assert str(tp.observe) == "r1i"

    def test_lambda_with_unknown_good_value_rejected(self):
        bfe = lambda_bfe(state("-0"), read("i"), 0)
        with pytest.raises(ValueError):
            patterns_for_bfe(bfe)

    def test_delta_pattern_per_deviating_cell(self):
        # A deviation corrupting both cells yields two observation
        # alternatives.
        bfe = delta_bfe(state("00"), write("i", 1), state("01"))
        tps = patterns_for_bfe(bfe)
        observes = {str(tp.observe) for tp in tps}
        assert observes == {"r1i", "r0j"}

    def test_destructive_read_excitation_is_verifying(self):
        bfe = delta_bfe(state("0-"), read("i"), state("1-"), "DRDF")
        (tp,) = patterns_for_bfe(bfe)
        assert tp.excite.is_verifying_read
        assert tp.excite.value == 0

    def test_unobservable_delta_rejected(self):
        bfe = delta_bfe(state("0-"), write("i", 0), state("0-"))
        with pytest.raises(ValueError):
            patterns_for_bfe(bfe)

    def test_observe_must_be_verifying(self):
        with pytest.raises(ValueError):
            TestPattern(state("00"), write("i", 1), read("j"))


class TestGeometry:
    def test_observation_state_applies_excitation(self):
        tp = TestPattern(state("01"), write("i", 1), read("j", 1))
        assert str(tp.observation_state) == "11"

    def test_observation_state_without_excitation(self):
        tp = TestPattern(state("10"), None, read("i", 1))
        assert str(tp.observation_state) == "10"

    def test_wait_excitation_keeps_state(self):
        tp = TestPattern(state("1-"), wait(), read("i", 1))
        assert str(tp.observation_state) == "1-"

    def test_setup_cost_matches_f41(self):
        tp = TestPattern(state("00"), write("i", 1), read("j", 0))
        assert tp.setup_cost(state("11")) == 2
        assert tp.setup_cost(state("01")) == 1
        assert tp.setup_cost(state("00")) == 0

    def test_setup_cost_from_power_up(self):
        tp = TestPattern(state("0-"), write("i", 1), read("i", 1))
        assert tp.setup_cost(state("--")) == 1

    def test_setup_operations_reach_init(self):
        tp = TestPattern(state("01"), write("i", 1), read("j", 1))
        result = state("10")
        for op in tp.setup_operations(state("10")):
            result = result.apply(op)
        assert tp.init.matches(result)

    def test_key_identity(self):
        a = TestPattern(state("01"), write("i", 1), read("j", 1))
        b = TestPattern(state("01"), write("i", 1), read("j", 1), label="x")
        assert a.key() == b.key()

    def test_operations_body(self):
        tp = TestPattern(state("01"), write("i", 1), read("j", 1))
        assert [str(op) for op in tp.operations] == ["w1i", "r1j"]
        tp2 = TestPattern(state("1-"), None, read("i", 1))
        assert [str(op) for op in tp2.operations] == ["r1i"]
