"""Tests for the Test Pattern Graph (Figure 4, f.4.1, f.4.2)."""

import math

import pytest

from repro.faults import CouplingIdempotentFault
from repro.memory.operations import read, write
from repro.memory.state import MemoryState
from repro.patterns.test_pattern import TestPattern, patterns_for_bfe
from repro.patterns.tpg import TestPatternGraph


def state(text):
    return MemoryState.parse(text)


@pytest.fixture
def figure4_tpg():
    """The TPG of Figure 4: fault list {<up,1>, <up,0>}."""
    fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))
    graph = TestPatternGraph()
    for cls in fault.classes():
        for member in cls.members:
            for tp in patterns_for_bfe(member):
                graph.add(tp, cls.name)
    return graph


class TestFigure4:
    def test_four_nodes(self, figure4_tpg):
        assert len(figure4_tpg) == 4

    def test_gts_count_is_v_factorial(self, figure4_tpg):
        # f.4.2: #GTS = V!
        assert figure4_tpg.gts_count() == math.factorial(4) == 24

    def test_zero_weight_edges_exist(self, figure4_tpg):
        # Figure 4 shows 0-weight edges, e.g. TP3 -> TP2 in the paper's
        # numbering (observation state 10 equals the next init).
        matrix = figure4_tpg.weight_matrix()
        zero_offdiag = sum(
            1
            for r in range(4)
            for c in range(4)
            if r != c and matrix[r][c] == 0
        )
        assert zero_offdiag == 2

    def test_weights_match_hamming(self, figure4_tpg):
        nodes = {str(n.pattern): k for k, n in enumerate(figure4_tpg.nodes)}
        tp1 = nodes["(01, w1i, r1j)"]
        tp2 = nodes["(10, w1j, r1i)"]
        tp3 = nodes["(00, w1i, r0j)"]
        tp4 = nodes["(00, w1j, r0i)"]
        w = figure4_tpg.weight
        # Observation states: TP1 -> 11, TP2 -> 11, TP3 -> 10, TP4 -> 01.
        assert w(tp1, tp2) == 1
        assert w(tp3, tp2) == 0
        assert w(tp4, tp1) == 0
        assert w(tp1, tp3) == 2
        assert w(tp2, tp4) == 2

    def test_weight_diagonal_zero(self, figure4_tpg):
        matrix = figure4_tpg.weight_matrix()
        assert all(matrix[k][k] == 0 for k in range(4))

    def test_start_weights(self, figure4_tpg):
        # Starting costs from power-up equal the concrete init size.
        starts = [figure4_tpg.start_weight(k) for k in range(4)]
        assert sorted(starts) == [2, 2, 2, 2]

    def test_classes_covered(self, figure4_tpg):
        assert len(figure4_tpg.classes_covered()) == 4


class TestDeduplication:
    def test_identical_patterns_merge(self):
        graph = TestPatternGraph()
        tp = TestPattern(state("01"), write("i", 1), read("j", 1))
        same = TestPattern(state("01"), write("i", 1), read("j", 1), label="dup")
        node_a = graph.add(tp, "classA")
        node_b = graph.add(same, "classB")
        assert node_a is node_b
        assert len(graph) == 1
        assert node_a.covers == {"classA", "classB"}

    def test_from_patterns_with_covers(self):
        tp1 = TestPattern(state("01"), write("i", 1), read("j", 1))
        tp2 = TestPattern(state("10"), write("j", 1), read("i", 1))
        graph = TestPatternGraph.from_patterns([tp1, tp2], ["a", "b"])
        assert len(graph) == 2
        assert graph.nodes[0].covers == {"a"}


class TestPathMatrix:
    def test_depot_augmentation(self, figure4_tpg):
        matrix, depot, size = figure4_tpg.path_matrix()
        assert size == len(figure4_tpg) + 1
        assert depot == len(figure4_tpg)
        # Returning to the depot is free; leaving it costs the start
        # setup.
        assert all(matrix[r][depot] == 0 for r in range(len(figure4_tpg)))
        assert matrix[depot][:4] == [
            figure4_tpg.start_weight(k) for k in range(4)
        ]

    def test_dash_start_weight(self):
        graph = TestPatternGraph()
        graph.add(TestPattern(state("1-"), None, read("i", 1)))
        assert graph.start_weight(0) == 1


class TestWeightModes:
    def test_uniform_mode_flattens_costs(self):
        from repro.faults import CouplingIdempotentFault
        from repro.patterns.test_pattern import patterns_for_bfe

        fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))
        graph = TestPatternGraph(weight_mode="uniform")
        for cls in fault.classes():
            for member in cls.members:
                for tp in patterns_for_bfe(member):
                    graph.add(tp, cls.name)
        weights = {
            graph.weight(r, c)
            for r in range(len(graph))
            for c in range(len(graph))
            if r != c
        }
        assert weights <= {0, 1}

    def test_unknown_mode_rejected(self):
        graph = TestPatternGraph(weight_mode="euclid")
        graph.add(TestPattern(state("00"), write("i", 1), read("j", 0)))
        graph.add(TestPattern(state("10"), write("j", 1), read("i", 1)))
        with pytest.raises(ValueError):
            graph.weight(0, 1)
