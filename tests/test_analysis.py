"""Tests for the comparative analysis helpers."""

import pytest

from repro.analysis import (
    compare,
    coverage_report,
    dominates,
    minimal_certificate,
)
from repro.faults import FaultList
from repro.march.catalog import MARCH_C_MINUS, MARCH_X, MATS, MSCAN


class TestCoverageReport:
    def test_full_coverage(self, saf_list):
        report = coverage_report(MATS, saf_list)
        assert report.complete_models == ("SAF",)
        assert "full" in str(report)

    def test_partial_coverage(self, saf_tf_list):
        report = coverage_report(MATS, saf_tf_list)
        models = {m.model: m for m in report.models}
        assert models["SAF"].complete
        assert not models["TF"].complete
        assert 0 < models["TF"].ratio < 1

    def test_compare_shapes(self, saf_list):
        table = compare([MATS, MSCAN], saf_list)
        assert set(table) == {"MATS", "MSCAN"}


class TestDominance:
    def test_march_c_minus_dominates_march_x_on_row5(self):
        faults = FaultList.from_names("CFIN", "CFID")
        # March C- covers a superset but is longer: no dominance.
        assert not dominates(MARCH_C_MINUS, MARCH_X, faults)

    def test_equal_tests_dominate_each_other(self, saf_list):
        assert dominates(MATS, MATS, saf_list)

    def test_mats_dominates_mscan_on_saf(self, saf_list):
        # Same complexity, MATS detects everything MSCAN does.
        assert dominates(MATS, MSCAN, saf_list)

    def test_shorter_coverage_loss_breaks_dominance(self):
        faults = FaultList.from_names("SAF", "TF", "ADF", "CFIN", "CFID")
        assert not dominates(MARCH_X, MARCH_C_MINUS, faults)


class TestMinimalityCertificate:
    def test_mats_is_minimal_for_saf(self, saf_list):
        certificate = minimal_certificate(MATS, saf_list)
        assert certificate.is_minimal
        assert certificate.exhausted
        assert "minimal" in str(certificate)

    def test_non_minimal_detected(self, saf_list):
        from repro.march.test import parse_march

        padded = parse_march(
            "{any(w0); any(r0); any(r0); any(w1); any(r1)}", "padded"
        )
        certificate = minimal_certificate(padded, saf_list)
        assert not certificate.is_minimal
        assert certificate.shorter_test is not None
        assert certificate.shorter_test.complexity < padded.complexity

    def test_rejects_non_covering_test(self, saf_tf_list):
        with pytest.raises(ValueError):
            minimal_certificate(MSCAN, saf_tf_list)
