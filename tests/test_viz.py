"""Tests for the DOT renderers (Figures 1-4)."""

from repro.faults.bfe import delta_bfe, lambda_bfe
from repro.memory.mealy import good_machine
from repro.memory.operations import read, write
from repro.memory.state import MemoryState
from repro.patterns.test_pattern import TestPattern
from repro.patterns.tpg import TestPatternGraph
from repro.viz import bfe_dot, mealy_dot, tpg_dot


def state(text):
    return MemoryState.parse(text)


class TestMealyDot:
    def test_figure1_shape(self, m0):
        dot = mealy_dot(m0, "M0")
        assert dot.startswith("digraph M0 {")
        assert dot.rstrip().endswith("}")
        # The four concrete states appear as nodes.
        for s in ("00", "01", "10", "11"):
            assert f'"{s}"' in dot

    def test_parallel_edges_folded(self, m0):
        dot = mealy_dot(m0)
        # Self-loop on 00 groups w0i, w0j and T with output '-'.
        assert "(T, w0i, w0j) / -" in dot

    def test_unknown_states_excluded_by_default(self, m0):
        dot = mealy_dot(m0)
        assert '"--"' not in dot
        assert '"--"' in mealy_dot(m0, include_unknown_states=True)


class TestBfeDot:
    def test_delta_bfe_shows_faulty_and_good_edges(self):
        bfe = delta_bfe(state("01"), write("i", 1), state("-0"))
        dot = bfe_dot(bfe)
        assert '"01" -> "10"' in dot      # faulty edge (Figure 3)
        assert '"01" -> "11"' in dot      # dashed good edge
        assert "color=red" in dot

    def test_lambda_bfe_self_loop(self):
        bfe = lambda_bfe(state("10"), read("i"), 0)
        dot = bfe_dot(bfe)
        assert '"10" -> "10"' in dot
        assert "/ 0" in dot

    def test_lifted_bfe_renders_all_completions(self):
        bfe = delta_bfe(state("0-"), write("i", 1), state("0-"))
        dot = bfe_dot(bfe)
        assert '"00"' in dot and '"01"' in dot


class TestTpgDot:
    def test_weights_and_zero_edge_highlight(self):
        graph = TestPatternGraph()
        graph.add(TestPattern(state("00"), write("i", 1), read("j", 0)))
        graph.add(TestPattern(state("10"), write("j", 1), read("i", 1)))
        dot = tpg_dot(graph)
        assert "tp0 -> tp1" in dot and "tp1 -> tp0" in dot
        assert "color=blue" in dot  # the 0-weight edge stands out
        assert "TP1" in dot and "TP2" in dot
