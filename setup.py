"""Packaging for the repro March-test generator.

The package tree lives under ``src/``; NumPy is deliberately an
optional extra (``fast``): the pure-Python engines cover every feature,
the ``bitparallel-np`` lane-tiled backend merely runs them faster.

    pip install -e .[fast,dev]
"""

import re
from pathlib import Path

from setuptools import find_packages, setup

_INIT = Path(__file__).parent / "src" / "repro" / "__init__.py"
VERSION = re.search(
    r'^__version__ = "([^"]+)"', _INIT.read_text(), re.MULTILINE
).group(1)

setup(
    name="repro-march",
    version=VERSION,
    description=(
        "Automatic generation of March tests for RAM testing"
        " (reproduction of Benso et al., DATE 2002)"
    ),
    long_description=(Path(__file__).parent / "README.md").read_text(),
    long_description_content_type="text/markdown",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=[],
    extras_require={
        # The lane-tiled 'bitparallel-np' simulation backend; without
        # it the kernel degrades to the pure-Python 'bitparallel'
        # engine with a one-line warning.
        "fast": ["numpy>=1.24"],
        "dev": ["pytest>=7", "pytest-benchmark", "hypothesis"],
    },
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
    classifiers=[
        "Programming Language :: Python :: 3",
        "Operating System :: OS Independent",
        "Intended Audience :: Science/Research",
        "Topic :: Scientific/Engineering :: Electronic Design Automation (EDA)",
    ],
)
