"""Monte-Carlo test-escape study.

Sample random defective memories (1-3 defects drawn from the fault
library, random placements), run each candidate March test, and count
*escapes* -- defective parts the test passes.  Shorter tests trade test
time for escapes; the study quantifies the trade-off the paper's
generator navigates per fault list.

Run:  python examples/test_escape_study.py
"""

import random

from repro.faults.instances import (
    CouplingIdempotentInstance,
    CouplingInversionInstance,
    IncorrectReadInstance,
    StuckAtInstance,
    TransitionFaultInstance,
    WriteDisturbInstance,
)
from repro.march.catalog import MARCH_C_MINUS, MARCH_X, MATS, MSCAN
from repro.memory.array import MemoryArray
from repro.simulator.composite import compose
from repro.simulator.engine import run_march

SIZE = 6
TRIALS = 400
TESTS = [MSCAN, MATS, MARCH_X, MARCH_C_MINUS]


def random_defect(rng: random.Random):
    kind = rng.randrange(6)
    cell = rng.randrange(SIZE)
    other = rng.choice([c for c in range(SIZE) if c != cell])
    value = rng.randrange(2)
    if kind == 0:
        return StuckAtInstance(cell, value)
    if kind == 1:
        return TransitionFaultInstance(cell, rising=bool(value))
    if kind == 2:
        return IncorrectReadInstance(cell, value)
    if kind == 3:
        return WriteDisturbInstance(cell, value)
    if kind == 4:
        return CouplingIdempotentInstance(cell, other, bool(rng.randrange(2)), value)
    return CouplingInversionInstance(cell, other, rising=bool(value))


def escape_rate(test, rng: random.Random) -> float:
    escapes = 0
    for _ in range(TRIALS):
        defect_count = rng.choice((1, 1, 1, 2, 2, 3))
        instance = compose(*(random_defect(rng) for _ in range(defect_count)))
        memory = MemoryArray(SIZE, fault=instance)
        concrete = test.concrete_order_variants()[0]
        if not run_march(concrete, memory).detected:
            escapes += 1
    return escapes / TRIALS


def main():
    print(f"{TRIALS} random defective memories ({SIZE} cells, 1-3 defects)")
    print(f"{'test':10} {'cplx':>5} {'escape rate':>12}")
    print("-" * 30)
    rates = {}
    for test in TESTS:
        rng = random.Random(2002)  # same defect population per test
        rate = escape_rate(test, rng)
        rates[test.name] = rate
        print(f"{test.name:10} {test.complexity_label:>5} {rate * 100:10.1f}%")
    print()
    print("Longer tests escape less; March C- (10n) dominates the")
    print("shorter tests on this defect mix -- the coverage/length")
    print("trade-off the generator resolves per target fault list.")
    assert rates["MarchC-"] <= rates["MATS"] <= rates["MSCAN"] + 0.05


if __name__ == "__main__":
    main()
