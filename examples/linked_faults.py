"""Linked faults: why March C- is not the end of the story.

Two coupling faults sharing a victim can mask each other: the second
excitation overwrites (CFid pairs) or cancels (CFin pairs) the first
before any read samples the victim.  This example measures the classic
hierarchy on our simulator: March C- loses a third of the linked CFid
placements; March A / March B / March LR recover them at higher
complexity.

Run:  python examples/linked_faults.py
"""

from repro.faults.linked import (
    linked_idempotent_cases,
    linked_inversion_cases,
)
from repro.march.catalog import CATALOG
from repro.simulator.faultsim import detects_case

TESTS = ["MATS++", "MarchX", "MarchC-", "MarchA", "MarchB", "MarchLR"]


def main():
    size = 4
    idem = linked_idempotent_cases(size)
    inv = linked_inversion_cases(size)

    print(f"{'test':8} {'cplx':>5} {'linked CFid':>12} {'linked CFin':>12}")
    print("-" * 42)
    for name in TESTS:
        march = CATALOG[name]
        idem_hit = sum(detects_case(march, c, size) for c in idem)
        inv_hit = sum(detects_case(march, c, size) for c in inv)
        print(
            f"{name:8} {march.complexity_label:>5}"
            f" {idem_hit:>6}/{len(idem):<5} {inv_hit:>6}/{len(inv):<5}"
        )
    print()
    print("Linked CFid pairs separate March C- (10n) from March A (15n);")
    print("linked CFin pairs cancel pairwise and stay mostly invisible to")
    print("all March tests -- the motivation for the paper's reference [5]")
    print("handling linked faults with richer models.")


if __name__ == "__main__":
    main()
