"""Word-oriented memory testing with data backgrounds.

Bit-oriented March tests extend to w-bit words by running once per
*data background*.  This example shows why: an idempotent coupling
fault between two bits of the same word hides under solid backgrounds
(the victim always already holds the forced value) and only the
checkerboard exposes it.

Run:  python examples/word_oriented.py
"""

from repro.faults.instances import CouplingIdempotentInstance
from repro.march.catalog import MARCH_C_MINUS
from repro.word import (
    data_backgrounds,
    detects_case,
    word_complexity,
)


def main():
    width = 8
    backgrounds = data_backgrounds(width)
    print(f"Standard backgrounds for {width}-bit words"
          f" (ceil(log2 w) + 1 = {len(backgrounds)}):")
    for background in backgrounds:
        print("  " + "".join(str(b) for b in background))
    print()

    # CFid <up,1>: bit 1 rising forces bit 0 of the same word to 1.
    make = lambda: CouplingIdempotentInstance(1, 0, True, 1)

    solid_only = [backgrounds[0]]
    hidden = detects_case(
        MARCH_C_MINUS, make, words=4, width=width, backgrounds=solid_only
    )
    exposed = detects_case(MARCH_C_MINUS, make, words=4, width=width)
    print(f"intra-word CFid<up,1> bit1->bit0 under March C-:")
    print(f"  solid background only : detected = {hidden}")
    print(f"  full background set   : detected = {exposed}")
    print()
    print(f"word-oriented March C- cost: {MARCH_C_MINUS.complexity}"
          f" ops x {len(backgrounds)} passes ="
          f" {word_complexity(MARCH_C_MINUS, width)} word operations"
          f" per word.")


if __name__ == "__main__":
    main()
