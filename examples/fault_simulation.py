"""Fault-simulate the classic March tests against the fault library.

Reproduces the qualitative coverage table of the literature (which
faults MATS, MATS++, March X, March Y and March C- do or do not
detect), using the Section 6 simulator as ground truth.

Run:  python examples/fault_simulation.py
"""

from repro.faults import FaultList
from repro.march.catalog import (
    MARCH_C_MINUS,
    MARCH_X,
    MARCH_Y,
    MATS,
    MATS_PLUS_PLUS,
    MSCAN,
)
from repro.simulator.faultsim import simulate_fault_list

TESTS = [MSCAN, MATS, MATS_PLUS_PLUS, MARCH_X, MARCH_Y, MARCH_C_MINUS]
MODELS = ["SAF", "TF", "ADF", "CFIN", "CFID", "RDF", "WDF"]


def main():
    header = f"{'test':10} {'cplx':>5} " + " ".join(
        f"{m:>5}" for m in MODELS
    )
    print(header)
    print("-" * len(header))
    for test in TESTS:
        cells = []
        for model in MODELS:
            faults = FaultList.from_names(model)
            report = simulate_fault_list(test, faults, size=3)
            if report.complete:
                cells.append(f"{'yes':>5}")
            elif report.coverage > 0:
                cells.append(f"{report.coverage * 100:4.0f}%")
            else:
                cells.append(f"{'no':>5}")
        print(f"{test.name:10} {test.complexity_label:>5} " + " ".join(cells))
    print()
    print("'yes' = every fault case of the model detected (worst case),")
    print("a percentage = partial coverage, 'no' = nothing detected.")


if __name__ == "__main__":
    main()
