"""Reproduce Table 3 of the paper: six fault lists, six March tests.

For each fault list the paper reports the generated test, its
complexity, the generation CPU time and the equivalent known March
test.  This script regenerates every row and prints both sides.

Run:  python examples/reproduce_table3.py
"""

from repro.core import MarchTestGenerator
from repro.faults import FaultList

PAPER_ROWS = [
    # (fault names, paper complexity, paper CPU s, paper known test)
    (("SAF",), 4, 0.49, "MATS (4n)"),
    (("SAF", "TF"), 5, 0.53, "MATS+ (5n)"),
    (("SAF", "TF", "ADF"), 6, 0.61, "MATS++ (6n)"),
    (("SAF", "TF", "ADF", "CFIN"), 6, 0.69, "MarchX (6n)"),
    (("SAF", "TF", "ADF", "CFIN", "CFID"), 10, 0.85, "March C- (10n)"),
    (("CFIN",), 5, 0.57, "Not Found"),
]


def main():
    generator = MarchTestGenerator()
    print(f"{'Fault list':28} {'ours':>5} {'paper':>6} {'time':>8}"
          f" {'paper t':>8}  equivalent")
    print("-" * 100)
    matches = 0
    for names, paper_n, paper_t, paper_known in PAPER_ROWS:
        report = generator.generate(FaultList.from_names(*names))
        match = report.complexity == paper_n
        matches += match
        print(
            f"{'+'.join(names):28} {report.complexity_label:>5}"
            f" {str(paper_n) + 'n':>6} {report.elapsed_seconds:7.2f}s"
            f" {paper_t:7.2f}s  {report.equivalent_known or paper_known}"
            f" {'' if match else '  << differs'}"
        )
        print(f"{'':28} {report.test}"
              f"   [verified={report.verified},"
              f" non-redundant={report.non_redundant}]")
    print("-" * 100)
    print(f"{matches}/{len(PAPER_ROWS)} rows match the paper's complexity.")


if __name__ == "__main__":
    main()
