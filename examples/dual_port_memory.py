"""Two-port memories: the paper's future work, implemented.

Weak two-port faults only manifest when both ports act in the same
cycle, so no single-port March test can find them.  This example shows
the weak fault models, proves the single-port blindness, and generates
a minimal two-port March test with the bounded search generator.

Run:  python examples/dual_port_memory.py
"""

from repro.multiport import (
    MARCH_2PF,
    covers_all_weak_faults,
    parse_march_2p,
    weak_fault_cases,
)
from repro.multiport.generate import Search2PStats, generate_march_2p


def main():
    size = 3
    cases = weak_fault_cases(size)
    print(f"Weak two-port fault cases on a {size}-cell memory:")
    for fault_case in cases:
        print(f"  {fault_case.name}")
    print()

    single_port = parse_march_2p("{any(w0); up(r0,w1,r1); down(r1,w0,r0)}")
    ok, missed = covers_all_weak_faults(single_port, size)
    print(f"single-port March (no companion reads): misses {len(missed)}"
          f"/{len(cases)} weak faults -- they need simultaneity.")
    print()

    ok, missed = covers_all_weak_faults(MARCH_2PF, size)
    print(f"catalog test {MARCH_2PF} ({MARCH_2PF.complexity_label}):"
          f" covers all = {ok}")
    print()

    print("Generating a minimal two-port test (bounded search,"
          " differential simulation)...")
    stats = Search2PStats()
    found = generate_march_2p(size=size, max_complexity=5, stats=stats)
    print(f"  found   : {found} ({found.complexity_label})")
    print(f"  explored: {stats.candidates_tested} candidates")
    ok, missed = covers_all_weak_faults(found, 4)
    print(f"  re-verified on 4 cells: {ok}")


if __name__ == "__main__":
    main()
