"""Walk the generation pipeline by hand: Figure 4 and the Section 4
worked example.

Shows every intermediate artifact the paper describes: the BFEs and
their test patterns, the weighted TPG, the optimal ATSP tour, the raw
12-operation GTS, the reordered/minimized symbol stream and the final
March test.

Run:  python examples/tpg_exploration.py
"""

from repro.atsp.solver import solve_path
from repro.faults import CouplingIdempotentFault
from repro.march.builder import build_march
from repro.patterns.test_pattern import patterns_for_bfe
from repro.patterns.tpg import TestPatternGraph
from repro.sequence.gts import build_gts, gts_text
from repro.sequence.rewrite import reorder_and_minimize


def main():
    fault = CouplingIdempotentFault(primitives=("up",), values=(0, 1))

    print("1. Fault list {<up,1>, <up,0>} decomposed into BFEs and TPs")
    print("------------------------------------------------------------")
    graph = TestPatternGraph()
    for cls in fault.classes():
        for member in cls.members:
            for tp in patterns_for_bfe(member):
                node = graph.add(tp, cls.name)
                print(f"  {cls.name:22s} -> TP{node.index + 1} {tp}")

    print()
    print("2. The Test Pattern Graph (Figure 4), weights by f.4.1")
    print("------------------------------------------------------------")
    matrix = graph.weight_matrix()
    header = "      " + "  ".join(f"TP{c + 1}" for c in range(len(graph)))
    print(header)
    for r, row in enumerate(matrix):
        cells = "  ".join(f"{w:3d}" for w in row)
        print(f"  TP{r + 1} {cells}")
    print(f"  possible GTSs: V! = {graph.gts_count()} (f.4.2)")

    print()
    print("3. Optimal open tour (ATSP with depot closure + f.4.4 start)")
    print("------------------------------------------------------------")
    starts = [graph.start_weight(k) for k in range(len(graph))]
    order, cost = solve_path(matrix, starts)
    print("  tour :", " -> ".join(f"TP{k + 1}" for k in order))
    print(f"  cost : {cost:.0f} setup writes")

    print()
    print("4. Global Test Sequence (Section 4)")
    print("------------------------------------------------------------")
    gts = build_gts(graph, order)
    print(f"  raw GTS ({gts.length} operations): {gts_text(gts)}")

    minimized = reorder_and_minimize(gts)
    print(f"  reordered+minimized ({len(minimized)} symbols): {minimized}")

    print()
    print("5. March test (Section 4.3 rules + validation)")
    print("------------------------------------------------------------")
    candidate = build_march(minimized, "from-pipeline")
    print(f"  segmented candidate: {candidate}")
    print()
    print("  (The full generator also fault-simulates this candidate and")
    print("   optimizes it; run examples/reproduce_table3.py for the")
    print("   validated end results.)")


if __name__ == "__main__":
    main()
