"""Quickstart: generate a March test for a fault list in three lines.

Run:  python examples/quickstart.py
"""

from repro import generate_march_test

# Target stuck-at and transition faults (Table 3, row 2 of the paper).
report = generate_march_test("SAF", "TF")

print("Generated March test")
print("====================")
print(report.summary())
print()
print(f"The {report.complexity_label} test in March notation: {report.test}")
print()
print("Element by element:")
for index, element in enumerate(report.test.elements, 1):
    print(f"  {index}. {element}")
