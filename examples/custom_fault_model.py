"""Define a user fault model and generate a March test for it.

The paper stresses that the memory model can "possibly add new
user-defined faults".  Here we invent a *sticky-write* fault: once the
cell has held 1, writing 0 only succeeds every other time -- modelled
(pessimistically) as the down-transition failing while the *other* cell
holds 1, i.e. a state-dependent transition fault.

We express the fault both as BFE classes (for the generator) and as a
behavioural instance (for the validating simulator).

Run:  python examples/custom_fault_model.py
"""

from repro.core import MarchTestGenerator
from repro.faults import BFEClass, FaultList, UserDefinedFault, delta_bfe
from repro.faults.instances import case
from repro.memory.array import MemoryArray, NullFaultInstance
from repro.memory.operations import write
from repro.memory.state import MemoryState


class StickyDownInstance(NullFaultInstance):
    """w0 to the victim fails while the neighbour cell holds 1."""

    def __init__(self, victim: int, neighbour: int) -> None:
        self.victim = victim
        self.neighbour = neighbour

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        if (
            address == self.victim
            and value == 0
            and memory.raw[self.victim] == 1
            and memory.raw[self.neighbour] == 1
        ):
            return  # the down transition sticks
        memory.raw[address] = value


def sticky_down_model() -> UserDefinedFault:
    classes = []
    for victim, neighbour in (("i", "j"), ("j", "i")):
        state = MemoryState.of(**{victim: 1, neighbour: 1})
        faulty = MemoryState.of(**{victim: 1, neighbour: "-"})
        bfe = delta_bfe(
            state, write(victim, 0), faulty,
            label=f"sticky-down {victim} (neighbour {neighbour})",
        )
        classes.append(BFEClass(f"STICKY {victim}", (bfe,)))

    def instances(size):
        return tuple(
            case(
                f"STICKY {victim} (n={neighbour})",
                lambda victim=victim, neighbour=neighbour:
                StickyDownInstance(victim, neighbour),
            )
            for victim in range(size)
            for neighbour in range(size)
            if victim != neighbour
        )

    return UserDefinedFault("STICKY", classes, instances)


def main():
    faults = FaultList([sticky_down_model()])
    report = MarchTestGenerator().generate(faults)
    print("User-defined sticky-write fault")
    print("===============================")
    print(report.summary())
    print()
    print("The generated test drives both cells to 1, writes the down")
    print("transition and reads it back before the neighbour changes:")
    print(f"  {report.test}")


if __name__ == "__main__":
    main()
