"""Fault diagnosis with syndrome dictionaries.

Beyond pass/fail, a March run's failing reads form a *syndrome* that
narrows down which fault is present (the output-tracing idea of the
paper's reference [6]).  This example builds a dictionary for March C-
over the Table 3 row-5 fault list, injects a fault into a simulated
memory, and diagnoses it from the observed syndrome alone.

Run:  python examples/fault_diagnosis.py
"""

from repro.diagnosis import build_dictionary_for, diagnose_memory
from repro.faults import FaultList
from repro.faults.instances import (
    CouplingIdempotentInstance,
    StuckAtInstance,
    TransitionFaultInstance,
)
from repro.march.catalog import MARCH_C_MINUS
from repro.memory.array import MemoryArray


def main():
    faults = FaultList.from_names("SAF", "TF", "CFIN", "CFID")
    size = 3
    dictionary = build_dictionary_for(MARCH_C_MINUS, faults, size)

    print(f"dictionary for {MARCH_C_MINUS.name} over"
          f" {'+'.join(faults.names)} ({size} cells)")
    print(f"  fault cases     : {dictionary.case_count}")
    print(f"  distinct syndromes: {dictionary.syndromes}")
    print(f"  unique-resolution : {dictionary.resolution() * 100:.0f}%"
          f" of detected cases")
    print()

    trials = [
        ("SA0 at cell 1", StuckAtInstance(1, 0)),
        ("TF-down at cell 2", TransitionFaultInstance(2, rising=False)),
        ("CFid<up,0> 0->2", CouplingIdempotentInstance(0, 2, True, 0)),
        ("fault-free", None),
    ]
    for label, instance in trials:
        memory = (
            MemoryArray(size) if instance is None
            else MemoryArray(size, fault=instance)
        )
        candidates = diagnose_memory(MARCH_C_MINUS, memory, dictionary)
        rendered = ", ".join(candidates) if candidates else "(no fault)"
        print(f"injected {label:22s} -> diagnosed: {rendered}")


if __name__ == "__main__":
    main()
