"""Pooled :class:`~repro.memory.array.MemoryArray` instances.

The legacy simulation paths allocated a fresh ``MemoryArray`` (plus its
backing list) for every (order-variant, fault-variant) pair -- millions
of short-lived objects over one generator run.  The pool keeps one
free-list per memory size and recycles arrays through
:meth:`MemoryArray.reset`, which restores the exact
freshly-constructed state (all cells non-initialized, fault installed,
trace log empty).
"""

from __future__ import annotations

from typing import Dict, List

from ..memory.array import FaultInstance, MemoryArray


class MemoryPool:
    """A per-size free list of reusable memory arrays."""

    def __init__(self, max_per_size: int = 32) -> None:
        self.max_per_size = max_per_size
        self._free: Dict[int, List[MemoryArray]] = {}
        self.allocations = 0
        self.reuses = 0

    def acquire(self, size: int, fault: FaultInstance = None) -> MemoryArray:
        """A memory of ``size`` cells with ``fault`` installed."""
        free = self._free.get(size)
        if free:
            self.reuses += 1
            return free.pop().reset(fault)
        self.allocations += 1
        memory = MemoryArray(size)
        if fault is not None:
            memory.fault = fault
        return memory

    def release(self, memory: MemoryArray) -> None:
        """Return ``memory`` to the pool for later reuse."""
        free = self._free.setdefault(memory.size, [])
        if len(free) < self.max_per_size:
            free.append(memory)

    def clear(self) -> None:
        self._free.clear()
