"""The unified simulation kernel.

:class:`SimulationKernel` is the single entry point for all fault
simulation in the repository.  Every consumer layer -- the generator's
verifier, coverage/non-redundancy analysis, comparative analysis,
diagnosis dictionaries, the two-port search and the benchmark harness
-- routes its (test, fault case) detection questions through one
kernel, which

* memoizes worst-case verdicts in a bounded fault-dictionary cache
  keyed by :class:`~repro.kernel.cache.SimKey` (canonical test
  signature, case name, memory size, domain), with hit/miss stats;
* hoists ``concrete_order_variants()`` out of all inner loops and
  recycles :class:`~repro.memory.array.MemoryArray` instances through a
  :class:`~repro.kernel.pool.MemoryPool` instead of reallocating;
* dispatches batched cache misses to a pluggable
  :class:`~repro.kernel.backends.ExecutionBackend` (``serial``,
  ``process`` or the word-packed ``bitparallel``), selectable via
  ``GeneratorConfig(backend=...)`` or the CLI ``--backend`` flag;
* optionally layers the persistent fault-dictionary store
  (:mod:`repro.store`) under the LRU as a write-through/read-through
  second tier (``store=``/``--store``), so repeated CLI invocations
  and concurrent processes share verdicts across process boundaries.

Results are bit-identical to the legacy per-call paths; see
``tests/kernel/`` and ``tests/store/`` for the equivalence properties.
"""

from __future__ import annotations

from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from ..faults.faultlist import FaultList
from ..faults.instances import FaultCase
from ..march.element import AddressOrder, MarchElement
from ..march.test import MarchTest
from ..memory.array import MemoryArray
from ..simulator.engine import MarchRun, is_well_formed, run_march
from ..store import FaultDictionaryStore, TieredCache, resolve_store
from ..telemetry import TELEMETRY_OFF, Telemetry
from .backends import (
    DetectTask,
    ExecutionBackend,
    resolve_backend,
    worst_case_detects,
)
from .cache import FaultDictionaryCache, KernelStats, SimKey
from .pool import MemoryPool
from .report import SimulationReport, warn_if_empty

#: Memory size used for validation.  Three cells exercise every
#: aggressor/victim ordering with a bystander cell in all positions.
DEFAULT_SIZE = 3

Verifier = Callable[[MarchTest], bool]

#: One failing observation: (element, op, address, observed value).
Failure = Tuple[int, int, int, object]
Syndrome = FrozenSet[Failure]


def canonical_signature(test: Union[MarchTest, object]) -> str:
    """The cache identity of a test: its notation, not its name.

    ``str`` of a March test renders orders and operations only, so two
    differently-named but operationally identical tests share cached
    verdicts.  Works for any test type whose ``__str__`` is canonical
    (single-port :class:`MarchTest` and the two-port ``March2PTest``).
    """
    return str(test)


class SimulationKernel:
    """Cached, batched, backend-pluggable fault simulation.

    Parameters
    ----------
    backend:
        Backend name (``"serial"``/``"process"``), a ready
        :class:`ExecutionBackend`, or ``None`` for serial.
    cache_size:
        Bound of the fault-dictionary cache (LRU beyond it).
    pool:
        Optional shared :class:`MemoryPool`; one is created per kernel
        by default.
    store:
        Path to the persistent fault-dictionary store, a
        ``repro+unix:///path/to.sock`` verdict-service URL (the
        daemon owns the SQLite file; this kernel becomes a socket
        client), or a ready store instance -- layered under the LRU
        as a write-through/read-through second tier; ``None``
        (default) keeps the dictionary purely in-memory.
    store_readonly:
        Open the store for lookups only: fresh verdicts stay
        in-process, nothing is written to disk.
    store_retry:
        A :class:`~repro.store.resilience.RetryPolicy` governing how
        a service-URL store rides out transient daemon failures;
        ignored for file stores and ready instances.
    telemetry:
        A live :class:`~repro.telemetry.Telemetry` handle, or ``None``
        (default) for the zero-cost no-op.  With a live handle the
        kernel adopts its cache counters into the registry as
        ``repro.kernel.cache.*``, samples backend routing and store
        counters as collectors, and records one span plus one
        ``repro.backend.detect.seconds`` observation per backend
        batch.  Stats attributes (``kernel.stats`` etc.) behave
        identically either way.

    >>> from repro.march.catalog import MATS
    >>> from repro.faults import FaultList
    >>> kernel = SimulationKernel()
    >>> kernel.simulate_fault_list(MATS, FaultList.from_names("SAF")).complete
    True
    >>> kernel.stats.misses > 0
    True
    """

    def __init__(
        self,
        backend: Union[str, ExecutionBackend, None] = None,
        cache_size: int = 1_000_000,
        pool: Optional[MemoryPool] = None,
        store: Union[str, FaultDictionaryStore, None] = None,
        store_readonly: bool = False,
        store_retry: Optional[Any] = None,
        telemetry: Optional[Telemetry] = None,
    ) -> None:
        self.telemetry = telemetry if telemetry is not None else TELEMETRY_OFF
        self.pool = pool or MemoryPool()
        self.backend = resolve_backend(backend, self.pool)
        # A store the kernel opened from a path or service URL is the
        # kernel's to close; a caller-provided instance may be shared
        # with other kernels, so close() must leave it alone.
        self._owns_store = isinstance(store, (str, Path)) or store is None
        self.store = resolve_store(
            store, readonly=store_readonly, retry=store_retry
        )
        memory = FaultDictionaryCache(cache_size)
        self.cache: Union[FaultDictionaryCache, TieredCache] = (
            TieredCache(memory, self.store, telemetry=self.telemetry)
            if self.store is not None
            else memory
        )
        if self.telemetry.enabled:
            self._attach_telemetry()

    def _attach_telemetry(self) -> None:
        """Wire every tier's counters into the live metrics registry.

        Cache counters are *adopted* (the registry reads the same
        Counter objects ``kernel.stats`` mutates -- one set of numbers,
        no double accounting); backend routing and store counters are
        *collectors* sampled at snapshot time, because their label sets
        (strategies) only appear as the run unfolds.  The backend also
        gets the live handle so it can record what ``served`` cannot
        express (fork chunk counts).
        """
        registry = self.telemetry.registry
        for field, counter in self.stats.counters().items():
            registry.adopt(
                f"repro.kernel.cache.{field}", counter, tier="memory"
            )
        backend = self.backend
        backend.telemetry = self.telemetry
        registry.collector(
            "repro.backend.served",
            lambda: [
                ({"backend": backend.name, "strategy": strategy}, count)
                for strategy, count in sorted(backend.served.items())
            ],
        )
        if self.store is not None:
            stats = self.store.stats
            for field in ("hits", "misses", "writes", "skipped_writes"):
                registry.collector(
                    f"repro.store.{field}",
                    lambda field=field: [
                        ({"tier": "store"}, getattr(stats, field))
                    ],
                )

    @classmethod
    def from_config(cls, config) -> "SimulationKernel":
        """Build a kernel from a :class:`~repro.core.config.GeneratorConfig`."""
        return cls(
            backend=getattr(config, "backend", None),
            cache_size=getattr(config, "sim_cache_size", 1_000_000),
            store=getattr(config, "store_path", None),
            store_readonly=getattr(config, "store_readonly", False),
            store_retry=getattr(config, "store_retry", None),
            telemetry=getattr(config, "telemetry", None),
        )

    # -- introspection ----------------------------------------------------------

    @property
    def stats(self) -> KernelStats:
        """Hit/miss/eviction counters of the fault dictionary."""
        return self.cache.stats

    #: Canonical tier order of :meth:`describe_stats`: memory cache
    #: first, then the persistent store, its degradation notice, then
    #: backend routing -- the same sequence whether or not a store (or
    #: a degraded store) is attached, so ``--sim-stats`` output from
    #: any two kernels diffs segment-by-segment.
    STATS_TIER_ORDER = ("cache", "store", "resilience", "backend")

    def stats_segments(self) -> List[Tuple[str, str]]:
        """``(tier, text)`` stat segments in canonical tier order.

        Tiers that do not apply (no store attached, store healthy) are
        simply absent; present tiers always appear in
        :data:`STATS_TIER_ORDER`.
        """
        segments: Dict[str, str] = {"cache": str(self.stats)}
        if self.store is not None:
            segments["store"] = self.store.describe()
            prober = getattr(self.cache, "resilience", None)
            report = prober() if callable(prober) else None
            if report and report.get("degraded"):
                segments["resilience"] = (
                    f"DEGRADED after {report['attempts']} retr"
                    f"{'y' if report['attempts'] == 1 else 'ies'}"
                    f" (spill {report.get('spill')})"
                )
        served = getattr(self.backend, "served", None) or {}
        routing = ", ".join(
            f"{name}: {count}" for name, count in sorted(served.items())
        )
        segments["backend"] = (
            f"backend [{self.backend.name}]"
            f" served {routing if routing else 'no tasks'}"
        )
        return [
            (tier, segments[tier])
            for tier in self.STATS_TIER_ORDER
            if tier in segments
        ]

    def describe_stats(self) -> str:
        """Cache counters, store counters, backend routing breakdown.

        The routing part reports how many cache-miss tasks each
        execution strategy actually served (e.g. ``bitparallel`` vs its
        scalar ``serial`` fallback); with a persistent store attached,
        its second-tier hit/miss/write counters appear too, so
        ``--sim-stats`` makes every dictionary tier and every dispatch
        decision observable rather than a black box.  Segments follow
        :data:`STATS_TIER_ORDER` so the output is stably diffable.
        """
        return "; ".join(text for _, text in self.stats_segments())

    def clear(self) -> None:
        """Drop every in-memory verdict and reset ALL the stats.

        Also resets the backend's routing counters and the persistent
        store's hit/miss/write counters so :meth:`describe_stats` never
        mixes numbers from two runs.  The store's on-disk *rows* are
        deliberately kept: dropping the persistent dictionary is an
        operator action (delete the file), not a cache side effect.
        """
        self.cache.clear()
        self.stats.reset()
        served = getattr(self.backend, "served", None)
        if served is not None:
            served.clear()
        if self.store is not None:
            self.store.stats.reset()

    def close(self) -> None:
        """Release backend resources and, when the kernel opened the
        store itself (constructed from a path), its connection.
        Caller-provided store instances stay open: they may be shared
        with other kernels and are the caller's to close.

        The store close (WAL checkpoint) runs even when the backend
        refuses to shut down cleanly: campaign workers call this from
        crash-path ``finally`` blocks, and completed verdicts must be
        durable no matter what state the backend died in."""
        try:
            self.backend.close()
        finally:
            if self.store is not None and self._owns_store:
                self.store.close()

    # -- single-detection API ---------------------------------------------------

    def detects(
        self, test: MarchTest, case: FaultCase, size: int = DEFAULT_SIZE
    ) -> bool:
        """Worst-case detection of one fault case (cached).

        Misses go through the configured backend as a batch of one, so
        custom execution strategies see every probe; note that
        ``process`` deliberately falls back to serial below its
        minimum batch size, so single-probe consumers (the generator's
        verifier, ``dominates``) gain from it only via the shared
        cache, not from parallelism.
        """
        key = SimKey(canonical_signature(test), case.name, size)
        verdict = self.cache.get(key)
        if verdict is None:
            task = [DetectTask(test, case, size)]
            telemetry = self.telemetry
            if telemetry.enabled:
                # A batch of one, so single-probe consumers (the
                # generator's verifier) show up in the same span trace
                # and latency histogram as the batched APIs.
                with telemetry.span(
                    "kernel.detect",
                    backend=self.backend.name, case=case.name, size=size,
                ) as span:
                    verdict = self.backend.detect_batch(task)[0]
                telemetry.histogram(
                    "repro.backend.detect.seconds",
                    backend=self.backend.name,
                ).observe(getattr(span, "seconds", None) or 0.0)
            else:
                verdict = self.backend.detect_batch(task)[0]
            self.cache.put(key, verdict)
        return verdict

    def detects_with_active_reads(
        self,
        test: MarchTest,
        factories: Sequence[Callable[[], object]],
        active: Set[Tuple[int, int]],
        size: int = DEFAULT_SIZE,
    ) -> bool:
        """Worst-case detection with only ``active`` reads verifying.

        Supports the Coverage Matrix construction (Section 6): reads
        outside ``active`` still execute but do not verify.  Uncached
        (the (block, column) grid rarely repeats) but pooled and
        variant-hoisted.
        """
        return worst_case_detects(
            test.concrete_order_variants(),
            factories,
            size,
            self.pool,
            active_reads=active,
        )

    # -- batched APIs -----------------------------------------------------------

    def simulate(
        self,
        test: MarchTest,
        cases: Sequence[FaultCase],
        size: int = DEFAULT_SIZE,
    ) -> SimulationReport:
        """Simulate every fault case against one test."""
        return self.simulate_many([test], cases, size)[0]

    def simulate_many(
        self,
        tests: Sequence[MarchTest],
        cases: Sequence[FaultCase],
        size: int = DEFAULT_SIZE,
    ) -> List[SimulationReport]:
        """Batched simulation: one report per test, in input order.

        Cache hits are answered from the fault dictionary; the misses
        are evaluated in one backend batch (chunkable across worker
        processes) and stored.
        """
        warn_if_empty(cases)
        verdicts = self._verdicts(tests, cases, size)
        reports = []
        for test in tests:
            signature = canonical_signature(test)
            report = SimulationReport(test, size)
            for case in cases:
                if verdicts[(signature, case.name)]:
                    report.detected.append(case.name)
                else:
                    report.missed.append(case.name)
            reports.append(report)
        return reports

    def simulate_fault_list(
        self,
        test: MarchTest,
        faults: FaultList,
        size: int = DEFAULT_SIZE,
    ) -> SimulationReport:
        """Simulate all behavioural instances of a fault list."""
        return self.simulate(test, faults.instances(size), size)

    def detection_matrix(
        self,
        tests: Sequence[MarchTest],
        faults: Union[FaultList, Sequence[FaultCase]],
        size: int = DEFAULT_SIZE,
    ) -> Dict[str, Dict[str, bool]]:
        """Cross table: test name -> fault case name -> detected?

        Accepts a :class:`FaultList` (instances are derived at ``size``)
        or an explicit fault-case sequence.
        """
        cases = (
            faults.instances(size)
            if isinstance(faults, FaultList)
            else tuple(faults)
        )
        warn_if_empty(cases)
        verdicts = self._verdicts(tests, cases, size)
        matrix: Dict[str, Dict[str, bool]] = {}
        for test in tests:
            signature = canonical_signature(test)
            matrix[test.name or str(test)] = {
                case.name: verdicts[(signature, case.name)] for case in cases
            }
        return matrix

    def _verdicts(
        self,
        tests: Sequence[MarchTest],
        cases: Sequence[FaultCase],
        size: int,
    ) -> Dict[Tuple[str, str], bool]:
        """Resolve every (test, case) pair, filling misses in one batch.

        Lookups and stores both go through the cache's batched calls
        (``get_many``/``put_many``): a tiered store answers all the
        in-memory misses in one disk pass and commits the whole
        backend batch in one transaction.
        """
        lookups: List[Tuple[Tuple[str, str], SimKey, MarchTest,
                            FaultCase]] = []
        seen: Set[Tuple[str, str]] = set()
        for test in tests:
            signature = canonical_signature(test)
            for case in cases:
                pair = (signature, case.name)
                if pair in seen:
                    continue
                seen.add(pair)
                lookups.append(
                    (pair, SimKey(signature, case.name, size), test, case)
                )
        cached = self.cache.get_many([key for _, key, _, _ in lookups])
        verdicts: Dict[Tuple[str, str], bool] = {}
        pending: List[DetectTask] = []
        pending_keys: List[SimKey] = []
        for pair, key, test, case in lookups:
            if key in cached:
                verdicts[pair] = cached[key]
            else:
                pending.append(DetectTask(test, case, size))
                pending_keys.append(key)
        if pending:
            self.stats.batches += 1
            telemetry = self.telemetry
            if telemetry.enabled:
                with telemetry.span(
                    "kernel.detect_batch",
                    backend=self.backend.name,
                    tasks=len(pending),
                    size=size,
                ) as span:
                    results = self.backend.detect_batch(pending)
                telemetry.histogram(
                    "repro.backend.detect.seconds",
                    backend=self.backend.name,
                ).observe(getattr(span, "seconds", None) or 0.0)
            else:
                results = self.backend.detect_batch(pending)
            self.cache.put_many(list(zip(pending_keys, results)))
            for key, verdict in zip(pending_keys, results):
                verdicts[(key.signature, key.case)] = verdict
        return verdicts

    # -- generator-facing verification -----------------------------------------

    def verifier(
        self, cases: Sequence[FaultCase], size: int
    ) -> Verifier:
        """A predicate: well-formed and detects every fault case.

        Fail-fast: the case that most recently rejected a candidate is
        tried first on the next call, so hopeless candidates die on
        their first simulation (this dominates the exhaustive-search
        runtime).  Verdicts go through the kernel cache.
        """
        ordered: List[FaultCase] = list(cases)

        def verify(test: MarchTest) -> bool:
            if not is_well_formed(test, size):
                return False
            for position, fault_case in enumerate(ordered):
                if not self.detects(test, fault_case, size):
                    if position:
                        ordered.insert(0, ordered.pop(position))
                    return False
            return True

        return verify

    # -- diagnosis --------------------------------------------------------------

    def syndrome(
        self, test: MarchTest, case: FaultCase, size: int
    ) -> Syndrome:
        """The failing-read signature of a fault case (cached).

        Diagnosis semantics: one concrete realization (ANY resolved
        ascending, :func:`concrete_realization`) and the case's first
        behavioural variant -- a fault dictionary describes a
        deterministic program on real hardware.
        """
        key = SimKey(canonical_signature(test), case.name, size, domain="syn")
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        syndrome = self.syndrome_of(test, case.variants[0], size)
        self.cache.put(key, syndrome)
        return syndrome

    def syndrome_of(
        self, test: MarchTest, make_instance: Callable[[], object], size: int
    ) -> Syndrome:
        """Uncached syndrome of one fault instance factory (pooled)."""
        concrete = concrete_realization(test)
        memory = self.pool.acquire(size, make_instance())
        run = run_march(concrete, memory)
        self.pool.release(memory)
        return frozenset(
            (r.element_index, r.op_index, r.address, r.actual)
            for r in run.reads
            if r.mismatch
        )

    def run_concrete(self, test: MarchTest, memory: MemoryArray) -> MarchRun:
        """Run the ascending realization of ``test`` on a given memory
        (diagnosing actual hardware state, so never cached)."""
        return run_march(concrete_realization(test), memory)

    # -- two-port domain --------------------------------------------------------

    def detects_2p(self, test, case, size: int = DEFAULT_SIZE) -> bool:
        """Worst-case two-port differential detection (cached).

        ``test`` is a :class:`~repro.multiport.march2p.March2PTest`;
        evaluation delegates to the differential simulator but verdicts
        share this kernel's fault dictionary under the ``"2p"`` domain.
        """
        from ..multiport.march2p import detects_weak_case

        key = SimKey(canonical_signature(test), case.name, size, domain="2p")
        verdict = self.cache.get(key)
        if verdict is None:
            verdict = detects_weak_case(test, case, size)
            self.cache.put(key, verdict)
        return verdict


def concrete_realization(test: MarchTest, up: bool = True) -> MarchTest:
    """Resolve every ANY order to a concrete direction.

    The single definition shared by the diagnosis semantics above and
    the Coverage Matrix construction
    (:func:`repro.simulator.coverage.concrete_realization` delegates
    here): an ``ANY`` element detects under *either* order, so per-block
    coverage and syndrome signatures are only meaningful once an order
    is fixed.
    """
    order = AddressOrder.UP if up else AddressOrder.DOWN
    elements = tuple(
        e.with_order(order)
        if isinstance(e, MarchElement) and e.order is AddressOrder.ANY
        else e
        for e in test.elements
    )
    return MarchTest(elements, test.name)


# -- module-level default kernel ------------------------------------------------

_DEFAULT_KERNEL: Optional[SimulationKernel] = None


def get_default_kernel() -> SimulationKernel:
    """The process-wide kernel behind the legacy convenience functions.

    Consumers that want isolation (their own cache/backend) construct a
    :class:`SimulationKernel` directly; the module-level functions of
    :mod:`repro.simulator.faultsim` and friends share this one.
    """
    global _DEFAULT_KERNEL
    if _DEFAULT_KERNEL is None:
        _DEFAULT_KERNEL = SimulationKernel()
    return _DEFAULT_KERNEL


def set_default_kernel(kernel: Optional[SimulationKernel]) -> None:
    """Replace (or with ``None``, reset) the process-wide kernel."""
    global _DEFAULT_KERNEL
    _DEFAULT_KERNEL = kernel
