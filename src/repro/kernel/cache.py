"""The kernel's fault-dictionary cache.

Worst-case detection of a fault case by a March test is a pure function
of (what the test does, which physical fault is injected, how many
cells the memory has).  The cache memoizes those verdicts under a
:class:`SimKey` so that every consumer layer -- generator verification,
coverage analysis, comparative analysis, diagnosis, benchmarks --
shares one fault dictionary instead of re-simulating from scratch.

The cache is a bounded LRU: the exhaustive-search paths probe hundreds
of thousands of throwaway candidates, and an unbounded dictionary would
grow without limit over a long-lived kernel.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..telemetry import Counter


@dataclass(frozen=True)
class SimKey:
    """Identity of one memoized simulation verdict.

    Attributes
    ----------
    signature:
        Canonical test signature: the March notation of the test
        (orders + operations), independent of the test's display name.
    case:
        The fault case name, e.g. ``"SA0@2"``.  Case names are the
        canonical identity of a fault throughout the repository
        (detection-matrix columns, simulation reports and syndrome
        dictionaries are all keyed by them), so two cases sharing a
        name are treated as the same fault and share verdicts; fault
        libraries must keep names unique per (model, size).
    size:
        Memory size (number of cells) the simulation ran on.
    domain:
        Simulation domain discriminator: ``"sp"`` single-port detection,
        ``"2p"`` two-port differential detection, ``"syn"`` diagnosis
        syndromes.  Keeps verdicts from unrelated semantics apart even
        when signatures collide textually.
    """

    signature: str
    case: str
    size: int
    domain: str = "sp"


class KernelStats:
    """Hit/miss counters of a kernel's fault-dictionary cache.

    The historical attribute surface (``stats.hits`` reads *and*
    ``stats.hits = 0`` writes) is preserved as properties, but the
    storage underneath is telemetry :class:`Counter` instruments so a
    kernel with a metrics registry attached can adopt the live
    counters as its ``repro.kernel.cache.*`` series -- one set of
    numbers, two views, no double accounting.
    """

    __slots__ = ("_hits", "_misses", "_evictions", "_batches", "_stores")

    _FIELDS = ("hits", "misses", "evictions", "batches", "stores")

    def __init__(
        self,
        hits: int = 0,
        misses: int = 0,
        evictions: int = 0,
        batches: int = 0,
        stores: int = 0,
    ) -> None:
        self._hits = Counter(hits)
        self._misses = Counter(misses)
        self._evictions = Counter(evictions)
        self._batches = Counter(batches)
        self._stores = Counter(stores)

    @property
    def hits(self) -> int:
        return self._hits.value

    @hits.setter
    def hits(self, value: int) -> None:
        self._hits.value = value

    @property
    def misses(self) -> int:
        return self._misses.value

    @misses.setter
    def misses(self, value: int) -> None:
        self._misses.value = value

    @property
    def evictions(self) -> int:
        return self._evictions.value

    @evictions.setter
    def evictions(self, value: int) -> None:
        self._evictions.value = value

    @property
    def batches(self) -> int:
        return self._batches.value

    @batches.setter
    def batches(self, value: int) -> None:
        self._batches.value = value

    @property
    def stores(self) -> int:
        return self._stores.value

    @stores.setter
    def stores(self, value: int) -> None:
        self._stores.value = value

    def counters(self) -> Dict[str, Counter]:
        """The live instruments, keyed by field name, for registry
        adoption (:meth:`MetricsRegistry.adopt`)."""
        return {name: getattr(self, f"_{name}") for name in self._FIELDS}

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.evictions = 0
        self.batches = self.stores = 0

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, KernelStats):
            return NotImplemented
        return all(
            getattr(self, name) == getattr(other, name)
            for name in self._FIELDS
        )

    def __repr__(self) -> str:
        # `stores` stays out of the repr, matching the dataclass era.
        return (
            f"KernelStats(hits={self.hits}, misses={self.misses},"
            f" evictions={self.evictions}, batches={self.batches})"
        )

    def __str__(self) -> str:
        return (
            f"cache: {self.hits} hits / {self.misses} misses"
            f" ({self.hit_rate * 100:.1f}% hit rate,"
            f" {self.evictions} evictions)"
        )


class FaultDictionaryCache:
    """A bounded LRU mapping :class:`SimKey` to simulation verdicts."""

    def __init__(self, max_entries: int = 1_000_000) -> None:
        if max_entries <= 0:
            raise ValueError("cache needs room for at least one entry")
        self.max_entries = max_entries
        self.stats = KernelStats()
        self._entries: "OrderedDict[SimKey, Any]" = OrderedDict()

    def get(self, key: SimKey, default: Any = None) -> Any:
        """Look up ``key``, counting the hit or miss."""
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return default
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def get_many(self, keys) -> Dict[SimKey, Any]:
        """Batched lookup: found keys only (the tiered store overrides
        this to answer all its memory misses in one disk pass)."""
        found: Dict[SimKey, Any] = {}
        for key in keys:
            value = self.get(key)
            if value is not None:
                found[key] = value
        return found

    def peek(self, key: SimKey) -> bool:
        """True when ``key`` is cached (no stat or LRU side effects)."""
        return key in self._entries

    def put(self, key: SimKey, value: Any) -> None:
        """Store a verdict, evicting the least recently used on overflow."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def put_many(self, pairs) -> None:
        """Store a batch of verdicts (the tiered store overrides this
        with one disk transaction; in memory it is just a loop)."""
        for key, value in pairs:
            self.put(key, value)

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: SimKey) -> bool:
        return key in self._entries

    def snapshot(self) -> Dict[SimKey, Any]:
        """A shallow copy of the current entries (diagnostics)."""
        return dict(self._entries)
