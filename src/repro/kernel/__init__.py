"""Unified simulation kernel: cached, batched, backend-pluggable.

See :mod:`repro.kernel.kernel` for the architecture overview and the
repository README for the cache-key and backend-extension guides.
"""

from .backends import (
    BACKENDS,
    BitParallelBackend,
    BitParallelNumpyBackend,
    DetectTask,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    available_backends,
    backend_choices_text,
    resolve_backend,
    validate_backend_name,
    worst_case_detects,
)
from .cache import FaultDictionaryCache, KernelStats, SimKey
from .kernel import (
    DEFAULT_SIZE,
    SimulationKernel,
    canonical_signature,
    concrete_realization,
    get_default_kernel,
    set_default_kernel,
)
from .pool import MemoryPool
from .report import EmptyFaultListWarning, SimulationReport

__all__ = [
    "BACKENDS",
    "BitParallelBackend",
    "BitParallelNumpyBackend",
    "DEFAULT_SIZE",
    "DetectTask",
    "EmptyFaultListWarning",
    "ExecutionBackend",
    "FaultDictionaryCache",
    "KernelStats",
    "MemoryPool",
    "ProcessBackend",
    "SerialBackend",
    "SimKey",
    "SimulationKernel",
    "SimulationReport",
    "available_backends",
    "backend_choices_text",
    "canonical_signature",
    "concrete_realization",
    "get_default_kernel",
    "resolve_backend",
    "set_default_kernel",
    "validate_backend_name",
    "worst_case_detects",
]
