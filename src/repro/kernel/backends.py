"""Pluggable execution backends for the simulation kernel.

A backend executes a batch of *detection tasks* -- ``(test, fault
case, size)`` triples whose verdicts are not yet in the kernel's fault
dictionary -- and returns one worst-case boolean per task.  The kernel
never cares how: serially in-process (the default), or fanned out over
worker processes.

Adding a backend
----------------
Subclass :class:`ExecutionBackend`, implement ``detect_batch``, and
register the class in :data:`BACKENDS` under its ``name``; it is then
selectable through ``GeneratorConfig(backend=...)`` and the CLI's
``--backend`` flag.  ``detect_batch`` must preserve task order and must
compute exactly the worst-case semantics of
:func:`worst_case_detects` (every order variant x every behavioural
variant must be caught).
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import threading
import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.instances import FaultCase
from ..march.test import MarchTest
from ..simulator.engine import run_march
from .pool import MemoryPool


@dataclass(frozen=True)
class DetectTask:
    """One unit of kernel work: does ``test`` detect ``case`` at ``size``?"""

    test: MarchTest
    case: FaultCase
    size: int


def worst_case_detects(
    variants: Sequence[MarchTest],
    factories: Sequence[Callable[[], object]],
    size: int,
    pool: MemoryPool,
    active_reads: Optional[set] = None,
) -> bool:
    """The kernel's single source of truth for worst-case detection.

    ``variants`` are the concrete order realizations of one test (the
    caller hoists ``concrete_order_variants()`` out of its loops);
    ``factories`` the behavioural variants of one fault case.  Evaluation
    short-circuits on the first missed combination.
    """
    for variant in variants:
        for make_instance in factories:
            memory = pool.acquire(size, make_instance())
            detected = run_march(
                variant, memory, active_reads=active_reads
            ).detected
            pool.release(memory)
            if not detected:
                return False
    return True


class ExecutionBackend:
    """Strategy interface: evaluate a batch of detection tasks."""

    #: Registry key; also what ``--backend`` matches against.
    name = "abstract"

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backend resources (processes, handles)."""


class SerialBackend(ExecutionBackend):
    """In-process evaluation with pooled memories (the default)."""

    name = "serial"

    def __init__(self, pool: Optional[MemoryPool] = None) -> None:
        self.pool = pool or MemoryPool()

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        return [
            worst_case_detects(
                task.test.concrete_order_variants(),
                task.case.variants,
                task.size,
                self.pool,
            )
            for task in tasks
        ]


# -- process backend ----------------------------------------------------------
#
# Fault-case behavioural variants are closures (lambdas in the fault
# library), which do not pickle.  The worker therefore receives only an
# index; the task list itself is inherited through fork()ed address
# space via this module-level slot, and each worker keeps its own
# memory pool.  Two consequences:
#
# * the slot is process-global, so a lock serializes detect_batch
#   across backend instances/threads -- otherwise one batch could fork
#   workers that inherit another batch's task list;
# * workers snapshot the slot at fork time, so the pool of workers
#   cannot be reused across batches (a persistent pool would never see
#   a new task list).  The per-batch fork cost is why MIN_BATCH exists
#   and why ``process`` only pays off on large matrices.

_FORK_TASKS: Sequence[DetectTask] = ()
_FORK_LOCK = threading.Lock()
_WORKER_POOL: Optional[MemoryPool] = None


def _process_worker(index: int) -> bool:
    global _WORKER_POOL
    if _WORKER_POOL is None:
        _WORKER_POOL = MemoryPool()
    task = _FORK_TASKS[index]
    return worst_case_detects(
        task.test.concrete_order_variants(),
        task.case.variants,
        task.size,
        _WORKER_POOL,
    )


class ProcessBackend(ExecutionBackend):
    """Multiprocessing over fault-case chunks.

    Tasks are sharded across ``processes`` workers (default: CPU
    count).  Requires the ``fork`` start method -- behavioural variants
    are closures that cannot cross a spawn boundary -- and warns, then
    falls back to serial, where fork is unavailable.  Batches below
    ``MIN_BATCH`` (and single-CPU hosts) fall back *silently*: that
    path is hit constantly by the verifier's batch-of-one probes, so a
    warning there would be noise, not signal.
    """

    name = "process"

    #: Below this many tasks the fork+IPC overhead dominates.
    MIN_BATCH = 8

    def __init__(
        self,
        processes: Optional[int] = None,
        pool: Optional[MemoryPool] = None,
    ) -> None:
        self.processes = processes or os.cpu_count() or 1
        self._serial = SerialBackend(pool)

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        if len(tasks) < self.MIN_BATCH or self.processes < 2:
            return self._serial.detect_batch(tasks)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            warnings.warn(
                "process backend needs the fork start method;"
                " falling back to serial execution",
                RuntimeWarning,
            )
            return self._serial.detect_batch(tasks)
        global _FORK_TASKS
        with _FORK_LOCK:
            _FORK_TASKS = tuple(tasks)
            try:
                chunksize = max(1, len(tasks) // (self.processes * 4))
                with context.Pool(self.processes) as workers:
                    return workers.map(
                        _process_worker, range(len(tasks)), chunksize
                    )
            finally:
                _FORK_TASKS = ()


BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
}


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    pool: Optional[MemoryPool] = None,
) -> ExecutionBackend:
    """Turn a backend name (or ready instance) into an instance.

    The kernel's memory pool is shared with backends that accept one,
    so serial evaluation and cache-miss fills recycle the same arrays.
    """
    if backend is None:
        return SerialBackend(pool)
    if isinstance(backend, ExecutionBackend):
        return backend
    try:
        factory = BACKENDS[backend]
    except KeyError:
        raise ValueError(
            f"unknown simulation backend {backend!r};"
            f" known: {sorted(BACKENDS)}"
        ) from None
    # Pass the shared pool only to factories that declare it: probing
    # with try/except TypeError would swallow genuine constructor
    # errors and run side effects twice.
    accepts_pool = "pool" in inspect.signature(factory).parameters
    return factory(pool=pool) if accepts_pool else factory()
