"""Pluggable execution backends for the simulation kernel.

A backend executes a batch of *detection tasks* -- ``(test, fault
case, size)`` triples whose verdicts are not yet in the kernel's fault
dictionary -- and returns one worst-case boolean per task.  The kernel
never cares how: serially in-process (the default), fanned out over
worker processes, or word-packed so every fault lane of a test advances
in one bitwise operation per march step (``bitparallel``).

Every backend counts the tasks it served per execution strategy in
``served`` (e.g. the bitparallel backend splits between ``bitparallel``
and its scalar ``serial`` fallback), which the CLI's ``--sim-stats``
reports so routing decisions stay observable.

Adding a backend
----------------
Subclass :class:`ExecutionBackend`, implement ``detect_batch``, and
register the class in :data:`BACKENDS` under its ``name``; it is then
selectable through ``GeneratorConfig(backend=...)`` and the CLI's
``--backend`` flag.  ``detect_batch`` must preserve task order and must
compute exactly the worst-case semantics of
:func:`worst_case_detects` (every order variant x every behavioural
variant must be caught).
"""

from __future__ import annotations

import inspect
import multiprocessing
import os
import threading
import warnings
from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..faults.instances import FaultCase
from ..march.test import MarchTest
from ..simulator.bitengine import PackedSimulation, lane_packable_case
from ..simulator.engine import run_march
from ..simulator.tilengine import (
    NumpyUnavailableError,
    TiledSimulation,
    chunk_cases,
    numpy_available,
    require_numpy,
)
from ..telemetry import TELEMETRY_OFF
from .pool import MemoryPool


@dataclass(frozen=True)
class DetectTask:
    """One unit of kernel work: does ``test`` detect ``case`` at ``size``?"""

    test: MarchTest
    case: FaultCase
    size: int


def worst_case_detects(
    variants: Sequence[MarchTest],
    factories: Sequence[Callable[[], object]],
    size: int,
    pool: MemoryPool,
    active_reads: Optional[set] = None,
) -> bool:
    """The kernel's single source of truth for worst-case detection.

    ``variants`` are the concrete order realizations of one test (the
    caller hoists ``concrete_order_variants()`` out of its loops);
    ``factories`` the behavioural variants of one fault case.  Evaluation
    short-circuits on the first missed combination.
    """
    for variant in variants:
        for make_instance in factories:
            memory = pool.acquire(size, make_instance())
            detected = run_march(
                variant, memory, active_reads=active_reads
            ).detected
            pool.release(memory)
            if not detected:
                return False
    return True


class ExecutionBackend:
    """Strategy interface: evaluate a batch of detection tasks."""

    #: Registry key; also what ``--backend`` matches against.
    name = "abstract"

    def __init__(self) -> None:
        #: Tasks served per execution strategy, e.g. ``{"serial": 12}``
        #: or ``{"bitparallel": 60, "serial": 9}`` when a backend
        #: routes part of a batch to a fallback.  ``--sim-stats`` prints
        #: this so routing decisions are observable.
        self.served: Dict[str, int] = {}
        #: Telemetry handle, no-op by default; the owning kernel swaps
        #: in its live handle and samples ``served`` as the
        #: ``repro.backend.served`` route/fallback counters, so this
        #: slot only carries instruments ``served`` cannot express
        #: (fork chunk counts, per-batch timings).
        self.telemetry = TELEMETRY_OFF

    def count_served(self, strategy: str, tasks: int) -> None:
        if tasks:
            self.served[strategy] = self.served.get(strategy, 0) + tasks

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        raise NotImplementedError

    def close(self) -> None:
        """Release any backend resources (processes, handles)."""


class SerialBackend(ExecutionBackend):
    """In-process evaluation with pooled memories (the default)."""

    name = "serial"

    def __init__(self, pool: Optional[MemoryPool] = None) -> None:
        super().__init__()
        self.pool = pool or MemoryPool()

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        self.count_served("serial", len(tasks))
        return [
            worst_case_detects(
                task.test.concrete_order_variants(),
                task.case.variants,
                task.size,
                self.pool,
            )
            for task in tasks
        ]


# -- process backend ----------------------------------------------------------
#
# Fault-case behavioural variants are closures (lambdas in the fault
# library), which do not pickle.  The worker therefore receives only an
# index; the task list itself is inherited through fork()ed address
# space via this module-level slot, and each worker keeps its own
# memory pool.  Two consequences:
#
# * the slot is process-global, so a lock serializes detect_batch
#   across backend instances/threads -- otherwise one batch could fork
#   workers that inherit another batch's task list;
# * workers snapshot the slot at fork time, so the pool of workers
#   cannot be reused across batches (a persistent pool would never see
#   a new task list).  The per-batch fork cost is why MIN_BATCH exists
#   and why ``process`` only pays off on large matrices.

_FORK_TASKS: Sequence[DetectTask] = ()
_FORK_LOCK = threading.Lock()
_WORKER_POOL: Optional[MemoryPool] = None


def _process_worker(index: int) -> bool:
    global _WORKER_POOL
    if _WORKER_POOL is None:
        _WORKER_POOL = MemoryPool()
    task = _FORK_TASKS[index]
    return worst_case_detects(
        task.test.concrete_order_variants(),
        task.case.variants,
        task.size,
        _WORKER_POOL,
    )


class ProcessBackend(ExecutionBackend):
    """Multiprocessing over fault-case chunks.

    Tasks are sharded across ``processes`` workers (default: CPU
    count).  Requires the ``fork`` start method -- behavioural variants
    are closures that cannot cross a spawn boundary -- and warns, then
    falls back to serial, where fork is unavailable.  Batches below
    ``MIN_BATCH`` (and single-CPU hosts) fall back *silently*: that
    path is hit constantly by the verifier's batch-of-one probes, so a
    warning there would be noise, not signal.
    """

    name = "process"

    #: Below this many tasks the fork+IPC overhead dominates.
    MIN_BATCH = 8

    def __init__(
        self,
        processes: Optional[int] = None,
        pool: Optional[MemoryPool] = None,
    ) -> None:
        super().__init__()
        self.processes = processes or os.cpu_count() or 1
        self._serial = SerialBackend(pool)

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        if len(tasks) < self.MIN_BATCH or self.processes < 2:
            self.count_served("serial", len(tasks))
            return self._serial.detect_batch(tasks)
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:
            warnings.warn(
                "process backend needs the fork start method;"
                " falling back to serial execution",
                RuntimeWarning,
            )
            self.count_served("serial", len(tasks))
            return self._serial.detect_batch(tasks)
        global _FORK_TASKS
        self.count_served("process", len(tasks))
        with _FORK_LOCK:
            _FORK_TASKS = tuple(tasks)
            try:
                chunksize = max(1, len(tasks) // (self.processes * 4))
                with context.Pool(self.processes) as workers:
                    return workers.map(
                        _process_worker, range(len(tasks)), chunksize
                    )
            finally:
                _FORK_TASKS = ()


class BitParallelBackend(ExecutionBackend):
    """Word-packed evaluation: one machine word per march operation.

    Tasks whose fault case is lane-packable (see
    :mod:`repro.simulator.bitengine`) are grouped by (test, size) and
    evaluated in a single packed run per concrete order variant --
    every fault lane advances with O(1) bitwise operations per march
    step instead of O(n) scalar steps per fault instance.  Unpackable
    cases (unknown user-defined instance types, composite multi-defect
    injections) fall back to the scalar serial backend; ``served``
    records how many tasks each side handled.

    Packed simulations are cached per (case names, size) -- case names
    are the repository-wide canonical fault identity -- so the
    generator's batch-of-one verifier probes reuse one lane plan across
    thousands of candidate tests.
    """

    name = "bitparallel"

    #: Bound of the lane-plan cache (LRU beyond it).
    PLAN_CACHE_SIZE = 128

    def __init__(self, pool: Optional[MemoryPool] = None) -> None:
        super().__init__()
        self._serial = SerialBackend(pool)
        self._simulations: "OrderedDict[Tuple, PackedSimulation]" = (
            OrderedDict()
        )
        # Packability memo keyed by case name (the canonical fault
        # identity): the verifier probes the same few cases against
        # thousands of candidate tests.
        self._packable: Dict[str, bool] = {}

    def _is_packable(self, case: FaultCase) -> bool:
        verdict = self._packable.get(case.name)
        if verdict is None:
            verdict = lane_packable_case(case)
            self._packable[case.name] = verdict
        return verdict

    def _simulation(
        self, cases: Sequence[FaultCase], size: int
    ) -> PackedSimulation:
        key = (tuple(case.name for case in cases), size)
        simulation = self._simulations.get(key)
        if simulation is None:
            simulation = PackedSimulation(cases, size)
            self._simulations[key] = simulation
            while len(self._simulations) > self.PLAN_CACHE_SIZE:
                self._simulations.popitem(last=False)
        else:
            self._simulations.move_to_end(key)
        return simulation

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        results: List[Optional[bool]] = [None] * len(tasks)
        packed_groups: "OrderedDict[Tuple[MarchTest, int], List[int]]" = (
            OrderedDict()
        )
        fallback_indices: List[int] = []
        for index, task in enumerate(tasks):
            if self._is_packable(task.case):
                packed_groups.setdefault((task.test, task.size), []).append(
                    index
                )
            else:
                fallback_indices.append(index)
        for (test, size), indices in packed_groups.items():
            cases = [tasks[i].case for i in indices]
            verdicts = self._simulation(cases, size).worst_case_verdicts(test)
            for i, verdict in zip(indices, verdicts):
                results[i] = verdict
        self.count_served(
            "bitparallel", len(tasks) - len(fallback_indices)
        )
        if fallback_indices:
            self.count_served("serial", len(fallback_indices))
            fallback = self._serial.detect_batch(
                [tasks[i] for i in fallback_indices]
            )
            for i, verdict in zip(fallback_indices, fallback):
                results[i] = verdict
        return results  # type: ignore[return-value]


# -- NumPy lane-tiled backend --------------------------------------------------
#
# Same fork-slot pattern as ProcessBackend: chunk simulations are built
# in the parent (so the one-time lane-plan compilation is shared) and
# inherited by fork()ed workers, which return plain verdict lists.

_TILE_FORK: Tuple = ()
_TILE_LOCK = threading.Lock()


def _tile_worker(index: int) -> List[bool]:
    simulations, test = _TILE_FORK
    return simulations[index].worst_case_verdicts(test)


class BitParallelNumpyBackend(ExecutionBackend):
    """Lane-tiled evaluation on fixed-width uint64 NumPy tiles.

    Routing is identical to :class:`BitParallelBackend` -- packable
    cases ride the packed path, the rest fall back to the scalar serial
    backend -- but the packed path runs on
    :class:`~repro.simulator.tilengine.TiledSimulation`: per-op cost is
    a constant number of vectorized kernels over ``ceil(lanes/64)``
    uint64 words instead of interpreter-level bignum arithmetic, which
    is what makes the size-64/size-256 fault populations tractable.

    Above :data:`MIN_FANOUT_LANES` total lanes the case set is split
    into one contiguous tile range per worker process and composed with
    the process backend's fork-slot pattern; each worker owns its chunk
    simulation (own fault-free reference lane) and the concatenated
    verdict lists are byte-identical to the single-simulation run.
    Requires NumPy (the ``[fast]`` extra): construction raises
    :class:`~repro.simulator.tilengine.NumpyUnavailableError` without
    it, and :func:`resolve_backend` degrades to ``bitparallel`` with a
    one-line warning.
    """

    name = "bitparallel-np"

    #: Bound of the tiled-plan cache (LRU beyond it).
    PLAN_CACHE_SIZE = 128

    #: Below this many total lanes one process wins: fork + IPC costs
    #: more than the whole vectorized run.
    MIN_FANOUT_LANES = 4096

    def __init__(
        self,
        pool: Optional[MemoryPool] = None,
        processes: Optional[int] = None,
    ) -> None:
        require_numpy(f"the {self.name!r} execution backend")
        super().__init__()
        self.processes = processes or os.cpu_count() or 1
        self._serial = SerialBackend(pool)
        self._simulations: "OrderedDict[Tuple, List[TiledSimulation]]" = (
            OrderedDict()
        )
        self._packable: Dict[str, bool] = {}

    def _is_packable(self, case: FaultCase) -> bool:
        verdict = self._packable.get(case.name)
        if verdict is None:
            verdict = lane_packable_case(case)
            self._packable[case.name] = verdict
        return verdict

    def _fanout(self, cases: Sequence[FaultCase]) -> int:
        """How many chunk simulations to build for this case set."""
        if self.processes < 2:
            return 1
        lanes = 1 + sum(len(case.variants) for case in cases)
        if lanes < self.MIN_FANOUT_LANES:
            return 1
        try:
            multiprocessing.get_context("fork")
        except ValueError:
            return 1
        return self.processes

    def _simulation(
        self, cases: Sequence[FaultCase], size: int
    ) -> List[TiledSimulation]:
        key = (tuple(case.name for case in cases), size)
        simulations = self._simulations.get(key)
        if simulations is None:
            simulations = [
                TiledSimulation(chunk, size)
                for chunk in chunk_cases(cases, self._fanout(cases))
            ]
            self._simulations[key] = simulations
            while len(self._simulations) > self.PLAN_CACHE_SIZE:
                self._simulations.popitem(last=False)
        else:
            self._simulations.move_to_end(key)
        return simulations

    def _verdicts(
        self, simulations: List[TiledSimulation], test: MarchTest
    ) -> Tuple[List[bool], str]:
        if len(simulations) == 1:
            return simulations[0].worst_case_verdicts(test), self.name
        if self.telemetry.enabled:
            self.telemetry.counter(
                "repro.backend.chunks", backend=self.name
            ).inc(len(simulations))
        global _TILE_FORK
        context = multiprocessing.get_context("fork")
        with _TILE_LOCK:
            _TILE_FORK = (simulations, test)
            try:
                with context.Pool(len(simulations)) as workers:
                    chunks = workers.map(
                        _tile_worker, range(len(simulations))
                    )
            finally:
                _TILE_FORK = ()
        verdicts: List[bool] = []
        for chunk in chunks:
            verdicts.extend(chunk)
        return verdicts, f"{self.name}-fork"

    def detect_batch(self, tasks: Sequence[DetectTask]) -> List[bool]:
        results: List[Optional[bool]] = [None] * len(tasks)
        packed_groups: "OrderedDict[Tuple[MarchTest, int], List[int]]" = (
            OrderedDict()
        )
        fallback_indices: List[int] = []
        for index, task in enumerate(tasks):
            if self._is_packable(task.case):
                packed_groups.setdefault((task.test, task.size), []).append(
                    index
                )
            else:
                fallback_indices.append(index)
        for (test, size), indices in packed_groups.items():
            cases = [tasks[i].case for i in indices]
            verdicts, strategy = self._verdicts(
                self._simulation(cases, size), test
            )
            self.count_served(strategy, len(indices))
            for i, verdict in zip(indices, verdicts):
                results[i] = verdict
        if fallback_indices:
            self.count_served("serial", len(fallback_indices))
            fallback = self._serial.detect_batch(
                [tasks[i] for i in fallback_indices]
            )
            for i, verdict in zip(fallback_indices, fallback):
                results[i] = verdict
        return results  # type: ignore[return-value]


BACKENDS: Dict[str, Callable[[], ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ProcessBackend.name: ProcessBackend,
    BitParallelBackend.name: BitParallelBackend,
    BitParallelNumpyBackend.name: BitParallelNumpyBackend,
}


def available_backends() -> Dict[str, bool]:
    """Backend name -> whether it can be constructed right now.

    Only ``bitparallel-np`` has an environment prerequisite (NumPy, the
    ``[fast]`` extra); every other registered backend is always
    available.
    """
    return {
        name: name != BitParallelNumpyBackend.name or numpy_available()
        for name in BACKENDS
    }


def backend_choices_text() -> str:
    """The valid ``--backend`` choices with availability annotations."""
    parts = []
    for name, available in sorted(available_backends().items()):
        parts.append(
            name if available
            else f"{name} (unavailable: NumPy is not installed)"
        )
    return ", ".join(parts)


def validate_backend_name(backend: str) -> str:
    """Fail fast on an unknown backend name with the full choice list.

    Called by ``GeneratorConfig``, the CLI and campaign-spec parsing so
    a typo'd backend surfaces as one clear error at configuration time
    instead of deep inside kernel construction.  An *available* name is
    returned unchanged; ``bitparallel-np`` without NumPy is still a
    valid name (the kernel degrades to ``bitparallel`` with a warning
    when it is actually resolved).
    """
    if backend in BACKENDS:
        return backend
    raise ValueError(
        f"unknown simulation backend {backend!r};"
        f" valid choices: {backend_choices_text()}"
    )


def resolve_backend(
    backend: "str | ExecutionBackend | None",
    pool: Optional[MemoryPool] = None,
) -> ExecutionBackend:
    """Turn a backend name (or ready instance) into an instance.

    The kernel's memory pool is shared with backends that accept one,
    so serial evaluation and cache-miss fills recycle the same arrays.
    Requesting ``bitparallel-np`` without NumPy installed degrades to
    the pure-Python ``bitparallel`` engine with a one-line warning --
    same results, just without the vectorized tiles.
    """
    if backend is None:
        return SerialBackend(pool)
    if isinstance(backend, ExecutionBackend):
        return backend
    factory = BACKENDS.get(validate_backend_name(backend))
    # Pass the shared pool only to factories that declare it: probing
    # with try/except TypeError would swallow genuine constructor
    # errors and run side effects twice.
    accepts_pool = "pool" in inspect.signature(factory).parameters
    try:
        return factory(pool=pool) if accepts_pool else factory()
    except NumpyUnavailableError as error:
        warnings.warn(
            f"{error}; falling back to the pure-Python"
            f" {BitParallelBackend.name!r} backend",
            RuntimeWarning,
        )
        return BitParallelBackend(pool)
