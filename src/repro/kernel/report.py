"""Simulation outcome containers shared by every kernel consumer.

:class:`SimulationReport` used to live in
:mod:`repro.simulator.faultsim`; it is now owned by the kernel (the
single entry point for fault simulation) and re-exported from its old
home for compatibility.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import List

from ..march.test import MarchTest


@dataclass
class SimulationReport:
    """Outcome of simulating a test against a set of fault cases."""

    test: MarchTest
    size: int
    detected: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missed

    @property
    def coverage(self) -> float:
        """Detected fraction; ``0.0`` for an empty fault-case list.

        An empty run detects nothing, so it must not masquerade as full
        coverage (the producer emits an :class:`EmptyFaultListWarning`
        at simulation time).
        """
        total = len(self.detected) + len(self.missed)
        if total == 0:
            return 0.0
        return len(self.detected) / total

    def __str__(self) -> str:
        return (
            f"{self.test.name or self.test}: "
            f"{len(self.detected)}/{len(self.detected) + len(self.missed)}"
            f" fault cases detected"
        )


class EmptyFaultListWarning(UserWarning):
    """Simulation was asked to run against zero fault cases."""


def warn_if_empty(cases) -> None:
    """Emit :class:`EmptyFaultListWarning` when ``cases`` is empty."""
    if not cases:
        warnings.warn(
            "simulating against an empty fault-case list: coverage is 0.0,"
            " not full",
            EmptyFaultListWarning,
            stacklevel=3,
        )
