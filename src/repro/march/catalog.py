"""Catalog of March tests from the literature.

These are the "equivalent known March tests" column of the paper's
Table 3 (MATS, MATS+, MATS++, March X, March C-) plus other classics
used in tests and benchmarks.  Notation follows van de Goor [1].
"""

from __future__ import annotations

from typing import Dict

from .test import MarchTest, parse_march


def _make(name: str, notation: str) -> MarchTest:
    return parse_march(notation, name)


#: MATS: the minimal stuck-at test (4n).
MATS = _make("MATS", "{any(w0); any(r0,w1); any(r1)}")

#: MATS+: stuck-at + address decoder faults (5n).
MATS_PLUS = _make("MATS+", "{any(w0); up(r0,w1); down(r1,w0)}")

#: MATS++: SAF + TF + ADF (6n).
MATS_PLUS_PLUS = _make("MATS++", "{any(w0); up(r0,w1); down(r1,w0,r0)}")

#: March X: SAF + TF + ADF + inversion coupling (6n).
MARCH_X = _make("MarchX", "{any(w0); up(r0,w1); down(r1,w0); any(r0)}")

#: March Y: March X + linked transition faults (8n).
MARCH_Y = _make("MarchY", "{any(w0); up(r0,w1,r1); down(r1,w0,r0); any(r0)}")

#: March C-: SAF + TF + ADF + unlinked coupling faults (10n).
MARCH_C_MINUS = _make(
    "MarchC-",
    "{any(w0); up(r0,w1); up(r1,w0); down(r0,w1); down(r1,w0); any(r0)}",
)

#: March C: the original Marinescu test (11n; contains a redundant read).
MARCH_C = _make(
    "MarchC",
    "{any(w0); up(r0,w1); up(r1,w0); any(r0); down(r0,w1); down(r1,w0); any(r0)}",
)

#: March A: 3-coupling oriented test (15n).
MARCH_A = _make(
    "MarchA",
    "{any(w0); up(r0,w1,w0,w1); up(r1,w0,w1);"
    " down(r1,w0,w1,w0); down(r0,w1,w0)}",
)

#: March B: March A extended for linked faults (17n).
MARCH_B = _make(
    "MarchB",
    "{any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1);"
    " down(r1,w0,w1,w0); down(r0,w1,w0)}",
)

#: March LR: realistic linked faults (14n).
MARCH_LR = _make(
    "MarchLR",
    "{any(w0); down(r0,w1); up(r1,w0,r0,w1); up(r1,w0);"
    " up(r0,w1,r1,w0); up(r0)}",
)

#: MSCAN: the naive zero-one test (4n, SAF only, no AF guarantee).
MSCAN = _make("MSCAN", "{any(w0); any(r0); any(w1); any(r1)}")

#: March G: March B extended with retention pauses (23n + 2 delays).
MARCH_G = _make(
    "MarchG",
    "{any(w0); up(r0,w1,r1,w0,r0,w1); up(r1,w0,w1);"
    " down(r1,w0,w1,w0); down(r0,w1,w0);"
    " Del; any(r0,w1,r1); Del; any(r1,w0,r0)}",
)

#: All catalog tests by name.
CATALOG: Dict[str, MarchTest] = {
    t.name: t
    for t in (
        MATS,
        MATS_PLUS,
        MATS_PLUS_PLUS,
        MARCH_X,
        MARCH_Y,
        MARCH_C_MINUS,
        MARCH_C,
        MARCH_A,
        MARCH_B,
        MARCH_LR,
        MARCH_G,
        MSCAN,
    )
}


def by_name(name: str) -> MarchTest:
    """Look up a known test, case-insensitively.

    >>> by_name("mats+").complexity
    5
    """
    for key, value in CATALOG.items():
        if key.lower() == name.strip().lower():
            return value
    raise KeyError(f"unknown march test {name!r}; known: {sorted(CATALOG)}")
