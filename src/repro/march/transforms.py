"""Detection-preserving March test transformations.

Two classic symmetries of March test theory, usable to normalize or
diversify tests:

* :func:`mirror` -- reverse every address order (``⇑`` <-> ``⇓``).
  Detection of a fault list is preserved whenever the list is
  *direction-symmetric* (contains the aggressor>victim twin of every
  aggressor<victim fault) -- true of every library model, since they
  enumerate both directions.
* :func:`complement` -- swap all data values (``w0`` <-> ``w1``,
  ``r0`` <-> ``r1``).  Detection is preserved for *polarity-symmetric*
  fault lists (SA0 with SA1, ``<up,0>`` with ``<down,1>``, ...).

Both claims are validated empirically in
``tests/march/test_transforms.py``; :func:`is_direction_symmetric` and
:func:`is_polarity_symmetric` check the preconditions on a fault list's
behavioural cases.
"""

from __future__ import annotations

from typing import List, Union

from .element import AddressOrder, DelayElement, MarchElement, MarchOp
from .test import MarchTest

Element = Union[MarchElement, DelayElement]

_MIRROR = {
    AddressOrder.UP: AddressOrder.DOWN,
    AddressOrder.DOWN: AddressOrder.UP,
    AddressOrder.ANY: AddressOrder.ANY,
}


def mirror(test: MarchTest) -> MarchTest:
    """Reverse every element's address order.

    >>> from repro.march.test import parse_march
    >>> str(mirror(parse_march("{up(r0,w1); down(r1); any(w0)}")))
    '{⇓(r0,w1); ⇑(r1); ⇕(w0)}'
    """
    elements: List[Element] = [
        e.with_order(_MIRROR[e.order]) if isinstance(e, MarchElement) else e
        for e in test.elements
    ]
    return MarchTest(tuple(elements), f"{test.name}~mirror" if test.name else "")


def complement(test: MarchTest) -> MarchTest:
    """Swap the data polarity of every operation.

    >>> from repro.march.test import parse_march
    >>> str(complement(parse_march("{any(w0); up(r0,w1)}")))
    '{⇕(w1); ⇑(r1,w0)}'
    """
    elements: List[Element] = []
    for element in test.elements:
        if isinstance(element, DelayElement):
            elements.append(element)
            continue
        ops = tuple(
            MarchOp(op.kind, None if op.value is None else 1 - op.value)
            for op in element.ops
        )
        elements.append(MarchElement(element.order, ops))
    return MarchTest(
        tuple(elements), f"{test.name}~complement" if test.name else ""
    )


def is_involution_pair(test: MarchTest, transform) -> bool:
    """Transforms are involutions: applying twice is the identity."""
    return str(transform(transform(test))) == str(test)
