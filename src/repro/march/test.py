"""March tests: sequences of March elements with notation support.

The textual notation follows the literature::

    {⇕(w0); ⇑(r0,w1); ⇓(r1,w0); ⇕(r0)}

ASCII aliases are accepted when parsing (``any``/``up``/``down`` or
``^``/``c`` for the order symbols).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from .element import (
    _ORDER_ALIASES,
    AddressOrder,
    DelayElement,
    MarchElement,
    MarchOp,
    parse_march_op,
)

Element = Union[MarchElement, DelayElement]


@dataclass(frozen=True)
class MarchTest:
    """An ordered sequence of March elements."""

    elements: Tuple[Element, ...]
    name: str = ""

    def __post_init__(self) -> None:
        if not self.elements:
            raise ValueError("march test needs at least one element")

    # -- metrics ---------------------------------------------------------------

    @property
    def complexity(self) -> int:
        """Total operations per cell -- the March test complexity [1]."""
        return sum(e.complexity for e in self.elements)

    @property
    def complexity_label(self) -> str:
        """The conventional ``<k>n`` complexity notation, e.g. ``"10n"``."""
        return f"{self.complexity}n"

    @property
    def march_elements(self) -> Tuple[MarchElement, ...]:
        return tuple(
            e for e in self.elements if isinstance(e, MarchElement)
        )

    def operation_count(self, size: int) -> int:
        """Total operations executed on an n-cell memory."""
        return self.complexity * size

    # -- transformations -------------------------------------------------------

    def renamed(self, name: str) -> "MarchTest":
        return MarchTest(self.elements, name)

    def concrete_order_variants(self) -> Tuple["MarchTest", ...]:
        """Every realization of the ``ANY`` orders as UP/DOWN.

        A test advertising ``⇕`` elements must detect its faults under
        *either* realization; the simulator checks all combinations.

        The enumeration is memoized per instance (the test is frozen, so
        the realization set can never change): simulating the same test
        against many fault cases touches the variants once instead of
        re-enumerating ``2**k`` permutations per case.
        """
        cached = self.__dict__.get("_order_variants")
        if cached is not None:
            return cached
        variants = self._enumerate_order_variants()
        # Frozen dataclass: write the memo through __dict__ (allowed --
        # field assignment is what __setattr__ blocks, and __eq__/__hash__
        # only consider declared fields).
        self.__dict__["_order_variants"] = variants
        return variants

    def _enumerate_order_variants(self) -> Tuple["MarchTest", ...]:
        variants: List[Tuple[Element, ...]] = [()]
        for elem in self.elements:
            if (
                isinstance(elem, MarchElement)
                and elem.order is AddressOrder.ANY
            ):
                choices = [
                    elem.with_order(AddressOrder.UP),
                    elem.with_order(AddressOrder.DOWN),
                ]
            else:
                choices = [elem]
            variants = [prefix + (c,) for prefix in variants for c in choices]
        return tuple(MarchTest(v, self.name) for v in variants)

    # -- notation ----------------------------------------------------------------

    def __str__(self) -> str:
        body = "; ".join(str(e) for e in self.elements)
        return "{" + body + "}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        label = f" {self.name}" if self.name else ""
        return f"MarchTest{label} {self}"

    def __iter__(self):
        return iter(self.elements)

    def __len__(self) -> int:
        return len(self.elements)


_ELEMENT_RE = re.compile(
    r"(?P<order>⇑|⇓|⇕|up|down|any|\^|c)\s*\(\s*(?P<body>[^)]*)\s*\)"
    r"|(?P<delay>Del|T)",
    re.IGNORECASE,
)


def parse_march(text: str, name: str = "") -> MarchTest:
    """Parse the textual March notation.

    >>> t = parse_march("{any(w0); up(r0,w1); down(r1,w0); any(r0)}")
    >>> t.complexity
    6
    """
    elements: List[Element] = []
    for match in _ELEMENT_RE.finditer(text):
        if match.group("delay"):
            elements.append(DelayElement())
            continue
        order_text = match.group("order").lower()
        order = _ORDER_ALIASES[order_text]
        body = match.group("body").strip()
        if not body:
            raise ValueError("march element with no operations")
        ops = tuple(
            parse_march_op(tok) for tok in body.split(",") if tok.strip()
        )
        elements.append(MarchElement(order, ops))
    if not elements:
        raise ValueError(f"no march elements found in {text!r}")
    return MarchTest(tuple(elements), name)


def march(*element_specs: Iterable, name: str = "") -> MarchTest:
    """Build a test from ``("up", "r0", "w1")``-style element specs."""
    from .element import element as build_element

    elements: List[Element] = []
    for spec in element_specs:
        if isinstance(spec, (MarchElement, DelayElement)):
            elements.append(spec)
        elif isinstance(spec, str) and spec in ("T", "Del"):
            elements.append(DelayElement())
        else:
            parts = tuple(spec)
            elements.append(build_element(parts[0], *parts[1:]))
    return MarchTest(tuple(elements), name)
