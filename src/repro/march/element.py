"""March elements.

A March element is a sequence of operations applied to every memory
cell, in ascending (``up``), descending (``down``) or arbitrary
(``any``) address order, before moving to the next cell [1].  Element
operations are *cell-relative*: ``w0`` writes 0 to the current cell,
``r1`` reads the current cell and verifies the value is 1.

A :class:`DelayElement` models the retention pause ``T`` used by data
retention faults; it is applied once (not per cell).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple


class AddressOrder(enum.Enum):
    """Addressing order of a March element."""

    UP = "up"
    DOWN = "down"
    ANY = "any"

    @property
    def symbol(self) -> str:
        return {"up": "⇑", "down": "⇓", "any": "⇕"}[self.value]

    def addresses(self, size: int) -> range:
        """Concrete address sequence for an n-cell memory.

        ``ANY`` is realized ascending; callers validating a test must
        check both realizations (see the simulator).
        """
        if self is AddressOrder.DOWN:
            return range(size - 1, -1, -1)
        return range(size)


_ORDER_ALIASES = {
    "⇑": AddressOrder.UP,
    "up": AddressOrder.UP,
    "^": AddressOrder.UP,
    "⇓": AddressOrder.DOWN,
    "down": AddressOrder.DOWN,
    "⇕": AddressOrder.ANY,
    "any": AddressOrder.ANY,
    "c": AddressOrder.ANY,  # the paper's symbol for either order
}


@dataclass(frozen=True)
class MarchOp:
    """One cell-relative March operation: ``w0``, ``w1``, ``r0``, ``r1``
    or a plain ``r`` (read without verification)."""

    kind: str  # "r" or "w"
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in ("r", "w"):
            raise ValueError("march op kind must be 'r' or 'w'")
        if self.kind == "w" and self.value not in (0, 1):
            raise ValueError("march write needs a value in {0, 1}")
        if self.kind == "r" and self.value not in (None, 0, 1):
            raise ValueError("march read value must be None, 0 or 1")

    @property
    def is_read(self) -> bool:
        return self.kind == "r"

    @property
    def is_write(self) -> bool:
        return self.kind == "w"

    def __str__(self) -> str:
        if self.value is None:
            return self.kind
        return f"{self.kind}{self.value}"


def r0() -> MarchOp:
    return MarchOp("r", 0)


def r1() -> MarchOp:
    return MarchOp("r", 1)


def w0() -> MarchOp:
    return MarchOp("w", 0)


def w1() -> MarchOp:
    return MarchOp("w", 1)


def parse_march_op(text: str) -> MarchOp:
    """Parse ``"w0"``, ``"r1"``, ``"r"`` ...

    >>> parse_march_op("w1")
    MarchOp(kind='w', value=1)
    """
    text = text.strip()
    if not text or text[0] not in "rw":
        raise ValueError(f"malformed march operation {text!r}")
    if len(text) == 1:
        if text == "r":
            return MarchOp("r", None)
        raise ValueError("march write needs a value")
    return MarchOp(text[0], int(text[1:]))


@dataclass(frozen=True)
class MarchElement:
    """An address order plus a non-empty operation sequence."""

    order: AddressOrder
    ops: Tuple[MarchOp, ...]

    def __post_init__(self) -> None:
        if not self.ops:
            raise ValueError("march element needs at least one operation")

    @property
    def complexity(self) -> int:
        """Number of operations applied per cell."""
        return len(self.ops)

    def with_order(self, order: AddressOrder) -> "MarchElement":
        return MarchElement(order, self.ops)

    def __str__(self) -> str:
        body = ",".join(str(op) for op in self.ops)
        return f"{self.order.symbol}({body})"

    def __len__(self) -> int:
        return len(self.ops)


@dataclass(frozen=True)
class DelayElement:
    """A retention pause (the ``T`` input), applied once."""

    @property
    def complexity(self) -> int:
        return 0

    def __str__(self) -> str:
        return "Del"


def element(order_text: str, *ops_text: str) -> MarchElement:
    """Convenience constructor: ``element("up", "r0", "w1")``."""
    key = order_text.strip().lower()
    if key not in _ORDER_ALIASES:
        raise ValueError(f"unknown address order {order_text!r}")
    return MarchElement(
        _ORDER_ALIASES[key], tuple(parse_march_op(t) for t in ops_text)
    )
