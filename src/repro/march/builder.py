"""March test generation from a minimized GTS (paper, Section 4.3).

Segmentation reconstructs the paper's Rules 1-5:

* a Red-marked symbol opens a new March element; the matching
  Blue-marked symbol closes it (Rule 2);
* the wait symbol ``T`` becomes a :class:`DelayElement` of its own;
* addressing order: an element whose first symbol is tagged on the
  lower-address cell ``i`` marches up (Rule 3), on ``j`` marches down
  (Rule 4); cell-agnostic (merged) first symbols leave the order free
  (Rule 5, the paper's ``c`` order).

After segmentation the expected values of all reads are *recomputed*
from the per-cell operation stream (:func:`normalize_expectations`), so
the emitted test is well-formed by construction; fault detection is
then established by simulation (Section 6).

:func:`realize_pattern_blocks` provides the direct, guaranteed
realization of a single test pattern as March elements -- used by the
generator's repair fallback and by the sequential baseline strategy.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from ..memory.state import DASH
from ..patterns.test_pattern import TestPattern
from ..sequence.gts import Color, GlobalTestSequence, GTSSymbol
from .element import AddressOrder, DelayElement, MarchElement, MarchOp
from .test import MarchTest

Element = Union[MarchElement, DelayElement]


def _symbol_march_op(symbol: GTSSymbol) -> MarchOp:
    op = symbol.op
    if op.is_write:
        return MarchOp("w", op.value)
    return MarchOp("r", op.value)


def _order_for(symbol: GTSSymbol) -> AddressOrder:
    if symbol.cell is None:
        return AddressOrder.ANY
    if symbol.cell == "i":
        return AddressOrder.UP
    return AddressOrder.DOWN


def segment(minimized: GlobalTestSequence) -> MarchTest:
    """Split a minimized symbol stream into March elements (Rules 1-5)."""
    elements: List[Element] = []
    current: List[GTSSymbol] = []

    def flush() -> None:
        if not current:
            return
        ops = tuple(_symbol_march_op(s) for s in current)
        elements.append(MarchElement(_order_for(current[0]), ops))
        current.clear()

    for symbol in minimized.symbols:
        if symbol.op.is_wait:
            flush()
            elements.append(DelayElement())
            continue
        if symbol.color is Color.RED:
            flush()
            current.append(symbol)
            continue
        current.append(symbol)
        if symbol.color is Color.BLUE:
            flush()
    flush()
    if not elements:
        raise ValueError("empty GTS cannot produce a March test")
    return MarchTest(tuple(elements))


def normalize_expectations(test: MarchTest) -> Optional[MarchTest]:
    """Recompute every read's expected value from the op stream.

    The per-cell operation stream of a March test is the concatenation
    of its elements' operations; on a fault-free memory each cell
    tracks it identically.  Reads before the first write observe the
    non-initialized value and make the test malformed: ``None`` is
    returned in that case.
    """
    value: object = DASH
    new_elements: List[Element] = []
    for element in test.elements:
        if isinstance(element, DelayElement):
            new_elements.append(element)
            continue
        ops: List[MarchOp] = []
        for op in element.ops:
            if op.is_write:
                value = op.value
                ops.append(op)
            else:
                if value == DASH:
                    return None
                ops.append(MarchOp("r", value))
        new_elements.append(MarchElement(element.order, tuple(ops)))
    return MarchTest(tuple(new_elements), test.name)


def build_march(minimized: GlobalTestSequence, name: str = "") -> Optional[MarchTest]:
    """Segment + normalize; None when the stream is not realizable."""
    test = segment(minimized)
    normalized = normalize_expectations(test)
    if normalized is None:
        return None
    return normalized.renamed(name)


# ---------------------------------------------------------------------------
# Direct per-pattern realization (repair fallback / sequential baseline)
# ---------------------------------------------------------------------------


def realize_pattern_blocks(pattern: TestPattern) -> Tuple[Element, ...]:
    """March elements realizing one test pattern unconditionally.

    The recipe places the observation read *before* the element's
    writes so the faulty value is sampled ahead of any masking write,
    and picks the address order that processes the aggressor first.
    """
    cells = pattern.cells
    observe_cell = pattern.observe.cell
    expected = pattern.observe.value
    excite = pattern.excite

    init = pattern.init
    if excite is not None and excite.is_wait:
        # Retention pattern: set, wait, read.
        target = init[observe_cell]
        if target == DASH:
            target = expected
        return (
            MarchElement(AddressOrder.ANY, (MarchOp("w", target),)),
            DelayElement(),
            MarchElement(AddressOrder.ANY, (MarchOp("r", expected),)),
        )

    other_cells = [c for c in cells if c != observe_cell]
    single_cell = excite is None or excite.cell in (None, observe_cell)
    if single_cell and all(init[c] == DASH for c in other_cells):
        # Cell-symmetric pattern: one stream serves every cell.
        ops: List[MarchOp] = []
        base = init[observe_cell]
        if base != DASH:
            ops.append(MarchOp("w", base))
        if excite is not None:
            if excite.is_write:
                ops.append(MarchOp("w", excite.value))
            else:
                ops.append(MarchOp("r", excite.value))
        ops.append(MarchOp("r", expected))
        return (MarchElement(AddressOrder.ANY, tuple(ops)),)

    vic = observe_cell
    agg = (
        excite.cell
        if excite is not None and excite.cell is not None
        else other_cells[0]
    )

    def first_order(cell: str) -> AddressOrder:
        return AddressOrder.UP if cell == "i" else AddressOrder.DOWN

    def excite_ops() -> List[MarchOp]:
        if excite is None:
            return []
        if excite.is_write:
            return [MarchOp("w", excite.value)]
        return [MarchOp("r", excite.value)]

    if agg == vic:
        # Excitation and observation on the same cell; the other cell
        # only supplies state context that must hold at excite time.
        # The prologue writes the context value to *every* cell, so a
        # separate victim-establishing write is only needed when the
        # victim's init differs (re-writing it could mask a fired
        # non-transition excitation).
        context = other_cells[0]
        context_init = init[context]
        vic_init = init[vic]
        body: List[MarchOp] = []
        if vic_init != DASH and vic_init != context_init:
            body.append(MarchOp("w", vic_init))
        body.extend(excite_ops())
        body.append(MarchOp("r", expected))
        prologue: Tuple[Element, ...] = ()
        if context_init != DASH:
            prologue = (
                MarchElement(AddressOrder.ANY, (MarchOp("w", context_init),)),
            )
        return prologue + (MarchElement(first_order(vic), tuple(body)),)

    # Aggressor and victim differ: march the aggressor first so the
    # victim still holds its initialization value at excite time, and
    # read the victim before any masking write reaches it.
    vic_init = init[vic]
    if vic_init == DASH:
        vic_init = expected
    agg_init = init[agg]
    body = [MarchOp("r", vic_init)]
    if agg_init not in (DASH, vic_init):
        body.append(MarchOp("w", agg_init))
    body.extend(excite_ops())
    return (
        MarchElement(AddressOrder.ANY, (MarchOp("w", vic_init),)),
        MarchElement(first_order(agg), tuple(body)),
    )


def sequential_march(
    patterns: Sequence[TestPattern], name: str = "sequential"
) -> Optional[MarchTest]:
    """Concatenate per-pattern realizations (the safe construction).

    A guard read is prepended to every element (after the very first)
    that starts with a write: a setup or excitation write may
    accidentally *excite* another pattern's fault and a later write of
    the same value would mask it before any observation -- the guard
    read samples the cell first (its expected value is recomputed by
    normalization).  Long but dependable; the optimizer shrinks it
    afterwards.
    """
    elements: List[Element] = []
    for pattern in patterns:
        for block in realize_pattern_blocks(pattern):
            if (
                elements
                and isinstance(block, MarchElement)
                and block.ops[0].is_write
            ):
                block = MarchElement(
                    block.order, (MarchOp("r", 0),) + block.ops
                )
            elements.append(block)
    if not elements:
        return None
    test = MarchTest(tuple(elements), name)
    return normalize_expectations(test)
