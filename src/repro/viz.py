"""Graphviz (DOT) renderers for the paper's figures.

* :func:`mealy_dot` -- a Mealy machine as a state diagram (Figures 1-2;
  edges with the same endpoints are merged and labelled ``in / out``);
* :func:`bfe_dot` -- the reduced diagram showing only a BFE's deviating
  edges (Figure 3);
* :func:`tpg_dot` -- the weighted Test Pattern Graph (Figure 4).

Only text is produced; render with ``dot -Tpng`` wherever Graphviz is
available.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Tuple

from .faults.bfe import BasicFaultEffect, BFEKind
from .memory.mealy import MealyMachine
from .patterns.tpg import TestPatternGraph


def _quote(text: str) -> str:
    return '"' + text.replace('"', r"\"") + '"'


def mealy_dot(
    machine: MealyMachine,
    name: str = "M",
    include_unknown_states: bool = False,
) -> str:
    """Render a Mealy machine as DOT (the Figure 1 diagram).

    Transitions sharing source, target and output are folded into one
    edge labelled ``(op1, op2, ...) / out`` exactly as the paper draws
    them.
    """
    grouped: Dict[Tuple[str, str, str], List[str]] = defaultdict(list)
    for (state, op), target in machine.delta.items():
        if not include_unknown_states and not state.is_concrete:
            continue
        output = machine.lam[(state, op)]
        grouped[(str(state), str(target), str(output))].append(str(op))

    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    states = sorted({src for (src, _, _) in grouped} |
                    {dst for (_, dst, _) in grouped})
    for state in states:
        lines.append(f"  {_quote(state)};")
    for (src, dst, out), ops in sorted(grouped.items()):
        ops_text = ", ".join(sorted(ops))
        if len(ops) > 1:
            ops_text = f"({ops_text})"
        lines.append(
            f"  {_quote(src)} -> {_quote(dst)}"
            f" [label={_quote(f'{ops_text} / {out}')}];"
        )
    lines.append("}")
    return "\n".join(lines)


def bfe_dot(bfe: BasicFaultEffect, name: str = "BFE") -> str:
    """Render only a BFE's deviating edges (the Figure 3 style)."""
    lines = [f"digraph {name} {{", "  rankdir=LR;", "  node [shape=circle];"]
    for state in bfe.state.completions():
        if bfe.kind is BFEKind.DELTA:
            target = bfe.concrete_faulty_next(state)
            label = f"{bfe.op} / -"
        else:
            target = state
            label = f"{bfe.op} / {bfe.faulty_output}"
        lines.append(
            f"  {_quote(str(state))} -> {_quote(str(target))}"
            f" [label={_quote(label)}, color=red, penwidth=2];"
        )
        good = state.apply(bfe.op)
        if bfe.kind is BFEKind.DELTA and good != target:
            lines.append(
                f"  {_quote(str(state))} -> {_quote(str(good))}"
                f" [label={_quote(f'{bfe.op} (good)')}, style=dashed];"
            )
    lines.append("}")
    return "\n".join(lines)


def tpg_dot(tpg: TestPatternGraph, name: str = "TPG") -> str:
    """Render the weighted TPG (the Figure 4 diagram)."""
    lines = [f"digraph {name} {{", "  node [shape=box];"]
    for node in tpg.nodes:
        label = f"TP{node.index + 1}\\n{node.pattern}"
        lines.append(f"  tp{node.index} [label={_quote(label)}];")
    for source in range(len(tpg)):
        for target in range(len(tpg)):
            if source == target:
                continue
            weight = tpg.weight(source, target)
            style = ", penwidth=2, color=blue" if weight == 0 else ""
            lines.append(
                f"  tp{source} -> tp{target}"
                f" [label={_quote(str(weight))}{style}];"
            )
    lines.append("}")
    return "\n".join(lines)
