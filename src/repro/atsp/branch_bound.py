"""Exact ATSP by assignment-relaxation branch and bound.

This reimplements, in spirit, the Carpaneto--Dell'Amico--Toth exact
solver (ACM TOMS algorithm 750) that the paper calls from Fortran [12]:

* lower bound: the assignment problem (AP) over the current arc set --
  an AP solution is a family of vertex-disjoint cycles; when it is a
  single Hamiltonian cycle, it is optimal for the subproblem;
* branching (Bellmore--Malone subtour elimination): pick the shortest
  subtour of the AP solution and create one child per arc of that
  subtour with the arc *excluded*; to keep the children disjoint, child
  ``k`` additionally *includes* the first ``k-1`` arcs of the subtour;
* search order: best-first on the AP bound.

Instances stay exact and fast well past the 50-node regime the paper
reports (its TPGs are far smaller).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Tuple

from .hungarian import FORBIDDEN, assignment_cycles, solve_assignment

Arc = Tuple[int, int]


@dataclass(order=True)
class _Node:
    bound: float
    tie_break: int
    excluded: FrozenSet[Arc] = field(compare=False)
    included: FrozenSet[Arc] = field(compare=False)
    assignment: List[int] = field(compare=False)


def branch_and_bound_cycle(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Minimum-cost Hamiltonian cycle (exact).

    Returns ``(tour, total)``; the tour starts at node 0.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    if n == 1:
        return [0], float(cost[0][0]) * 0.0
    if n == 2:
        return [0, 1], float(cost[0][1]) + float(cost[1][0])

    counter = itertools.count()

    def relax(
        excluded: FrozenSet[Arc], included: FrozenSet[Arc]
    ) -> Tuple[List[int], float]:
        matrix = [[float(cost[r][c]) for c in range(n)] for r in range(n)]
        for r in range(n):
            matrix[r][r] = FORBIDDEN  # no self-loops in a tour
        for (r, c) in excluded:
            matrix[r][c] = FORBIDDEN
        for (r, c) in included:
            for other in range(n):
                if other != c:
                    matrix[r][other] = FORBIDDEN
                if other != r:
                    matrix[other][c] = FORBIDDEN
        return solve_assignment(matrix)

    root_assignment, root_bound = relax(frozenset(), frozenset())
    heap: List[_Node] = [
        _Node(root_bound, next(counter), frozenset(), frozenset(), root_assignment)
    ]
    best_cost = float("inf")
    best_tour: List[int] = []

    while heap:
        node = heapq.heappop(heap)
        if node.bound >= best_cost:
            break  # best-first: nothing better remains
        cycles = assignment_cycles(node.assignment)
        if len(cycles) == 1:
            # Feasible tour; because of best-first order it is optimal.
            best_cost = node.bound
            best_tour = _rotate_to_zero(cycles[0])
            break
        subtour = min(cycles, key=len)
        arcs = [
            (subtour[k], subtour[(k + 1) % len(subtour)])
            for k in range(len(subtour))
        ]
        for k, arc in enumerate(arcs):
            excluded = node.excluded | {arc}
            included = node.included | set(arcs[:k])
            if _conflicts(included, excluded):
                continue
            assignment, bound = relax(excluded, included)
            if bound >= best_cost or bound >= FORBIDDEN:
                continue
            heapq.heappush(
                heap,
                _Node(bound, next(counter), excluded, included, assignment),
            )

    if not best_tour:
        raise RuntimeError("ATSP instance is infeasible")
    return best_tour, best_cost


def _conflicts(included: FrozenSet[Arc], excluded: FrozenSet[Arc]) -> bool:
    if included & excluded:
        return True
    by_row: Dict[int, int] = {}
    by_col: Dict[int, int] = {}
    for (r, c) in included:
        if by_row.setdefault(r, c) != c or by_col.setdefault(c, r) != r:
            return True
    return False


def _rotate_to_zero(cycle: List[int]) -> List[int]:
    if 0 not in cycle:
        return list(cycle)
    at = cycle.index(0)
    return cycle[at:] + cycle[:at]
