"""Asymmetric TSP substrate (exact and heuristic solvers)."""

from .branch_bound import branch_and_bound_cycle
from .held_karp import held_karp_cycle, held_karp_path
from .heuristics import (
    nearest_neighbor_cycle,
    nearest_neighbor_with_or_opt,
    or_opt_improve,
    tour_cost,
)
from .hungarian import FORBIDDEN, assignment_cycles, solve_assignment
from .solver import brute_force_cycle, solve_cycle, solve_path

__all__ = [
    "branch_and_bound_cycle",
    "held_karp_cycle",
    "held_karp_path",
    "nearest_neighbor_cycle",
    "nearest_neighbor_with_or_opt",
    "or_opt_improve",
    "tour_cost",
    "FORBIDDEN",
    "assignment_cycles",
    "solve_assignment",
    "brute_force_cycle",
    "solve_cycle",
    "solve_path",
]
