"""ATSP facade: exact/heuristic cycle and open-path solving.

The GTS search is an open-path ATSP: the paper closes the path with two
dummy nodes (Section 4); :func:`solve_path` realizes the equivalent
single-depot construction and also supports the start-state constraint
of f.4.4 (only tours beginning at selected nodes are admissible).
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence, Set, Tuple

from .branch_bound import branch_and_bound_cycle
from .held_karp import held_karp_cycle, held_karp_path
from .heuristics import nearest_neighbor_with_or_opt, tour_cost
from .hungarian import FORBIDDEN

#: Instance size up to which Held-Karp DP is the default exact method.
HELD_KARP_LIMIT = 13
#: Instance size past which the facade degrades to heuristics in "auto".
EXACT_LIMIT = 60


def brute_force_cycle(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Reference oracle: enumerate all (n-1)! tours.  Tests only."""
    n = len(cost)
    if n == 0:
        return [], 0.0
    if n == 1:
        return [0], 0.0
    best_tour: List[int] = []
    best = float("inf")
    for perm in itertools.permutations(range(1, n)):
        tour = [0] + list(perm)
        total = tour_cost(cost, tour)
        if total < best:
            best = total
            best_tour = tour
    return best_tour, best


def solve_cycle(
    cost: Sequence[Sequence[float]], method: str = "auto"
) -> Tuple[List[int], float]:
    """Minimum-cost Hamiltonian cycle.

    ``method`` is one of ``auto``, ``held_karp``, ``branch_bound``,
    ``brute``, ``heuristic``.  ``auto`` picks Held-Karp for small
    instances, branch and bound up to :data:`EXACT_LIMIT`, then the
    nearest-neighbour + or-opt heuristic.
    """
    n = len(cost)
    if method == "auto":
        if n <= HELD_KARP_LIMIT:
            method = "held_karp"
        elif n <= EXACT_LIMIT:
            method = "branch_bound"
        else:
            method = "heuristic"
    if method == "held_karp":
        return held_karp_cycle(cost)
    if method == "branch_bound":
        return branch_and_bound_cycle(cost)
    if method == "brute":
        return brute_force_cycle(cost)
    if method == "heuristic":
        return nearest_neighbor_with_or_opt(cost)
    raise ValueError(f"unknown ATSP method {method!r}")


def solve_path(
    cost: Sequence[Sequence[float]],
    start_costs: Optional[Sequence[float]] = None,
    allowed_starts: Optional[Set[int]] = None,
    method: str = "auto",
) -> Tuple[List[int], float]:
    """Minimum-cost open path visiting every node once.

    Parameters
    ----------
    cost:
        V x V inter-node weights (the TPG weight matrix, f.4.1).
    start_costs:
        Cost of *starting* at each node (power-up setup writes);
        defaults to 0 everywhere.
    allowed_starts:
        Optional restriction of the first node (the f.4.4 optimization:
        prefer GTSs whose first TP initializes from 00/11).  When no
        admissible tour exists the restriction is infeasible and a
        ``ValueError`` is raised -- callers fall back to unrestricted.

    Returns ``(order, total)`` where ``order`` lists node indices and
    ``total`` includes the chosen node's start cost.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    starts = (
        [0.0] * n if start_costs is None else [float(s) for s in start_costs]
    )
    if allowed_starts is not None:
        starts = [
            starts[v] if v in allowed_starts else float(FORBIDDEN)
            for v in range(n)
        ]

    if n == 1:
        if starts[0] >= FORBIDDEN:
            raise ValueError("start restriction is infeasible")
        return [0], starts[0]

    if method == "auto" and n <= HELD_KARP_LIMIT:
        order, total = held_karp_path(cost, starts)
    else:
        # Depot-augmented cycle: depot -> v costs starts[v], v -> depot
        # is free; a minimum cycle through the depot is a minimum path.
        depot = n
        matrix: List[List[float]] = [
            [float(cost[r][c]) for c in range(n)] + [0.0] for r in range(n)
        ]
        matrix.append(starts + [float(FORBIDDEN)])
        tour, total = solve_cycle(matrix, method=method)
        at = tour.index(depot)
        order = tour[at + 1:] + tour[:at]
    if total >= FORBIDDEN:
        raise ValueError("start restriction is infeasible")
    return order, total
