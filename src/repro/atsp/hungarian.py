"""Linear assignment problem solver (Hungarian algorithm).

The branch-and-bound ATSP solver (after Carpaneto--Dell'Amico--Toth
[12], whose Fortran code the paper links against) uses the assignment
problem as its relaxation: an AP solution is a set of vertex-disjoint
cycles covering all nodes; its cost lower-bounds the optimal tour.

This is the classic O(n^3) potentials + shortest-augmenting-path
formulation.  ``INFEASIBLE`` entries (forbidden arcs) are encoded with
a large finite penalty so the algorithm remains numeric.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

#: Penalty standing in for a forbidden arc.  Chosen large enough that a
#: single forbidden arc dominates any realistic tour, small enough that
#: sums of a few of them do not overflow float precision.
FORBIDDEN = 10 ** 9


def solve_assignment(cost: Sequence[Sequence[float]]) -> Tuple[List[int], float]:
    """Solve the square assignment problem.

    Parameters
    ----------
    cost:
        Square matrix; ``cost[r][c]`` is the cost of assigning row ``r``
        to column ``c``.

    Returns
    -------
    (assignment, total):
        ``assignment[r]`` is the column assigned to row ``r``; ``total``
        is the summed cost.

    >>> solve_assignment([[4, 1], [2, 3]])
    ([1, 0], 3.0)
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    for row in cost:
        if len(row) != n:
            raise ValueError("assignment matrix must be square")

    inf = float("inf")
    # 1-based arrays per the classic formulation.
    u = [0.0] * (n + 1)
    v = [0.0] * (n + 1)
    p = [0] * (n + 1)      # p[col] = row assigned to col (0 = none)
    way = [0] * (n + 1)

    for i in range(1, n + 1):
        p[0] = i
        j0 = 0
        minv = [inf] * (n + 1)
        used = [False] * (n + 1)
        while True:
            used[j0] = True
            i0 = p[j0]
            delta = inf
            j1 = 0
            for j in range(1, n + 1):
                if used[j]:
                    continue
                cur = cost[i0 - 1][j - 1] - u[i0] - v[j]
                if cur < minv[j]:
                    minv[j] = cur
                    way[j] = j0
                if minv[j] < delta:
                    delta = minv[j]
                    j1 = j
            for j in range(n + 1):
                if used[j]:
                    u[p[j]] += delta
                    v[j] -= delta
                else:
                    minv[j] -= delta
            j0 = j1
            if p[j0] == 0:
                break
        while j0:
            j1 = way[j0]
            p[j0] = p[j1]
            j0 = j1

    assignment = [0] * n
    total = 0.0
    for j in range(1, n + 1):
        if p[j] == 0:
            raise RuntimeError("assignment failed to cover all rows")
        assignment[p[j] - 1] = j - 1
        total += float(cost[p[j] - 1][j - 1])
    return assignment, total


def assignment_cycles(assignment: Sequence[int]) -> List[List[int]]:
    """Decompose an assignment (successor function) into its cycles.

    >>> assignment_cycles([1, 0, 2])
    [[0, 1], [2]]
    """
    n = len(assignment)
    seen = [False] * n
    cycles: List[List[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        cycle = []
        node = start
        while not seen[node]:
            seen[node] = True
            cycle.append(node)
            node = assignment[node]
        cycles.append(cycle)
    return cycles
