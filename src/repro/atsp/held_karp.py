"""Exact ATSP by Held--Karp dynamic programming.

O(n^2 * 2^n): practical up to ~15 nodes, which comfortably covers the
instances of the paper's evaluation (the TPGs of Table 3 after test
pattern de-duplication).  Used both as a primary exact method on small
instances and as a cross-check oracle for the branch-and-bound solver.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple


def held_karp_cycle(
    cost: Sequence[Sequence[float]], start: int = 0
) -> Tuple[List[int], float]:
    """Minimum-cost Hamiltonian cycle through all nodes.

    Returns ``(tour, total)`` where ``tour`` starts at ``start`` and
    lists every node exactly once (the closing arc back to ``start`` is
    included in ``total``).
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    if n == 1:
        return [start], 0.0

    others = [node for node in range(n) if node != start]
    index_of = {node: k for k, node in enumerate(others)}
    m = len(others)
    inf = float("inf")

    # best[mask][k]: cheapest path start -> ... -> others[k] visiting
    # exactly the subset ``mask`` of ``others``.
    best: List[List[float]] = [[inf] * m for _ in range(1 << m)]
    parent: List[List[int]] = [[-1] * m for _ in range(1 << m)]
    for k, node in enumerate(others):
        best[1 << k][k] = float(cost[start][node])

    for mask in range(1, 1 << m):
        row = best[mask]
        for k in range(m):
            if not mask & (1 << k):
                continue
            base = row[k]
            if base == inf:
                continue
            node_k = others[k]
            for nxt in range(m):
                if mask & (1 << nxt):
                    continue
                new_mask = mask | (1 << nxt)
                candidate = base + float(cost[node_k][others[nxt]])
                if candidate < best[new_mask][nxt]:
                    best[new_mask][nxt] = candidate
                    parent[new_mask][nxt] = k

    full = (1 << m) - 1
    closing_best = inf
    last = -1
    for k in range(m):
        candidate = best[full][k] + float(cost[others[k]][start])
        if candidate < closing_best:
            closing_best = candidate
            last = k

    tour_tail: List[int] = []
    mask = full
    k = last
    while k != -1:
        tour_tail.append(others[k])
        prev = parent[mask][k]
        mask ^= 1 << k
        k = prev
    tour_tail.reverse()
    return [start] + tour_tail, closing_best


def held_karp_path(
    cost: Sequence[Sequence[float]],
    start_cost: Optional[Sequence[float]] = None,
) -> Tuple[List[int], float]:
    """Minimum-cost open Hamiltonian path (free endpoint).

    ``start_cost[v]`` is the cost of starting the path at node ``v``
    (e.g. the power-up setup cost of a test pattern); it defaults to 0.
    This is the dummy-node construction of the paper solved directly.
    """
    n = len(cost)
    if n == 0:
        return [], 0.0
    starts = [0.0] * n if start_cost is None else [float(s) for s in start_cost]
    if n == 1:
        return [0], starts[0]

    inf = float("inf")
    best: List[List[float]] = [[inf] * n for _ in range(1 << n)]
    parent: List[List[int]] = [[-1] * n for _ in range(1 << n)]
    for v in range(n):
        best[1 << v][v] = starts[v]

    for mask in range(1, 1 << n):
        row = best[mask]
        for k in range(n):
            if not mask & (1 << k):
                continue
            base = row[k]
            if base == inf:
                continue
            for nxt in range(n):
                if mask & (1 << nxt):
                    continue
                new_mask = mask | (1 << nxt)
                candidate = base + float(cost[k][nxt])
                if candidate < best[new_mask][nxt]:
                    best[new_mask][nxt] = candidate
                    parent[new_mask][nxt] = k

    full = (1 << n) - 1
    end = min(range(n), key=lambda k: best[full][k])
    total = best[full][end]
    path: List[int] = []
    mask = full
    k = end
    while k != -1:
        path.append(k)
        prev = parent[mask][k]
        mask ^= 1 << k
        k = prev
    path.reverse()
    return path, total
