"""ATSP heuristics for large synthetic instances.

The paper's instances are small enough for exact solving; these
heuristics back the scaling benchmarks and the ablation comparing tour
quality against the exact optimum.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def nearest_neighbor_cycle(
    cost: Sequence[Sequence[float]], start: int = 0
) -> Tuple[List[int], float]:
    """Greedy nearest-neighbour tour construction."""
    n = len(cost)
    if n == 0:
        return [], 0.0
    unvisited = set(range(n))
    unvisited.discard(start)
    tour = [start]
    total = 0.0
    current = start
    while unvisited:
        nxt = min(unvisited, key=lambda v: (cost[current][v], v))
        total += float(cost[current][nxt])
        tour.append(nxt)
        unvisited.discard(nxt)
        current = nxt
    total += float(cost[current][start])
    return tour, total


def tour_cost(cost: Sequence[Sequence[float]], tour: Sequence[int]) -> float:
    """Cycle cost of a tour (closing arc included) -- f.4.3."""
    total = 0.0
    for k, node in enumerate(tour):
        total += float(cost[node][tour[(k + 1) % len(tour)]])
    return total


def or_opt_improve(
    cost: Sequence[Sequence[float]],
    tour: Sequence[int],
    max_rounds: int = 20,
) -> Tuple[List[int], float]:
    """Or-opt local search: relocate segments of length 1..3.

    Asymmetric-safe (segments are moved without reversal, so no arc
    direction is flipped).  Terminates at a local optimum or after
    ``max_rounds`` full passes.
    """
    best = list(tour)
    best_cost = tour_cost(cost, best)
    n = len(best)
    if n < 4:
        return best, best_cost

    for _ in range(max_rounds):
        improved = False
        for seg_len in (1, 2, 3):
            for i in range(n):
                if seg_len >= n - 1:
                    continue
                segment = [best[(i + k) % n] for k in range(seg_len)]
                remainder = [
                    best[(i + seg_len + k) % n] for k in range(n - seg_len)
                ]
                for insert_at in range(1, len(remainder)):
                    candidate = (
                        remainder[:insert_at] + segment + remainder[insert_at:]
                    )
                    candidate_cost = tour_cost(cost, candidate)
                    if candidate_cost + 1e-12 < best_cost:
                        best = candidate
                        best_cost = candidate_cost
                        improved = True
                        break
                if improved:
                    break
            if improved:
                break
        if not improved:
            return best, best_cost
    return best, best_cost


def nearest_neighbor_with_or_opt(
    cost: Sequence[Sequence[float]], start: int = 0
) -> Tuple[List[int], float]:
    """The combined heuristic used for oversized instances."""
    tour, _ = nearest_neighbor_cycle(cost, start)
    return or_opt_improve(cost, tour)
