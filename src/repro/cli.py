"""Command-line interface.

Examples::

    python -m repro generate SAF TF
    python -m repro simulate "MarchC-" SAF TF ADF CFIN CFID
    python -m repro simulate "{any(w0); up(r0,w1); down(r1)}" SAF
    python -m repro simulate MarchC- SAF TF --store results.sqlite
    python -m repro campaign examples/campaign_table3.json --store results.sqlite
    python -m repro serve results.sqlite --socket verdict.sock
    python -m repro campaign examples/campaign_table3.json --jobs 4 \\
        --store repro+unix://verdict.sock
    python -m repro store stats --socket verdict.sock
    python -m repro campaign examples/campaign_table3.json \\
        --metrics metrics.json --trace spans.jsonl
    python -m repro report metrics.json
    python -m repro report diff baseline.json current.json \\
        --fail-on-regression 0.01
    python -m repro catalog
    python -m repro models
    python -m repro table3
    python -m repro dot tpg CFID
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis import coverage_report
from .core.config import GeneratorConfig
from .core.generator import MarchTestGenerator
from .faults.faultlist import FaultList
from .faults.library import MODEL_REGISTRY
from .kernel import BACKENDS, SimulationKernel
from .march.catalog import CATALOG, by_name
from .march.test import MarchTest, parse_march


def _resolve_test(text: str) -> MarchTest:
    """A catalog name or literal March notation."""
    try:
        return by_name(text)
    except KeyError:
        return parse_march(text, name="cli")


def _fault_list(names: List[str]) -> FaultList:
    return FaultList.from_names(*names)


#: The CLI's simulation backend when ``--backend`` is not given.  The
#: word-packed engine won on every profiled workload (including the
#: generator's verify-size-2 single-probe path) once SOF gained its
#: latch-word encoding; ``--backend serial`` remains selectable.
DEFAULT_BACKEND = "bitparallel"


def _telemetry_for(args: argparse.Namespace):
    """A live Telemetry handle when --metrics/--trace asked for one.

    ``None`` otherwise, so uninstrumented invocations keep the shared
    no-op telemetry and its zero-cost guarantee.
    """
    if (getattr(args, "metrics", None) is None
            and getattr(args, "trace", None) is None):
        return None
    from .telemetry import Telemetry

    return Telemetry()


def _write_telemetry(args: argparse.Namespace, telemetry) -> None:
    """Flush --metrics / --trace artifacts, if they were requested."""
    if telemetry is None:
        return
    from .telemetry import write_snapshot, write_span_log

    if getattr(args, "metrics", None):
        write_snapshot(telemetry.snapshot(), args.metrics)
    if getattr(args, "trace", None):
        write_span_log(telemetry.span_trees(), args.trace)


def _kernel(args: argparse.Namespace, telemetry=None) -> SimulationKernel:
    """The simulation kernel for one CLI invocation."""
    return SimulationKernel(
        backend=getattr(args, "backend", DEFAULT_BACKEND),
        store=getattr(args, "store", None),
        store_readonly=getattr(args, "store_readonly", False),
        telemetry=telemetry,
    )


def _maybe_print_stats(args: argparse.Namespace, kernel: SimulationKernel) -> None:
    if getattr(args, "sim_stats", False):
        print(f"simulation {kernel.describe_stats()}")


def cmd_generate(args: argparse.Namespace) -> int:
    telemetry = _telemetry_for(args)
    config = GeneratorConfig(
        equivalence_enumeration=not args.no_equivalence,
        prefer_uniform_start=not args.no_start_constraint,
        tighten=not args.no_tighten,
        polish=not args.no_polish,
        selection_limit=args.selection_limit,
        backend=args.backend,
        store_path=args.store,
        store_readonly=args.store_readonly,
        telemetry=telemetry,
    )
    generator = MarchTestGenerator(config)
    try:
        report = generator.generate(_fault_list(args.faults))
        print(report.summary())
        _maybe_print_stats(args, generator.kernel)
    finally:
        # Snapshot after close so checkpoint timings land in it.
        generator.kernel.close()
        _write_telemetry(args, telemetry)
    return 0 if report.verified else 1


def cmd_simulate(args: argparse.Namespace) -> int:
    test = _resolve_test(args.test)
    faults = _fault_list(args.faults)
    telemetry = _telemetry_for(args)
    kernel = _kernel(args, telemetry)
    try:
        report = coverage_report(test, faults, size=args.size, kernel=kernel)
        print(report)
        _maybe_print_stats(args, kernel)
    finally:
        kernel.close()
        _write_telemetry(args, telemetry)
    return 0 if all(m.complete for m in report.models) else 1


def cmd_catalog(args: argparse.Namespace) -> int:
    for name in sorted(CATALOG, key=lambda n: CATALOG[n].complexity):
        test = CATALOG[name]
        print(f"{name:10s} {test.complexity_label:>4s}  {test}")
    return 0


def cmd_models(args: argparse.Namespace) -> int:
    for name in sorted(MODEL_REGISTRY):
        model = MODEL_REGISTRY[name]()
        classes = model.classes()
        print(
            f"{name:6s} {type(model).__name__:28s}"
            f" {len(classes):2d} BFE classes"
        )
    return 0


def cmd_table3(args: argparse.Namespace) -> int:
    rows = [
        ("SAF",),
        ("SAF", "TF"),
        ("SAF", "TF", "ADF"),
        ("SAF", "TF", "ADF", "CFIN"),
        ("SAF", "TF", "ADF", "CFIN", "CFID"),
        ("CFIN",),
    ]
    paper = [4, 5, 6, 6, 10, 5]
    generator = MarchTestGenerator()
    failures = 0
    for names, expected in zip(rows, paper):
        report = generator.generate(_fault_list(list(names)))
        ok = report.complexity == expected
        failures += not ok
        print(
            f"{'+'.join(names):28s} {report.complexity_label:>4s}"
            f" (paper {expected}n) {report.elapsed_seconds:6.2f}s"
            f" {'ok' if ok else 'DIFFERS'}  {report.test}"
        )
    return 1 if failures else 0


def cmd_analyze(args: argparse.Namespace) -> int:
    from .simulator.coverage import coverage_matrix

    test = _resolve_test(args.test)
    faults = _fault_list(args.faults)
    telemetry = _telemetry_for(args)
    kernel = _kernel(args, telemetry)
    try:
        report = coverage_report(test, faults, size=args.size, kernel=kernel)
        print(report)
        cases = faults.instances(args.size)
        cm = coverage_matrix(test, cases, args.size, kernel=kernel)
        verdict = "non-redundant" if cm.is_non_redundant() else "redundant"
        print(f"covers all cases : {cm.covers_all}")
        print(f"block analysis   : {verdict}"
              f" ({len(cm.blocks)} elementary blocks)")
        redundant = cm.redundant_blocks()
        if redundant:
            blocks = ", ".join(
                cm.blocks[k].describe(cm.test) for k in redundant
            )
            print(f"redundant blocks : {blocks}")
        _maybe_print_stats(args, kernel)
    finally:
        kernel.close()
        _write_telemetry(args, telemetry)
    return 0


def cmd_diagnose(args: argparse.Namespace) -> int:
    from .diagnosis import build_dictionary_for

    test = _resolve_test(args.test)
    faults = _fault_list(args.faults)
    telemetry = _telemetry_for(args)
    kernel = _kernel(args, telemetry)
    try:
        dictionary = build_dictionary_for(
            test, faults, args.size, kernel=kernel
        )
        print(f"fault cases        : {dictionary.case_count}")
        print(f"distinct syndromes : {dictionary.syndromes}")
        print(f"unique resolution  : {dictionary.resolution() * 100:.0f}%")
        undetected = dictionary.undetected_cases()
        if undetected:
            print(f"undetected         : {', '.join(undetected)}")
        _maybe_print_stats(args, kernel)
    finally:
        kernel.close()
        _write_telemetry(args, telemetry)
    return 0 if not undetected else 1


def cmd_campaign(args: argparse.Namespace) -> int:
    import time

    from .store.campaign import CampaignSpec, run_campaign, summarize, \
        write_manifest

    spec = CampaignSpec.from_file(args.spec)

    pipe_gone = False
    # Operator-facing progress rate only: never lands in the manifest
    # or any compared artifact, so wall time is the right clock here.
    # repro-lint: disable=injectable-clock -- display-only elapsed time
    started = time.monotonic()

    def live_progress(done: int, total: int, record: dict) -> None:
        # A consumer cutting the pipe short (| head) must cost the
        # progress lines, never the campaign or its manifest.
        nonlocal pipe_gone
        if pipe_gone:
            return
        status = (
            "ok" if record["error"] is None
            else f"FAILED: {record['error']}"
        )
        if record.get("degraded"):
            status += " (degraded to spill)"
        timing = (
            f" {record['seconds'] * 1e3:8.1f} ms"
            if record["seconds"] is not None else ""
        )
        # repro-lint: disable=injectable-clock -- same progress display
        elapsed = time.monotonic() - started
        rate = done / elapsed if elapsed > 0 else 0.0
        try:
            print(
                f"[{done}/{total}] {record['backend']}"
                f" @ size {record['size']}"
                f" {record['test']}{timing} {status}"
                f" [{elapsed:.1f}s, {rate:.1f} jobs/s]",
                flush=True,
            )
        except BrokenPipeError:
            pipe_gone = True

    retry = None
    if args.retry_attempts is not None or args.retry_base_delay is not None:
        from .store.resilience import RetryPolicy

        knobs = {}
        if args.retry_attempts is not None:
            knobs["max_attempts"] = args.retry_attempts
        if args.retry_base_delay is not None:
            knobs["base_delay"] = args.retry_base_delay
        retry = RetryPolicy(**knobs)

    from .store.service import ServiceUnavailableError

    try:
        manifest = run_campaign(
            spec,
            store_path=args.store,
            store_readonly=args.store_readonly,
            jobs=args.jobs,
            shard=args.shard,
            progress=live_progress,
            retry=retry,
            degrade=not args.no_degrade,
        )
    except ServiceUnavailableError as error:
        # The up-front daemon probe failed: with no store to run
        # against there is nothing to degrade to -- one diagnostic,
        # not a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 1
    # Persist the artifact before printing: a consumer cutting the
    # pipe short (| head) must not cost the manifest.
    path = write_manifest(manifest, args.manifest)
    if args.metrics or args.trace:
        # Campaign jobs always run instrumented; the artifacts are
        # derived from the manifest rather than a process-local
        # registry so --jobs N sees every worker's numbers.
        from .telemetry import write_snapshot, write_span_log

        if args.metrics:
            write_snapshot(
                (manifest.get("telemetry") or {}).get("metrics", {}),
                args.metrics,
            )
        if args.trace:
            trees = [
                span
                for record in manifest["jobs"]
                if record.get("telemetry")
                for span in record["telemetry"]["spans"]
            ]
            write_span_log(trees, args.trace)
    if not pipe_gone:
        try:
            print(summarize(manifest))
            print(f"wrote {path}")
        except BrokenPipeError:
            pass
    return 1 if manifest["totals"]["failed"] else 0


def cmd_report(args: argparse.Namespace) -> int:
    import json as json_module
    import os

    from .telemetry.report import (
        ReportError,
        diff_payloads,
        load_payload,
        render_diff,
        render_report,
        report_json,
    )

    def emit(text: str) -> bool:
        # Reports are long tables; `| head` must cut them quietly,
        # not with a traceback (same contract as campaign progress).
        try:
            print(text, flush=True)
            return True
        except BrokenPipeError:
            os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
            return False

    try:
        if args.paths and args.paths[0] == "diff":
            if len(args.paths) != 3:
                raise ReportError(
                    "repro report diff needs exactly two files: diff A B"
                )
            kind_a, payload_a = load_payload(args.paths[1])
            kind_b, payload_b = load_payload(args.paths[2])
            threshold = (
                args.fail_on_regression
                if args.fail_on_regression is not None else 0.0
            )
            diff = diff_payloads(
                kind_a, payload_a, kind_b, payload_b, threshold
            )
            if args.json:
                emit(json_module.dumps(diff, indent=2, sort_keys=True))
            else:
                emit(render_diff(diff))
            # Informational by default; only --fail-on-regression turns
            # a regression into a failing exit code (CI gate).
            if args.fail_on_regression is not None and diff["regressions"]:
                return 1
            return 0
        if len(args.paths) != 1:
            raise ReportError(
                "repro report renders one file (or: repro report diff A B)"
            )
        kind, payload = load_payload(args.paths[0])
        if args.json:
            emit(json_module.dumps(
                report_json(kind, payload), indent=2, sort_keys=True,
            ))
        else:
            emit(render_report(kind, payload))
        return 0
    except ReportError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


def cmd_serve(args: argparse.Namespace) -> int:
    import os
    import signal

    from .store.service import VerdictService

    service = VerdictService(
        args.store,
        args.socket,
        idle_timeout=args.idle_timeout,
        checkpoint_interval=args.checkpoint_interval,
        hot_lru_size=args.hot_lru_size,
        max_clients=args.max_clients,
        quota=args.quota,
    )
    service.start()

    def on_signal(signum: int, frame: object) -> None:
        service.request_stop()

    # SIGTERM/SIGINT flag the stop; the teardown (WAL checkpoint,
    # socket unlink) runs below, in the main thread.
    signal.signal(signal.SIGTERM, on_signal)
    signal.signal(signal.SIGINT, on_signal)
    print(
        f"verdict service: store {service.store_path} on"
        f" {service.socket_path} (pid {os.getpid()});"
        f" point clients at --store {service.url}",
        flush=True,
    )
    try:
        service.wait()
        summary = service.snapshot_stats()
    finally:
        service.stop()
    stats = summary["store_stats"]
    print(
        f"verdict service stopped: {summary['row_stats']['rows']} rows,"
        f" {stats['hits']} hits / {stats['misses']} misses /"
        f" {stats['writes']} writes over"
        f" {summary['clients']['total']} client(s)"
    )
    return 0


def cmd_store(args: argparse.Namespace) -> int:
    import json as json_module

    from .store import FaultDictionaryStore, StoreError

    def emit(payload: dict, human: str) -> None:
        if args.json:
            print(json_module.dumps(payload, indent=2, sort_keys=True))
        else:
            print(human)

    if getattr(args, "socket", None) and getattr(args, "path", None):
        # Silent precedence would compact/inspect the daemon's store
        # while the operator believes PATH was touched.
        raise StoreError(
            f"give either a store PATH or --socket, not both"
            f" (got {args.path} and --socket {args.socket})"
        )

    if args.store_command == "ping":
        from .store.resilience import RetryPolicy
        from .store.service import ServiceStore

        # One probe, no backoff: ping answers "is it up *right now*",
        # and scripts polling in a loop supply their own cadence.
        client = ServiceStore(
            args.socket,
            timeout=args.timeout,
            retry=RetryPolicy.no_retry(),
        )
        try:
            # health, not ping: same liveness answer plus row totals
            # and service-time figures, still one round trip.
            payload = client.health()
        except StoreError as error:
            if args.json:
                print(json_module.dumps(
                    {"ok": False, "error": str(error)},
                    indent=2, sort_keys=True,
                ))
            else:
                print(f"no verdict service on {args.socket}: {error}",
                      file=sys.stderr)
            return 1
        finally:
            client.close()
        rows = payload.get("rows") or {}
        emit(payload, (
            f"verdict service on {args.socket}: pid {payload['pid']},"
            f" protocol {payload['protocol']},"
            f" store {payload['store']}"
            f" ({rows.get('rows', 0)} rows)"
        ))
        return 0

    if args.store_command == "stats":
        if args.socket:
            from .store.service import ServiceStore

            with ServiceStore(args.socket) as client:
                payload = client.server_stats()
                # Same connection: the metrics registry rides along so
                # scripts get counters + histograms without a second
                # client.
                payload["metrics"] = client.metrics()
            rows = payload["row_stats"]
            store_stats = payload["store_stats"]
            clients = payload["clients"]
            per_client = ", ".join(
                f"#{client_id}: {c['hits']}h/{c['misses']}m/{c['writes']}w"
                for client_id, c in sorted(
                    clients["per_client"].items(), key=lambda kv: int(kv[0])
                )
            )
            emit(payload, (
                f"service [{args.socket}] pid {payload['pid']}:"
                f" {rows['rows']} rows,"
                f" {store_stats['hits']} hits / {store_stats['misses']}"
                f" misses / {store_stats['writes']} writes,"
                f" {clients['active']}/{clients['total']} client(s)"
                f" connected ({per_client})"
            ))
            return 0
        if args.path is None:
            raise StoreError("store stats needs a PATH or --socket")
        with FaultDictionaryStore(args.path, readonly=True) as store:
            stats = store.row_stats()
        domains = ", ".join(
            f"{domain}: {count}"
            for domain, count in sorted(stats["by_domain"].items())
        )
        emit(stats, (
            f"store [{args.path}] schema {stats['schema_version']}:"
            f" {stats['rows']} rows ({domains or 'empty'}),"
            f" {stats['bytes']} bytes"
        ))
        return 0

    if args.store_command == "compact":
        from pathlib import Path

        if args.socket:
            from .store.service import ServiceStore

            with ServiceStore(args.socket) as client:
                stats = client.compact(
                    max_rows=args.max_rows,
                    max_age=args.max_age,
                    vacuum=not args.no_vacuum,
                )
        else:
            if args.path is None:
                raise StoreError("store compact needs a PATH or --socket")
            # Writable opens create missing files; a compaction target
            # must already exist or a typo'd path would silently
            # "compact" a fresh empty store.
            if not Path(args.path).exists():
                raise StoreError(f"store {args.path} does not exist")
            with FaultDictionaryStore(args.path) as store:
                stats = store.compact(
                    max_rows=args.max_rows,
                    max_age=args.max_age,
                    vacuum=not args.no_vacuum,
                )
        emit(stats, (
            f"store [{stats['path']}]: {stats['rows_before']} rows ->"
            f" {stats['rows_after']}"
            f" (-{stats['removed_by_age']} by age,"
            f" -{stats['removed_by_cap']} by cap),"
            f" {stats['bytes_before']} -> {stats['bytes_after']} bytes"
        ))
        return 0

    if args.store_command == "shutdown":
        from .store.service import ServiceStore

        with ServiceStore(args.socket) as client:
            payload = client.shutdown_server(drain=args.drain)
        emit(payload, (
            f"verdict service on {args.socket} "
            + ("draining (in-flight batches finish, then it stops)"
               if args.drain else "stopping")
        ))
        return 0

    if args.store_command == "merge":
        totals = {"source_rows": 0, "inserted": 0, "merged": 0}
        with FaultDictionaryStore(args.dest) as store:
            for source in args.sources:
                stats = store.merge_from(source)
                for field in totals:
                    totals[field] += stats[field]
        emit(totals, (
            f"store [{args.dest}]: merged {len(args.sources)} sources,"
            f" {totals['source_rows']} rows read,"
            f" {totals['inserted']} inserted,"
            f" {totals['merged']} conflict-resolved"
        ))
        return 0

    raise AssertionError(args.store_command)


def cmd_export(args: argparse.Namespace) -> int:
    from .export import to_assembly, to_csv

    test = _resolve_test(args.test)
    if args.format == "csv":
        print(to_csv(test, args.size))
    elif args.format == "asm":
        print(to_assembly(test))
    else:
        from .render import march_to_latex

        print(march_to_latex(test))
    return 0


def cmd_dot(args: argparse.Namespace) -> int:
    from . import viz
    from .memory.mealy import good_machine

    if args.what == "m0":
        print(viz.mealy_dot(good_machine(), "M0"))
        return 0
    if args.what == "tpg":
        from .core.selection import enumerate_selections
        from .patterns.tpg import TestPatternGraph

        faults = _fault_list(args.faults)
        selection = next(enumerate_selections(faults.classes(), 1))
        tpg = TestPatternGraph()
        for cls_name, pattern in selection.choices:
            tpg.add(pattern, cls_name)
        print(viz.tpg_dot(tpg))
        return 0
    raise AssertionError(args.what)


def cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .devtools.lint import render_json, render_text, run_lint

    paths = list(args.paths)
    if not paths:
        # Bare `repro lint` in a checkout lints the usual gate targets;
        # anywhere else it lints the installed package itself.
        paths = [p for p in ("src/repro", "benchmarks") if Path(p).exists()]
        if not paths:
            paths = [str(Path(__file__).parent)]
    try:
        result = run_lint(paths, only=args.rule or ())
    except FileNotFoundError as error:
        print(f"repro lint: {error}", file=sys.stderr)
        return 2
    except KeyError as error:
        print(f"repro lint: {error.args[0]}", file=sys.stderr)
        return 2
    render = render_json if args.json else render_text
    sys.stdout.write(
        render(result.findings, result.checked_files, result.waived)
    )
    return 0 if result.ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatic March test generation (Benso et al., DATE 2002)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_store_options(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--store", metavar="PATH", default=None,
            help="persistent fault-dictionary store: an SQLite file"
                 " path, or a repro+unix:///path/to.sock verdict-service"
                 " URL (see `repro serve`); verdicts are read through"
                 " and written through it, so repeated invocations share"
                 " simulation work across processes",
        )
        command_parser.add_argument(
            "--store-readonly", action="store_true",
            help="open the store for lookups only (no verdict writes)",
        )

    def add_telemetry_options(
        command_parser: argparse.ArgumentParser,
    ) -> None:
        command_parser.add_argument(
            "--metrics", metavar="PATH", default=None,
            help="write a JSON metrics snapshot (counters, gauges,"
                 " latency histograms) on exit; render or diff it with"
                 " `repro report`",
        )
        command_parser.add_argument(
            "--trace", metavar="PATH", default=None,
            help="write the span trace as JSON-lines (one span per"
                 " line, with depth/parent/seconds) on exit",
        )

    def add_kernel_options(command_parser: argparse.ArgumentParser) -> None:
        command_parser.add_argument(
            "--backend", choices=sorted(BACKENDS), default=DEFAULT_BACKEND,
            help="simulation kernel execution backend"
                 f" (default: {DEFAULT_BACKEND}; bitparallel-np needs"
                 " the NumPy [fast] extra and degrades to bitparallel"
                 " with a warning without it)",
        )
        command_parser.add_argument(
            "--sim-stats", action="store_true",
            help="print the kernel's cache hit/miss/eviction statistics,"
                 " the store's second-tier counters (with --store) and"
                 " the per-backend task routing breakdown",
        )
        add_telemetry_options(command_parser)
        add_store_options(command_parser)

    gen = sub.add_parser("generate", help="generate a March test")
    gen.add_argument("faults", nargs="+", help="fault model names (e.g. SAF TF)")
    gen.add_argument("--no-equivalence", action="store_true",
                     help="disable Section 5 class enumeration")
    gen.add_argument("--no-start-constraint", action="store_true",
                     help="disable the f.4.4 start-state preference")
    gen.add_argument("--no-tighten", action="store_true")
    gen.add_argument("--no-polish", action="store_true")
    gen.add_argument("--selection-limit", type=int, default=128)
    add_kernel_options(gen)
    gen.set_defaults(fn=cmd_generate)

    sim = sub.add_parser("simulate", help="fault-simulate a March test")
    sim.add_argument("test", help="catalog name or March notation")
    sim.add_argument("faults", nargs="+")
    sim.add_argument("--size", type=int, default=3)
    add_kernel_options(sim)
    sim.set_defaults(fn=cmd_simulate)

    cat = sub.add_parser("catalog", help="list known March tests")
    cat.set_defaults(fn=cmd_catalog)

    models = sub.add_parser("models", help="list fault models")
    models.set_defaults(fn=cmd_models)

    table = sub.add_parser("table3", help="reproduce the paper's Table 3")
    table.set_defaults(fn=cmd_table3)

    analyze = sub.add_parser(
        "analyze", help="coverage + non-redundancy analysis of a test"
    )
    analyze.add_argument("test")
    analyze.add_argument("faults", nargs="+")
    analyze.add_argument("--size", type=int, default=3)
    add_kernel_options(analyze)
    analyze.set_defaults(fn=cmd_analyze)

    diag = sub.add_parser(
        "diagnose", help="build a syndrome dictionary for a test"
    )
    diag.add_argument("test")
    diag.add_argument("faults", nargs="+")
    diag.add_argument("--size", type=int, default=3)
    add_kernel_options(diag)
    diag.set_defaults(fn=cmd_diagnose)

    camp = sub.add_parser(
        "campaign",
        help="run a declarative tests x faults x sizes x backends sweep,"
             " deduplicated through the store",
    )
    camp.add_argument("spec", help="campaign spec (JSON file)")
    camp.add_argument(
        "--manifest", metavar="PATH", default="campaign_manifest.json",
        help="where to write the machine-readable results manifest",
    )
    camp.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker-pool width: fan the campaign's jobs out over N"
             " processes (default 1 = sequential); the manifest stays"
             " deterministic regardless of N",
    )
    camp.add_argument(
        "--shard", action="store_true",
        help="give every job a private shard store merged into --store"
             " at the end, instead of contending on the shared WAL file"
             " (trades duplicate simulation for zero writer contention)",
    )
    camp.add_argument(
        "--retry-attempts", type=int, default=None, metavar="N",
        help="max attempts per verdict-service request before a worker"
             " degrades to its spill shard (default: the RetryPolicy"
             " default, 5); only meaningful with a repro+unix:// store",
    )
    camp.add_argument(
        "--retry-base-delay", type=float, default=None, metavar="SECONDS",
        help="first backoff delay for verdict-service retries; doubles"
             " per attempt with jitter (default 0.05)",
    )
    camp.add_argument(
        "--no-degrade", action="store_true",
        help="fail a job outright when its retry policy is exhausted"
             " instead of degrading to a local spill shard",
    )
    add_telemetry_options(camp)
    add_store_options(camp)
    camp.set_defaults(fn=cmd_campaign)

    report = sub.add_parser(
        "report",
        help="render a metrics snapshot, campaign manifest or kernel"
             " bench record as a table, or `report diff A B` to compare"
             " two for coverage/timing regressions",
    )
    report.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="one file to render, or: diff OLD NEW",
    )
    report.add_argument(
        "--json", action="store_true",
        help="print the machine-readable JSON report instead of text",
    )
    report.add_argument(
        "--fail-on-regression", type=float, default=None, metavar="THRESH",
        help="with diff: exit 1 when coverage drops by more than THRESH"
             " (absolute fraction) or timings regress by more than"
             " THRESH (relative ratio); without this flag the diff is"
             " informational and always exits 0",
    )
    report.set_defaults(fn=cmd_report)

    from .store.service import (
        DEFAULT_CHECKPOINT_INTERVAL_SECONDS,
        DEFAULT_HOT_LRU_SIZE,
        DEFAULT_IDLE_TIMEOUT_SECONDS,
        DEFAULT_MAX_CLIENTS,
    )

    serve = sub.add_parser(
        "serve",
        help="run the verdict-service daemon: one process owns the"
             " writable store, every client talks to it over a Unix"
             " socket instead of opening SQLite",
        epilog="The daemon runs a single-threaded event loop serving"
               " pipelined length-prefixed JSON frames; the wire"
               " contract is specified in docs/PROTOCOL.md and the"
               " operator's runbook (start/stop, tuning, liveness"
               " probing, drain-then-exit rolling restarts) is"
               " docs/OPERATIONS.md.",
    )
    serve.add_argument("store", help="store file (SQLite) the daemon owns")
    serve.add_argument(
        "--socket", metavar="SOCK", default=None,
        help="Unix socket path to listen on (default: <store>.sock);"
             " clients connect with --store repro+unix://SOCK",
    )
    serve.add_argument(
        "--idle-timeout", type=float,
        default=DEFAULT_IDLE_TIMEOUT_SECONDS, metavar="SECONDS",
        help="reap a client connection after SECONDS without a request"
             " (its ledger entry retires cleanly; retrying clients"
             " reconnect transparently); 0 disables"
             f" (default {DEFAULT_IDLE_TIMEOUT_SECONDS:g} s)",
    )
    serve.add_argument(
        "--checkpoint-interval", type=float,
        default=DEFAULT_CHECKPOINT_INTERVAL_SECONDS,
        metavar="SECONDS",
        help="fold the store's WAL back into the main file every"
             " SECONDS in the background; 0 disables"
             f" (default {DEFAULT_CHECKPOINT_INTERVAL_SECONDS:g} s)",
    )
    serve.add_argument(
        "--hot-lru-size", type=int, default=DEFAULT_HOT_LRU_SIZE,
        metavar="N",
        help="keep the N most recently served verdicts in an in-memory"
             " hot tier so read-mostly traffic never touches SQLite"
             " (hits surface as repro.service.hot_lru.* metrics);"
             f" 0 disables (default {DEFAULT_HOT_LRU_SIZE})",
    )
    serve.add_argument(
        "--max-clients", type=int, default=DEFAULT_MAX_CLIENTS,
        metavar="N",
        help="refuse connections beyond N concurrent clients (the"
             " refused client sees a transient hangup and retries);"
             f" 0 removes the cap (default {DEFAULT_MAX_CLIENTS})",
    )
    serve.add_argument(
        "--quota", type=int, default=None, metavar="N",
        help="per-tenant cap on data-plane requests"
             " (get_many/put_many/stats/merge/compact); requests over"
             " the cap are refused with a permanent error; liveness ops"
             " (ping/health/metrics/shutdown) are never metered"
             " (default: unlimited)",
    )
    serve.set_defaults(fn=cmd_serve)

    store = sub.add_parser(
        "store",
        help="inspect and maintain a persistent fault-dictionary store",
        epilog="Daemon-facing subcommands (--socket) talk to a `repro"
               " serve` daemon, which reaps idle clients after"
               f" {DEFAULT_IDLE_TIMEOUT_SECONDS:g} s and checkpoints"
               f" its WAL every {DEFAULT_CHECKPOINT_INTERVAL_SECONDS:g}"
               " s by default; see docs/OPERATIONS.md for the runbook"
               " and docs/PROTOCOL.md for the wire contract.",
    )
    store_sub = store.add_subparsers(dest="store_command", required=True)
    store_stats = store_sub.add_parser(
        "stats", help="row population, per-domain breakdown, file size;"
                      " with --socket, a verdict service's full ledger"
                      " including per-client hit/miss/write counters"
    )
    store_stats.add_argument(
        "path", nargs="?", default=None, help="store file (SQLite)"
    )
    store_stats.add_argument(
        "--socket", metavar="SOCK", default=None,
        help="ask the verdict service on this Unix socket instead of"
             " opening a store file",
    )
    store_compact = store_sub.add_parser(
        "compact",
        help="prune stale rows (LRU by last_used) and reclaim disk space",
    )
    store_compact.add_argument(
        "path", nargs="?", default=None, help="store file (SQLite)"
    )
    store_compact.add_argument(
        "--socket", metavar="SOCK", default=None,
        help="compact through the verdict service on this Unix socket"
             " instead of opening a store file",
    )
    store_compact.add_argument(
        "--max-rows", type=int, default=None, metavar="N",
        help="keep at most N rows, dropping the least recently used",
    )
    store_compact.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="drop rows not used within the last SECONDS seconds",
    )
    store_compact.add_argument(
        "--no-vacuum", action="store_true",
        help="skip the VACUUM that returns freed pages to the filesystem",
    )
    store_merge = store_sub.add_parser(
        "merge",
        help="fold one or more source stores into a destination store"
             " (newest last_used wins conflicting verdicts)",
    )
    store_merge.add_argument("dest", help="destination store file")
    store_merge.add_argument(
        "sources", nargs="+", help="source store files to merge in"
    )
    store_shutdown = store_sub.add_parser(
        "shutdown",
        help="gracefully stop a verdict-service daemon (it checkpoints"
             " its WAL and unlinks the socket)",
    )
    store_shutdown.add_argument(
        "--socket", metavar="SOCK", required=True,
        help="Unix socket the verdict service listens on",
    )
    store_shutdown.add_argument(
        "--drain", action="store_true",
        help="drain-then-exit (rolling restart): immediately refuse new"
             " connections, finish the batches already received from"
             " every client, checkpoint the WAL, then stop -- see"
             " docs/OPERATIONS.md",
    )
    store_ping = store_sub.add_parser(
        "ping",
        help="probe verdict-service liveness: exit 0 with the health"
             " payload (identity, row totals, service times), exit 1 if"
             " nothing answers (no store file is opened client-side)",
    )
    store_ping.add_argument(
        "--socket", metavar="SOCK", required=True,
        help="Unix socket the verdict service listens on",
    )
    store_ping.add_argument(
        "--timeout", type=float, default=5.0, metavar="SECONDS",
        help="socket timeout for the single probe (default 5)",
    )
    for store_parser in (store_stats, store_compact, store_merge,
                         store_shutdown, store_ping):
        store_parser.add_argument(
            "--json", action="store_true",
            help="print the machine-readable JSON report instead of text",
        )
    store.set_defaults(fn=cmd_store)

    export = sub.add_parser("export", help="compile a test to a program")
    export.add_argument("test")
    export.add_argument("--format", choices=["csv", "asm", "latex"],
                        default="asm")
    export.add_argument("--size", type=int, default=8)
    export.set_defaults(fn=cmd_export)

    dot = sub.add_parser("dot", help="emit Graphviz for the paper's figures")
    dot.add_argument("what", choices=["m0", "tpg"])
    dot.add_argument("faults", nargs="*", default=["CFID"])
    dot.set_defaults(fn=cmd_dot)

    lint = sub.add_parser(
        "lint",
        help="run the project's static-analysis rules (docs/LINTS.md)",
    )
    lint.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: src/repro, benchmarks)",
    )
    lint.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable JSON report",
    )
    lint.add_argument(
        "--rule", action="append", metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.set_defaults(fn=cmd_lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
