"""event-loop-blocking: the ``verdict-loop`` thread must never block.

The verdict service is a single-threaded selectors loop
(:meth:`VerdictService._serve_loop` runs on the ``verdict-loop``
thread); one blocking call anywhere in its dispatch path stalls every
connected client.  This rule builds the ``self._method()`` call graph
of any class defining a loop root (``_serve_loop``) and, in every
method reachable from a root, forbids:

* ``time.sleep(...)`` -- latency injected into every client;
* anything from ``subprocess`` -- arbitrary-duration child processes;
* ``socket.create_connection(...)`` -- a blocking connect;
* socket-style blocking calls (``accept``/``recv``/``recv_into``/
  ``send``/``sendall``/``connect``/``makefile``) on a receiver that is
  never visibly switched to non-blocking mode -- i.e. no
  ``<name>.setblocking(False)`` anywhere in the same file for the
  receiver's terminal name (``conn.sock.recv`` is keyed on ``sock``).

The reachability analysis is intraprocedural by design: calls into
other modules (the store's SQLite writes, for instance) are the loop's
*budgeted* work, bounded by batch size, and are out of scope here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from ..findings import Finding
from ..project import Project, SourceFile, attribute_chain
from ..registry import Rule, register

#: Methods that anchor the reachability walk when a class defines them.
LOOP_ROOTS = ("_serve_loop",)

#: Socket methods that block unless the fd is non-blocking.
_BLOCKING_SOCKET_METHODS = {
    "accept", "recv", "recv_into", "send", "sendall", "connect", "makefile",
}


def _self_calls(node: ast.FunctionDef, self_name: str) -> Set[str]:
    called: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Call):
            chain = attribute_chain(child.func)
            if len(chain) == 2 and chain[0] == self_name:
                called.add(chain[1])
    return called


def _normalize(name: str) -> str:
    # `listener.setblocking(False)` then `self._listener = listener`:
    # match the local and the attribute it becomes by stripping the
    # private-underscore prefix.
    return name.lstrip("_")


def _nonblocking_names(tree: ast.Module) -> Set[str]:
    """Terminal receiver names (underscore-normalized) that get
    ``.setblocking(False)`` somewhere in the file."""
    names: Set[str] = set()
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        chain = attribute_chain(node.func)
        if chain and chain[-1] == "setblocking" and len(chain) >= 2:
            if node.args and isinstance(node.args[0], ast.Constant) \
                    and node.args[0].value is False:
                names.add(_normalize(chain[-2]))
    return names


@register
class EventLoopBlockingRule(Rule):
    id = "event-loop-blocking"
    summary = (
        "code reachable from _serve_loop must not sleep, spawn "
        "subprocesses, or touch blocking sockets"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.files:
            nonblocking = None  # computed lazily, only when a loop exists
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.ClassDef):
                    continue
                methods: Dict[str, ast.FunctionDef] = {
                    stmt.name: stmt
                    for stmt in node.body
                    if isinstance(stmt, ast.FunctionDef)
                }
                roots = [name for name in LOOP_ROOTS if name in methods]
                if not roots:
                    continue
                if nonblocking is None:
                    nonblocking = _nonblocking_names(source.tree)
                reachable = self._reachable(methods, roots)
                for name in sorted(reachable):
                    yield from self._check_method(
                        source, node.name, methods[name], nonblocking
                    )

    def _reachable(
        self, methods: Dict[str, ast.FunctionDef], roots: List[str]
    ) -> Set[str]:
        reachable: Set[str] = set()
        frontier = list(roots)
        while frontier:
            name = frontier.pop()
            if name in reachable:
                continue
            reachable.add(name)
            args = methods[name].args
            all_args = args.posonlyargs + args.args
            self_name = all_args[0].arg if all_args else "self"
            for callee in _self_calls(methods[name], self_name):
                if callee in methods and callee not in reachable:
                    frontier.append(callee)
        return reachable

    def _check_method(
        self,
        source: SourceFile,
        class_name: str,
        method: ast.FunctionDef,
        nonblocking: Set[str],
    ) -> Iterator[Finding]:
        where = f"{class_name}.{method.name} (reachable from verdict-loop)"
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if not chain:
                continue
            if chain == ("time", "sleep"):
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=f"time.sleep() in {where} stalls every client",
                )
            elif chain[0] == "subprocess":
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=f"subprocess call in {where}: child processes "
                            "take arbitrary time",
                )
            elif chain == ("socket", "create_connection"):
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=f"blocking connect in {where}",
                )
            elif (
                len(chain) >= 2
                and chain[-1] in _BLOCKING_SOCKET_METHODS
                and _normalize(chain[-2]) not in nonblocking
            ):
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=(
                        f"socket .{chain[-1]}() on `{chain[-2]}` in {where} "
                        f"but no `{chain[-2]}.setblocking(False)` in this "
                        "file -- the loop may block"
                    ),
                )
