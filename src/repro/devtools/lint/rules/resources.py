"""resource-ownership: one SQLite owner, no leaked handles in the store
stack.

Two sub-checks, both about who may hold a close()-bearing resource:

1. **Single connection owner.**  ``sqlite3.connect`` may appear only in
   ``src/repro/store/store.py`` -- :class:`FaultDictionaryStore` is the
   sole object that opens the dictionary (quarantine, schema refusal
   and WAL setup all live behind that choke point).  A second connect
   site would bypass every one of those guarantees.

2. **Guarded acquisition.**  Inside ``src/repro/store/``, acquiring a
   raw resource (``sqlite3.connect``, ``socket.socket``,
   ``socket.create_connection``) and binding it to a local name is only
   allowed when the same function visibly manages its lifetime: the
   name must be closed somewhere in that function (``finally:``/
   ``except BaseException:`` cleanup both qualify), or the acquisition
   must happen in a ``with`` item, or the handle must be stored on
   ``self`` (the owner's own ``close()`` then manages it).

The check is intentionally per-function and name-based -- it will not
prove your cleanup runs on every path, but it catches the case that
actually bites: an acquisition with *no* visible release at all.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set, Tuple

from ..findings import Finding
from ..project import Project, SourceFile, attribute_chain
from ..registry import Rule, register

#: The only file allowed to call sqlite3.connect.
CONNECT_OWNER = "repro/store/store.py"

#: Calls treated as raw-resource acquisitions inside src/repro/store/.
_ACQUIRERS: Tuple[Tuple[str, ...], ...] = (
    ("sqlite3", "connect"),
    ("socket", "socket"),
    ("socket", "create_connection"),
)


def _is_acquirer(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and attribute_chain(node.func) in _ACQUIRERS
    )


@register
class ResourceOwnershipRule(Rule):
    id = "resource-ownership"
    summary = (
        "sqlite3.connect only in store/store.py; store-stack resource "
        "acquisitions must have a visible owner or close"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.files:
            yield from self._check_connect_owner(source)
            if "repro/store/" in source.relpath:
                yield from self._check_acquisitions(source)

    def _check_connect_owner(self, source: SourceFile) -> Iterator[Finding]:
        if source.relpath.endswith(CONNECT_OWNER):
            return
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and \
                    attribute_chain(node.func) == ("sqlite3", "connect"):
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=(
                        "sqlite3.connect outside store/store.py -- only "
                        "FaultDictionaryStore may open the dictionary "
                        "(quarantine/schema/WAL guarantees live there)"
                    ),
                )

    def _check_acquisitions(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_function(source, node)

    def _check_function(
        self, source: SourceFile, func: ast.AST
    ) -> Iterator[Finding]:
        closed = self._closed_names(func)
        for node in ast.walk(func):
            if not isinstance(node, ast.Assign) or not _is_acquirer(node.value):
                continue
            for target in node.targets:
                if isinstance(target, ast.Attribute):
                    continue  # self._x = ... : owner-managed
                if isinstance(target, ast.Name) and target.id in closed:
                    continue  # visibly closed in this function
                name = target.id if isinstance(target, ast.Name) else "?"
                yield Finding(
                    rule=self.id, path=source.relpath, line=node.lineno,
                    message=(
                        f"`{name}` acquires a raw resource but this "
                        f"function never calls `{name}.close()` -- use "
                        "try/finally, a with block, or store it on self"
                    ),
                )

    def _closed_names(self, func: ast.AST) -> Set[str]:
        closed: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if len(chain) == 2 and chain[1] == "close":
                    closed.add(chain[0])
        return closed
