"""lock-discipline: lock-guarded attributes stay lock-guarded.

The store stack (``service.py``, ``store.py``, ``metrics.py``,
``tracer.py``, ``resilience.py``) protects shared mutable state with
``with self._lock:`` blocks (any ``self`` attribute whose name ends in
``lock`` counts -- the service uses ``_state_lock`` and
``_teardown_lock`` too).  The invariant this rule enforces: **an
attribute ever written inside a lock block of a class must never be
read or written outside one** elsewhere in that class.

Two deliberate exemptions, both about happens-before edges that make
lock-free access safe by construction:

* ``__init__`` bodies -- the object is not yet published to other
  threads while it is being constructed;
* the lock attributes themselves.

Accesses inside nested ``def``/``lambda`` bodies are treated as
*unlocked* even when the definition site sits in a ``with self._lock``
block: the closure runs later, when the lock is long released (the
metrics-collector lambdas are exactly this trap).

Genuinely safe lock-free reads (single-writer loop threads, monotonic
int sampling) exist; waive them line by line with
``# repro-lint: disable=lock-discipline -- <why the race is benign>``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Set, Tuple

from ..findings import Finding
from ..project import Project, SourceFile, attribute_chain
from ..registry import Rule, register


def _is_lock_attr(name: str) -> bool:
    return name.endswith("lock")


@dataclass
class _Access:
    attr: str
    line: int
    locked: bool
    write: bool
    method: str


class _ClassAuditor(ast.NodeVisitor):
    """Collect every ``self.X`` access in one class body, tagged with
    whether it happened under a ``with self.<...lock>`` block."""

    def __init__(self) -> None:
        self.accesses: List[_Access] = []
        self._lock_depth = 0
        self._method = ""
        self._self_name = "self"

    # -- structure --------------------------------------------------------------

    def visit_method(self, node: ast.FunctionDef) -> None:
        self._method = node.name
        args = node.args.posonlyargs + node.args.args
        self._self_name = args[0].arg if args else "self"
        for statement in node.body:
            self.visit(statement)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._deferred_body(node.body)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._deferred_body(node.body)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._deferred_body([node.body])

    def _deferred_body(self, body: List[ast.AST]) -> None:
        # A nested function/lambda executes after the enclosing with
        # block exits: whatever lock is held *now* proves nothing then.
        saved = self._lock_depth
        self._lock_depth = 0
        for statement in body:
            self.visit(statement)
        self._lock_depth = saved

    def visit_With(self, node: ast.With) -> None:
        holds_lock = False
        for item in node.items:
            chain = attribute_chain(item.context_expr)
            if (
                len(chain) == 2
                and chain[0] == self._self_name
                and _is_lock_attr(chain[1])
            ):
                holds_lock = True
            else:
                self.visit(item.context_expr)
            if item.optional_vars is not None:
                self.visit(item.optional_vars)
        if holds_lock:
            self._lock_depth += 1
        for statement in node.body:
            self.visit(statement)
        if holds_lock:
            self._lock_depth -= 1

    # -- accesses ---------------------------------------------------------------

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.value, ast.Name) and \
                node.value.id == self._self_name:
            self.accesses.append(_Access(
                attr=node.attr,
                line=node.lineno,
                locked=self._lock_depth > 0,
                write=isinstance(node.ctx, (ast.Store, ast.Del)),
                method=self._method,
            ))
        self.generic_visit(node)


@register
class LockDisciplineRule(Rule):
    id = "lock-discipline"
    summary = (
        "attributes written under `with self.*lock` must never be "
        "touched outside one (outside __init__)"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.files:
            yield from self._check_file(source)

    def _check_file(self, source: SourceFile) -> Iterator[Finding]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(source, node)

    def _check_class(
        self, source: SourceFile, node: ast.ClassDef
    ) -> Iterator[Finding]:
        auditor = _ClassAuditor()
        for statement in node.body:
            if isinstance(statement, ast.FunctionDef):
                auditor.visit_method(statement)
        guarded: Set[str] = {
            access.attr
            for access in auditor.accesses
            if access.write and access.locked
            and not _is_lock_attr(access.attr)
        }
        if not guarded:
            return
        seen: Set[Tuple[int, str]] = set()
        for access in auditor.accesses:
            if (
                access.attr in guarded
                and not access.locked
                and access.method != "__init__"
            ):
                key = (access.line, access.attr)
                if key in seen:
                    continue
                seen.add(key)
                verb = "written" if access.write else "read"
                yield Finding(
                    rule=self.id,
                    path=source.relpath,
                    line=access.line,
                    message=(
                        f"{node.name}.{access.attr} is guarded by a lock "
                        f"elsewhere but {verb} here without one "
                        f"(in {access.method})"
                    ),
                )
