"""metric-catalog: every ``repro.*`` series literal is declared.

:mod:`repro.telemetry.catalog` is the closed set of series names the
stack may register.  This rule finds every instrument call --
``.counter(...)``, ``.gauge(...)``, ``.histogram(...)``,
``.collector(...)``, ``.adopt(...)``, ``.series(...)`` -- whose first
argument is a string literal starting with ``repro.`` and checks it
against the catalog:

* a plain literal must be declared verbatim;
* an f-string like ``f"repro.kernel.cache.{field}"`` contributes only
  its static prefix, so at least one catalogued name must start with
  that prefix (the runtime cross-check test closes the remaining gap
  by asserting a fully instrumented campaign registers only catalogued
  names).

A typo'd name -- ``repro.sevice.requests`` -- fails the build instead
of silently creating a parallel series nobody reads.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

from ....telemetry.catalog import METRIC_SERIES
from ..findings import Finding
from ..project import Project, attribute_chain
from ..registry import Rule, register

#: Methods whose first argument names a series.
_INSTRUMENT_METHODS = {
    "counter", "gauge", "histogram", "collector", "adopt", "series",
}


def _series_literal(node: ast.AST) -> Optional[Tuple[str, bool]]:
    """(text, is_prefix) when ``node`` is a repro.* series literal."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return (node.value, False) if node.value.startswith("repro.") else None
    if isinstance(node, ast.JoinedStr):
        prefix = ""
        for value in node.values:
            if isinstance(value, ast.Constant) and \
                    isinstance(value.value, str):
                prefix += value.value
            else:
                break
        if prefix.startswith("repro."):
            return prefix, True
    return None


@register
class MetricCatalogRule(Rule):
    id = "metric-catalog"
    summary = (
        "every repro.* series name passed to an instrument call must be "
        "declared in telemetry/catalog.py"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.files:
            if source.relpath.endswith("repro/telemetry/catalog.py"):
                continue
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call) or not node.args:
                    continue
                chain = attribute_chain(node.func)
                if not chain or chain[-1] not in _INSTRUMENT_METHODS:
                    continue
                literal = _series_literal(node.args[0])
                if literal is None:
                    continue
                text, is_prefix = literal
                if is_prefix:
                    if any(name.startswith(text) for name in METRIC_SERIES):
                        continue
                    yield Finding(
                        rule=self.id, path=source.relpath, line=node.lineno,
                        message=(
                            f"no catalogued series starts with f-string "
                            f"prefix {text!r} -- declare the series in "
                            "telemetry/catalog.py"
                        ),
                    )
                elif text not in METRIC_SERIES:
                    yield Finding(
                        rule=self.id, path=source.relpath, line=node.lineno,
                        message=(
                            f"series {text!r} is not declared in "
                            "telemetry/catalog.py (typo, or add it to the "
                            "catalog first)"
                        ),
                    )
