"""injectable-clock: wall clocks and unseeded RNGs are injectable, not
ambient.

Byte-identical manifests and exact-timing tests depend on every time
source and RNG being injectable: :class:`RetryPolicy` takes
``clock``/``sleep``/``seed``, :class:`SpanTracer` and
:class:`Telemetry` take ``clock``, and ``run_campaign`` takes
``clock``.  This rule forbids *calling* ``time.time()``,
``time.monotonic()`` or ``random.Random()`` (no seed) anywhere in
``src/`` outside a small declared allowlist.  Referencing
``time.monotonic`` as a default (``clock or time.monotonic``) is fine
-- the caller can still override it; calling it inline is not.

Allowlist (file suffix -> permitted calls), each entry with its reason:

* ``repro/store/store.py`` / ``time.time()`` -- row timestamps
  (``created_unix``/``last_used_unix``) and the compaction ``now``
  default are *operational* wall-clock metadata, stripped from every
  deterministic artifact and overridable via ``compact(now=...)``;
* ``repro/store/service.py`` / ``time.monotonic()`` -- daemon uptime
  and loop timers (checkpoint cadence, idle reaping) are single-process
  operational timing that never lands in a verdict or manifest.

Anything else needs a line-level waiver with a justification:
``# repro-lint: disable=injectable-clock -- <why wall-clock is right>``.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator

from ..findings import Finding
from ..project import Project, attribute_chain
from ..registry import Rule, register

#: file-suffix -> calls that file may make inline (reasons above).
ALLOWLIST: Dict[str, FrozenSet[str]] = {
    "repro/store/store.py": frozenset({"time.time"}),
    "repro/store/service.py": frozenset({"time.monotonic"}),
}


@register
class InjectableClockRule(Rule):
    id = "injectable-clock"
    summary = (
        "no inline time.time()/time.monotonic()/unseeded random.Random() "
        "outside the declared allowlist"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        for source in project.files:
            allowed: FrozenSet[str] = frozenset()
            for suffix, calls in ALLOWLIST.items():
                if source.relpath.endswith(suffix):
                    allowed = calls
                    break
            for node in ast.walk(source.tree):
                if not isinstance(node, ast.Call):
                    continue
                chain = attribute_chain(node.func)
                if chain in (("time", "time"), ("time", "monotonic")):
                    name = ".".join(chain)
                    if name in allowed:
                        continue
                    yield Finding(
                        rule=self.id, path=source.relpath, line=node.lineno,
                        message=(
                            f"inline {name}() call -- accept an injectable "
                            "`clock` (see RetryPolicy/SpanTracer) or waive "
                            "with a justification"
                        ),
                    )
                elif chain == ("random", "Random") and not node.args \
                        and not node.keywords:
                    yield Finding(
                        rule=self.id, path=source.relpath, line=node.lineno,
                        message=(
                            "random.Random() without a seed -- thread an "
                            "explicit seed through (see RetryPolicy.seed)"
                        ),
                    )
