"""wire-contract: SERVICE_OPS, ``_dispatch`` and docs/PROTOCOL.md agree.

The verdict-service wire protocol is specified three times: the
``SERVICE_OPS`` registry tuple in ``service.py``, the ``op == "..."``
comparisons in :meth:`VerdictService._dispatch`, and the op table in
``docs/PROTOCOL.md`` §4.  This rule (the generalization of the old
``benchmarks/check_protocol_doc.py`` gate) extracts all three sets and
requires pairwise agreement **in both directions** -- an op added to
the code without a doc row fails, and so does a documented op the
daemon no longer dispatches.

The rule activates only when a scanned file ends with
``repro/store/service.py``; the protocol doc is located relative to
that file (``<repo>/docs/PROTOCOL.md``), so a doctored tree under
``tmp/src/repro/store/`` lints hermetically.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import FrozenSet, Iterator, Optional, Tuple

from ..findings import Finding
from ..project import Project, SourceFile
from ..registry import Rule, register

#: The registry tuple to extract from service.py.
_REGISTRY_NAME = "SERVICE_OPS"

#: `op == "<name>"` comparisons inside the _dispatch body.
_DISPATCH_BODY = re.compile(r"def _dispatch\(.*?\n(.*?)\n    def ", re.DOTALL)
_DISPATCH_OP = re.compile(r'op == "([a-z_]+)"')

#: `| `op` | ...` rows of the PROTOCOL.md op table.
_DOC_ROW = re.compile(r"\|\s*`([a-z_]+)`\s*\|")


def registry_ops(source: SourceFile) -> Tuple[Optional[int], FrozenSet[str]]:
    """(line, ops) of the SERVICE_OPS tuple, parsed from the AST."""
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and \
                        target.id == _REGISTRY_NAME:
                    if isinstance(node.value, (ast.Tuple, ast.List)):
                        ops = frozenset(
                            el.value for el in node.value.elts
                            if isinstance(el, ast.Constant)
                            and isinstance(el.value, str)
                        )
                        return node.lineno, ops
    return None, frozenset()


def dispatched_ops(source: SourceFile) -> Tuple[int, FrozenSet[str]]:
    """(line, ops) compared against in the ``_dispatch`` body."""
    line = 1
    match = re.search(r"def _dispatch\(", source.text)
    if match is not None:
        line = source.text.count("\n", 0, match.start()) + 1
    body = _DISPATCH_BODY.search(source.text)
    if body is None:
        return line, frozenset()
    return line, frozenset(_DISPATCH_OP.findall(body.group(1)))


def documented_ops(doc_text: str) -> FrozenSet[str]:
    """Ops with a backticked row in the PROTOCOL.md op table."""
    return frozenset(
        match.group(1)
        for line in doc_text.splitlines()
        if (match := _DOC_ROW.search(line)) is not None
    )


def protocol_doc_path(service_file: Path) -> Path:
    """``docs/PROTOCOL.md`` relative to ``src/repro/store/service.py``."""
    return service_file.parents[3] / "docs" / "PROTOCOL.md"


@register
class WireContractRule(Rule):
    id = "wire-contract"
    summary = (
        "SERVICE_OPS, _dispatch and docs/PROTOCOL.md must list the same "
        "ops, in both directions"
    )

    def check(self, project: Project) -> Iterator[Finding]:
        source = project.find("repro/store/service.py")
        if source is None:
            return
        reg_line, registry = registry_ops(source)
        if reg_line is None:
            yield Finding(
                rule=self.id, path=source.relpath, line=1,
                message=f"{_REGISTRY_NAME} tuple not found in service.py",
            )
            return
        disp_line, dispatched = dispatched_ops(source)
        doc_path = protocol_doc_path(source.path)
        if not doc_path.exists():
            yield Finding(
                rule=self.id, path=source.relpath, line=reg_line,
                message=f"protocol doc missing: {doc_path}",
            )
            return
        documented = documented_ops(doc_path.read_text(encoding="utf-8"))
        doc_rel = _relative_to_root(doc_path, project.root)

        yield from self._diff(
            source.relpath, disp_line, "dispatched by _dispatch",
            dispatched, "registered in SERVICE_OPS", registry,
        )
        yield from self._diff(
            source.relpath, reg_line, "registered in SERVICE_OPS",
            registry, "dispatched by _dispatch", dispatched,
        )
        yield from self._diff(
            source.relpath, reg_line, "registered in SERVICE_OPS",
            registry, "documented in PROTOCOL.md", documented,
        )
        yield from self._diff(
            doc_rel, 1, "documented in PROTOCOL.md",
            documented, "registered in SERVICE_OPS", registry,
        )

    def _diff(
        self,
        path: str,
        line: int,
        have_label: str,
        have: FrozenSet[str],
        want_label: str,
        want: FrozenSet[str],
    ) -> Iterator[Finding]:
        missing = sorted(have - want)
        if missing:
            ops = ", ".join(missing)
            yield Finding(
                rule=self.id, path=path, line=line,
                message=f"op(s) {have_label} but not {want_label}: {ops}",
            )


def _relative_to_root(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()
