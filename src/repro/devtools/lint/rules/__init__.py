"""Shipped rules.  Importing this package registers every rule with
:mod:`repro.devtools.lint.registry`; add new rule modules to the import
list below (explicit beats directory scanning -- a missing import is a
visibly absent rule, not a silently skipped one)."""

from . import determinism  # noqa: F401
from . import eventloop  # noqa: F401
from . import locks  # noqa: F401
from . import metric_names  # noqa: F401
from . import resources  # noqa: F401
from . import wire  # noqa: F401
