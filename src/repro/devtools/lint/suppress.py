"""Inline suppression comments: ``# repro-lint: disable=<rule> -- why``.

Two directive forms, both requiring a justification after ``--``:

* ``# repro-lint: disable=<rules> -- why`` -- waives the named rules on
  its own line; when the comment stands alone on a line, it waives the
  *next* line instead (so a long statement can carry its waiver above
  it).
* ``# repro-lint: disable-scope=<rules> -- why`` -- waives the named
  rules across the innermost enclosing function or class, for methods
  whose lock-free accesses are safe wholesale (a constructor-like
  ``start()`` running before its worker thread exists, a collector
  registrar that samples without the state lock by design).

Directives are found with :mod:`tokenize`, so only real comments count
-- a docstring or string literal that *mentions* the syntax is inert.
Hygiene is enforced by the scanner itself, as ``suppression``
findings: every directive must carry a justification (an unexplained
waiver is exactly the convention-rot this suite exists to kill), and
the rule ids named must exist (a typo'd ``disable=`` cannot silently
suppress nothing while looking like it did).

Suppressions are matched *after* rules run: rules stay oblivious to
the mechanism and a ``--rule``-filtered run still honours waivers.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Set, Tuple

from .findings import Finding
from .project import SourceFile

#: The directive grammar: kind (line/scope), rule ids, tail (-- reason).
_DIRECTIVE = re.compile(
    r"^#\s*repro-lint:\s*disable(?P<scope>-scope)?="
    r"(?P<rules>[A-Za-z0-9_*,-]+)(?P<tail>.*)$"
)
#: Any comment that *tries* to be a directive (for malformed detection).
_ATTEMPT = re.compile(r"^#\s*repro-lint\b")
_JUSTIFIED = re.compile(r"\s*--\s*\S")


@dataclass
class SuppressionIndex:
    """Which rules are waived on which lines/ranges of one file."""

    by_line: Dict[int, Set[str]] = field(default_factory=dict)
    by_range: List[Tuple[int, int, Set[str]]] = field(default_factory=list)
    problems: List[Finding] = field(default_factory=list)

    def covers(self, rule: str, line: int) -> bool:
        waived = self.by_line.get(line, set())
        if rule in waived or "*" in waived:
            return True
        for start, end, rules in self.by_range:
            if start <= line <= end and (rule in rules or "*" in rules):
                return True
        return False


def _comment_tokens(text: str) -> List[Tuple[int, int, str]]:
    """(line, col, comment-text) for every real comment in ``text``."""
    comments: List[Tuple[int, int, str]] = []
    try:
        tokens = tokenize.generate_tokens(io.StringIO(text).readline)
        for token in tokens:
            if token.type == tokenize.COMMENT:
                comments.append(
                    (token.start[0], token.start[1], token.string)
                )
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        pass  # ast.parse already succeeded; treat trailers as commentless
    return comments


def _enclosing_scope(tree: ast.Module, line: int) -> Tuple[int, int]:
    """(start, end) of the innermost def/class containing ``line``;
    (0, 0) when the directive is at module level (not allowed)."""
    best: Tuple[int, int] = (0, 0)
    for node in ast.walk(tree):
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            start, end = node.lineno, node.end_lineno or node.lineno
            if start <= line <= end and (
                best == (0, 0) or start > best[0]
            ):
                best = (start, end)
    return best


def scan_suppressions(
    source: SourceFile, known_rules: Iterable[str]
) -> SuppressionIndex:
    """Build the suppression index for one file."""
    known = set(known_rules)
    index = SuppressionIndex()
    for lineno, col, comment in _comment_tokens(source.text):
        if not _ATTEMPT.match(comment):
            continue
        match = _DIRECTIVE.match(comment)
        if match is None:
            index.problems.append(Finding(
                rule="suppression", path=source.relpath, line=lineno,
                message="malformed repro-lint directive (expected "
                        "'# repro-lint: disable=<rule> -- reason')",
            ))
            continue
        rules = {r for r in match.group("rules").split(",") if r}
        unknown = sorted(r for r in rules if r != "*" and r not in known)
        if unknown:
            index.problems.append(Finding(
                rule="suppression", path=source.relpath, line=lineno,
                message="suppression names unknown rule(s): "
                        + ", ".join(unknown),
            ))
            continue
        if not _JUSTIFIED.match(match.group("tail")):
            index.problems.append(Finding(
                rule="suppression", path=source.relpath, line=lineno,
                message="suppression lacks a justification -- write "
                        "'# repro-lint: disable=<rule> -- why it is safe'",
            ))
            continue
        if match.group("scope"):
            start, end = _enclosing_scope(source.tree, lineno)
            if (start, end) == (0, 0):
                index.problems.append(Finding(
                    rule="suppression", path=source.relpath, line=lineno,
                    message="disable-scope must sit inside a function or "
                            "class (module-wide waivers are not allowed)",
                ))
                continue
            index.by_range.append((start, end, rules))
        else:
            standalone = source.lines[lineno - 1][:col].strip() == ""
            target = lineno + 1 if standalone else lineno
            index.by_line.setdefault(target, set()).update(rules)
    return index


def apply_suppressions(
    findings: Iterable[Finding],
    indexes: Dict[str, SuppressionIndex],
) -> Tuple[List[Finding], int]:
    """Drop findings waived by their file's index; return (kept, waived)."""
    kept: List[Finding] = []
    waived = 0
    for finding in findings:
        index = indexes.get(finding.path)
        if index is not None and index.covers(finding.rule, finding.line):
            waived += 1
            continue
        kept.append(finding)
    return kept, waived
