"""The one value every rule produces: a :class:`Finding`.

A finding is a location plus a sentence: rule id, repo-relative path,
1-based line, message.  Findings sort by (path, line, rule) so reports
are deterministic regardless of rule registration or filesystem walk
order -- the JSON report is diffable across runs by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    message: str

    def sort_key(self) -> Tuple[str, int, str, str]:
        return (self.path, self.line, self.rule, self.message)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"
