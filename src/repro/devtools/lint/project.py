"""Source loading: walk paths, parse each ``*.py`` once, share the ASTs.

Every rule sees the same :class:`Project` -- a list of parsed
:class:`SourceFile` objects plus the repo root -- so a six-rule run
parses each file exactly once.  Files that fail to parse become
``parse-error`` findings instead of crashing the run: a half-written
file should fail the lint, not the linter.

Paths are reported repo-relative with ``/`` separators (stable across
machines and OSes); the repo root is taken to be the nearest ancestor
of the first scanned path containing a ``src/repro`` package, falling
back to the current working directory.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .findings import Finding

#: Directory names never descended into.
_SKIP_DIRS = {"__pycache__", ".git", ".venv", "node_modules"}


@dataclass
class SourceFile:
    """One parsed Python source file."""

    path: Path            # absolute
    relpath: str          # repo-relative, "/"-separated
    text: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.lines:
            self.lines = self.text.splitlines()


@dataclass
class Project:
    """Everything a rule may look at: parsed files plus the repo root."""

    root: Path
    files: List[SourceFile]
    parse_failures: List[Finding]

    def find(self, suffix: str) -> Optional[SourceFile]:
        """The scanned file whose relpath ends with ``suffix``, if any."""
        for source in self.files:
            if source.relpath.endswith(suffix):
                return source
        return None


def _detect_root(start: Path) -> Path:
    probe = start if start.is_dir() else start.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return Path.cwd()


def _iter_python_files(path: Path) -> List[Path]:
    if path.is_file():
        return [path] if path.suffix == ".py" else []
    found: List[Path] = []
    for dirpath, dirnames, filenames in os.walk(path):
        dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
        for name in sorted(filenames):
            if name.endswith(".py"):
                found.append(Path(dirpath) / name)
    return found


def load_project(paths: Sequence[str], root: Optional[Path] = None) -> Project:
    """Parse every ``*.py`` under ``paths`` into one shared :class:`Project`.

    Missing paths raise ``FileNotFoundError`` -- a typo'd path silently
    linting nothing would read as a clean run.
    """
    resolved: List[Path] = []
    for raw in paths:
        candidate = Path(raw).resolve()
        if not candidate.exists():
            raise FileNotFoundError(f"lint path does not exist: {raw}")
        resolved.append(candidate)
    if root is None:
        root = _detect_root(resolved[0]) if resolved else Path.cwd()
    root = root.resolve()

    seen: set = set()
    files: List[SourceFile] = []
    failures: List[Finding] = []
    for base in resolved:
        for path in _iter_python_files(base):
            if path in seen:
                continue
            seen.add(path)
            relpath = _relativize(path, root)
            text = path.read_text(encoding="utf-8")
            try:
                tree = ast.parse(text, filename=str(path))
            except SyntaxError as error:
                failures.append(Finding(
                    rule="parse-error",
                    path=relpath,
                    line=error.lineno or 1,
                    message=f"file does not parse: {error.msg}",
                ))
                continue
            files.append(SourceFile(
                path=path, relpath=relpath, text=text, tree=tree,
            ))
    return Project(root=root, files=files, parse_failures=failures)


def _relativize(path: Path, root: Path) -> str:
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.as_posix()


def attribute_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` -> ``("a", "b", "c")``; empty tuple when the
    expression is not a plain name/attribute chain (calls, subscripts)."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()
