"""Reporters: human text and machine JSON for one lint run.

The JSON document is schema-versioned and fully deterministic (sorted
findings, sorted counts, no timestamps) so CI can diff two reports and
tests can assert the exact shape.  Schema::

    {
      "schema": 1,
      "tool": "repro-lint",
      "checked_files": <int>,
      "waived": <int>,            # findings silenced by suppressions
      "counts": {"<rule>": <int>, ...},
      "findings": [{"rule", "path", "line", "message"}, ...]
    }
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Dict, List, Sequence

from .findings import Finding

REPORT_SCHEMA = 1


def sorted_findings(findings: Sequence[Finding]) -> List[Finding]:
    return sorted(findings, key=Finding.sort_key)


def build_report(
    findings: Sequence[Finding], checked_files: int, waived: int
) -> Dict[str, Any]:
    ordered = sorted_findings(findings)
    counts = Counter(finding.rule for finding in ordered)
    return {
        "schema": REPORT_SCHEMA,
        "tool": "repro-lint",
        "checked_files": checked_files,
        "waived": waived,
        "counts": {rule: counts[rule] for rule in sorted(counts)},
        "findings": [finding.to_dict() for finding in ordered],
    }


def render_json(
    findings: Sequence[Finding], checked_files: int, waived: int
) -> str:
    report = build_report(findings, checked_files, waived)
    return json.dumps(report, indent=2, sort_keys=False) + "\n"


def render_text(
    findings: Sequence[Finding], checked_files: int, waived: int
) -> str:
    lines = [finding.render() for finding in sorted_findings(findings)]
    tail = (
        f"repro lint: {len(findings)} finding(s) in {checked_files} file(s)"
        + (f", {waived} waived" if waived else "")
    )
    lines.append(tail)
    return "\n".join(lines) + "\n"
