"""The lint driver: load sources, run rules, honour suppressions.

``run_lint`` is the single entry point everything else wraps -- the
``repro lint`` subcommand, the ``benchmarks/check_protocol_doc.py``
compatibility shim, and the test suite all call it.  The result object
carries the kept findings, the waived count and the file count so every
caller renders through :mod:`repro.devtools.lint.report` identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .findings import Finding
from .project import Project, load_project
from .registry import all_rule_ids, resolve_rules
from .suppress import SuppressionIndex, apply_suppressions, scan_suppressions


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: List[Finding]
    checked_files: int
    waived: int
    project: Project

    @property
    def ok(self) -> bool:
        return not self.findings


def run_lint(
    paths: Sequence[str],
    only: Sequence[str] = (),
    root: Optional[Path] = None,
) -> LintResult:
    """Lint ``paths`` with the selected rules (all when ``only`` empty)."""
    project = load_project(paths, root=root)
    rules = resolve_rules(only)

    findings: List[Finding] = list(project.parse_failures)
    for rule in rules:
        findings.extend(rule.check(project))

    known = all_rule_ids()
    indexes: Dict[str, SuppressionIndex] = {}
    for source in project.files:
        index = scan_suppressions(source, known)
        if index.by_line or index.by_range or index.problems:
            indexes[source.relpath] = index

    kept, waived = apply_suppressions(findings, indexes)
    # Suppression hygiene problems are findings themselves and cannot
    # be waived away by another suppression.
    for index in indexes.values():
        kept.extend(index.problems)
    return LintResult(
        findings=sorted(kept, key=Finding.sort_key),
        checked_files=len(project.files),
        waived=waived,
        project=project,
    )
