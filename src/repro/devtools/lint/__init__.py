"""``repro lint``: project-specific static analysis (PR 10).

An AST-based rule suite enforcing the invariants the reproduction's
correctness story actually rests on -- lock discipline in the store
stack, a never-blocking ``verdict-loop``, injectable clocks and seeded
RNGs, single-owner SQLite connections, a wire protocol doc that cannot
drift from the code, and a closed catalog of telemetry series names.
See ``docs/LINTS.md`` for the rule-by-rule contract and the
suppression policy (``# repro-lint: disable=<rule> -- why``).

Public surface::

    from repro.devtools.lint import run_lint, render_text, render_json
    result = run_lint(["src/repro"])
    result.ok, result.findings
"""

from .findings import Finding
from .registry import RULES, Rule, all_rule_ids, register, resolve_rules
from .report import REPORT_SCHEMA, build_report, render_json, render_text
from .runner import LintResult, run_lint

__all__ = [
    "Finding",
    "LintResult",
    "REPORT_SCHEMA",
    "RULES",
    "Rule",
    "all_rule_ids",
    "build_report",
    "register",
    "render_json",
    "render_text",
    "resolve_rules",
    "run_lint",
]
