"""Rule registry: one decorator, one dict, no magic discovery.

A rule is a class with a stable ``id`` (the name suppressions and
``--rule`` use), a one-line ``summary``, and a ``check(project)``
method yielding :class:`~repro.devtools.lint.findings.Finding`.  Rules
receive the whole parsed :class:`~repro.devtools.lint.project.Project`
rather than one file at a time because two of the six shipped rules
(wire-contract, metric-catalog) are cross-artifact by nature; purely
per-file rules just loop over ``project.files``.

Registration is explicit: ``rules/__init__.py`` imports each rule
module, and the ``@register`` decorator indexes the class by id.
Duplicate ids are a programming error and raise immediately.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Type

from .findings import Finding
from .project import Project

#: Rule ids reserved by the framework itself (never registered classes).
FRAMEWORK_RULES = ("parse-error", "suppression")


class Rule:
    """Base class; subclasses set ``id``/``summary`` and yield findings."""

    id: str = ""
    summary: str = ""

    def check(self, project: Project) -> Iterator[Finding]:
        raise NotImplementedError


RULES: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.id:
        raise ValueError(f"rule class {cls.__name__} has no id")
    if cls.id in RULES or cls.id in FRAMEWORK_RULES:
        raise ValueError(f"duplicate rule id: {cls.id}")
    RULES[cls.id] = cls
    return cls


def all_rule_ids() -> List[str]:
    """Every valid rule id: registered rules plus framework ids."""
    _ensure_loaded()
    return sorted(RULES) + list(FRAMEWORK_RULES)


def resolve_rules(only: Iterable[str] = ()) -> List[Rule]:
    """Instantiate the selected rules (all, when ``only`` is empty)."""
    _ensure_loaded()
    wanted = list(only)
    if not wanted:
        return [RULES[rule_id]() for rule_id in sorted(RULES)]
    instances: List[Rule] = []
    for rule_id in wanted:
        if rule_id not in RULES:
            raise KeyError(
                f"unknown rule {rule_id!r}; known: {', '.join(sorted(RULES))}"
            )
        instances.append(RULES[rule_id]())
    return instances


def _ensure_loaded() -> None:
    # Importing the package registers every shipped rule exactly once.
    from . import rules  # noqa: F401  (import for side effect)
