"""Developer tooling that ships with the package but never runs in
production paths: today the :mod:`repro.devtools.lint` static-analysis
suite (``repro lint``).  Nothing under here may be imported by runtime
modules -- the dependency arrow points one way, from devtools into the
code it checks."""
