"""NumPy lane-tiled bit-parallel march-test fault simulation.

The word-packed engine (:mod:`repro.simulator.bitengine`) packs one
simulation lane per bit of arbitrary-precision Python integers.  That
removes the per-fault-instance scalar loop, but every bitwise operation
still walks the whole bignum -- per-op cost grows linearly with the
lane count *through interpreter-level bignum arithmetic*, each op
allocating a fresh ``int``.  This module re-tiles the same lanes onto
fixed-width ``uint64`` NumPy arrays instead:

* the packed memory is a pair of arrays ``value``/``defined`` of shape
  ``(cells, tiles)`` where ``tiles = ceil(lanes / 64)``;
* lane 0 is the fault-free reference machine, lanes ``1..k`` carry one
  behavioural variant of one fault case each (identical lane layout to
  the bignum engine);
* one march operation advances every lane with a constant number of
  *vectorized* bitwise kernels over contiguous memory -- C loops at
  memory bandwidth, no per-op allocation of the whole lane state;
* a verifying read checks all lanes at once by XOR against the
  expected-mask array: ``detected |= (reported ^ expected) & defined``.

The lane *semantics* are not re-implemented: a
:class:`~repro.simulator.bitengine.PackedSimulation` is built first and
its :class:`~repro.simulator.bitengine.LanePlan` -- the per-address
dispatch tables compiled from :class:`~repro.faults.primitives.
MaskTransition`, the coupling/redirect groups and the SOF latch word --
is converted field by field into uint64 tile planes.  Because every
lane carries exactly one fault, the per-lane bit masks of distinct
rules are disjoint, which makes the conversion free to merge rules
that share a target (one vectorized update instead of a Python loop
per rule) without changing any lane's behaviour.

Two physical layouts are chosen automatically per simulation:

* **dense** (small memories): cross-cell effects (coupling victims,
  decoder redirects) are whole ``(cells, tiles)`` mask planes applied
  with full-array ops -- minimal dispatch overhead;
* **compact** (large memories, where dense planes per (cell, value)
  would not fit): the same effects as ``(row, tile, word)`` triples
  applied with fancy-indexed gather/scatter, so memory stays
  proportional to the fault population.

NumPy is an *optional* dependency (the ``[fast]`` extra).  Importing
this module without NumPy succeeds -- :func:`numpy_available` reports
the situation and any attempt to actually construct the engine raises
:class:`NumpyUnavailableError` with installation instructions; the
kernel backend layer degrades to the pure-Python ``bitparallel``
engine with a one-line warning (see :mod:`repro.kernel.backends`).

Equivalence with the bignum engine and the scalar engine over the full
standard fault library is property-tested in
``tests/kernel/test_equivalence.py`` and
``tests/simulator/test_tilengine.py`` (including lane counts that are
not multiples of 64, so the partial last tile is explicitly
exercised).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

try:  # NumPy ships as the optional [fast] extra.
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via tests' import block
    _np = None

from ..faults.instances import FaultCase
from ..march.element import DelayElement, MarchElement
from ..march.test import MarchTest
from .bitengine import INVERT, LanePlan, PackedSimulation

#: Fixed tile width: one NumPy uint64 word holds 64 lanes.
WORD_BITS = 64
_WORD_MASK = (1 << WORD_BITS) - 1

#: Above this many words per cross-cell mask plane (``cells * tiles``),
#: the conversion switches from dense planes to compact gather/scatter
#: triples: dense planes cost O(cells^2 * tiles) memory across all
#: per-(cell, value) programs, which is fine at size 8 and absurd at
#: size 256.
DENSE_WORD_LIMIT = 4096


class NumpyUnavailableError(ImportError):
    """The lane-tiled engine was requested but NumPy is not installed."""


def numpy_available() -> bool:
    """True when the optional NumPy dependency imported successfully."""
    return _np is not None


def numpy_version() -> Optional[str]:
    """The imported NumPy version, or ``None`` without NumPy."""
    return None if _np is None else _np.__version__


def require_numpy(feature: str = "the lane-tiled 'bitparallel-np' engine"):
    """Return the ``numpy`` module or raise a clear, actionable error."""
    if _np is None:
        raise NumpyUnavailableError(
            f"{feature} requires NumPy, which is not installed;"
            " install the optional extra (pip install 'repro[fast]' or"
            " pip install 'numpy>=1.24') or use the pure-Python"
            " 'bitparallel' backend instead"
        )
    return _np


# -- mask conversion helpers ---------------------------------------------------


def _tiles_of(mask: int, tiles: int):
    """A Python-int lane mask as a ``(tiles,)`` uint64 array."""
    return _np.array(
        [(mask >> (WORD_BITS * t)) & _WORD_MASK for t in range(tiles)],
        dtype=_np.uint64,
    )


def _split_words(mask: int) -> List[Tuple[int, int]]:
    """Non-zero ``(tile_index, word)`` pairs of a Python-int lane mask."""
    out = []
    tile = 0
    while mask:
        word = mask & _WORD_MASK
        if word:
            out.append((tile, word))
        mask >>= WORD_BITS
        tile += 1
    return out


class _Scatter:
    """Cross-cell *update* plane: ``target[row] op= mask`` for many rows.

    ``entries`` is a list of ``(row, python-int mask)`` pairs; rows may
    repeat (masks are OR-merged -- legal because lane masks of distinct
    rules are disjoint).  Dense layout stores one ``(cells, tiles)``
    plane; compact layout stores unique ``(row, tile)`` coordinate
    arrays plus their mask words, applied by fancy-indexed
    gather/scatter (uniqueness makes the read-modify-write safe).
    """

    __slots__ = ("plane", "rows", "tiles", "words")

    def __init__(self, entries, cells: int, tiles: int, dense: bool) -> None:
        merged = {}
        for row, mask in entries:
            if mask:
                merged[row] = merged.get(row, 0) | mask
        if dense:
            plane = _np.zeros((cells, tiles), dtype=_np.uint64)
            for row, mask in merged.items():
                plane[row] |= _tiles_of(mask, tiles)
            self.plane = plane
            self.rows = self.tiles = self.words = None
        else:
            coords = []
            for row, mask in merged.items():
                for tile, word in _split_words(mask):
                    coords.append((row, tile, word))
            self.plane = None
            self.rows = _np.array([c[0] for c in coords], dtype=_np.intp)
            self.tiles = _np.array([c[1] for c in coords], dtype=_np.intp)
            self.words = _np.array([c[2] for c in coords], dtype=_np.uint64)

    def or_into(self, target, gate=None) -> None:
        """``target[row] |= mask [& gate]`` for every entry."""
        if self.plane is not None:
            target |= self.plane if gate is None else self.plane & gate
            return
        words = self.words if gate is None else self.words & gate[self.tiles]
        patch = target[self.rows, self.tiles]
        patch |= words
        target[self.rows, self.tiles] = patch

    def andnot_into(self, target, gate=None) -> None:
        """``target[row] &= ~(mask [& gate])`` for every entry."""
        if self.plane is not None:
            target &= ~(self.plane if gate is None else self.plane & gate)
            return
        words = self.words if gate is None else self.words & gate[self.tiles]
        patch = target[self.rows, self.tiles]
        patch &= ~words
        target[self.rows, self.tiles] = patch

    def xor_defined_into(self, value, defined, gate) -> None:
        """``value[row] ^= mask & gate & defined[row]`` (CFin inversion)."""
        if self.plane is not None:
            value ^= self.plane & gate & defined
            return
        words = self.words & gate[self.tiles]
        words &= defined[self.rows, self.tiles]
        patch = value[self.rows, self.tiles]
        patch ^= words
        value[self.rows, self.tiles] = patch


class _Gather:
    """Cross-cell *read* plane: OR of ``source[row] & mask`` over rows.

    Serves decoder read-redirects and the ADF-C read-combine models:
    ``summed2(state)`` returns the lane-disjoint union of every source
    row's masked contribution over *both* state planes (value and
    defined) as one ``(2, tiles)`` word pair -- one vectorized kernel
    for the pair instead of two, which matters because decoder-heavy
    reads are the hot path of the Table-3 workloads.
    """

    __slots__ = ("plane", "union", "not_union", "_ntiles",
                 "planes2", "rows2", "tiles2", "words2")

    def __init__(self, entries, cells: int, tiles: int, dense: bool) -> None:
        union = 0
        merged = {}
        for row, mask in entries:
            if mask:
                merged[row] = merged.get(row, 0) | mask
                union |= mask
        self.union = _tiles_of(union, tiles)
        self.not_union = ~self.union
        self._ntiles = tiles
        if dense:
            plane = _np.zeros((cells, tiles), dtype=_np.uint64)
            for row, mask in merged.items():
                plane[row] |= _tiles_of(mask, tiles)
            self.plane = plane
            self.planes2 = self.rows2 = self.tiles2 = self.words2 = None
        else:
            coords = []
            for row, mask in merged.items():
                for tile, word in _split_words(mask):
                    coords.append((row, tile, word))
            self.plane = None
            rows = _np.array([c[0] for c in coords], dtype=_np.intp)
            tidx = _np.array([c[1] for c in coords], dtype=_np.intp)
            words = _np.array([c[2] for c in coords], dtype=_np.uint64)
            # Duplicated coordinates addressing both state planes, so
            # one fancy-indexed gather covers value and defined.
            k = len(coords)
            self.planes2 = _np.repeat(_np.arange(2, dtype=_np.intp), k)
            self.rows2 = _np.tile(rows, 2)
            self.tiles2 = _np.tile(tidx, 2)
            self.words2 = _np.tile(words, 2)

    def summed2(self, state):
        """OR over rows of ``state[:, row] & mask`` as ``(2, tiles)``."""
        if self.plane is not None:
            return _np.bitwise_or.reduce(self.plane & state, axis=1)
        out = _np.zeros((2, self._ntiles), dtype=_np.uint64)
        _np.bitwise_or.at(
            out,
            (self.planes2, self.tiles2),
            state[self.planes2, self.rows2, self.tiles2] & self.words2,
        )
        return out


# -- per-address programs ------------------------------------------------------


class _WriteProgram:
    """Everything a ``w<v>`` at one address does, pre-merged and tiled."""

    __slots__ = (
        "rules", "static_lost", "not_stuck0", "stuck1", "set1", "set0",
        "setdef", "cw1", "cw0", "cwi", "cwdef", "cfst_victim", "transit_old",
    )

    def __init__(self) -> None:
        #: Conditional MaskTransition rules: (mask, old, flip_store, lose).
        self.rules: Tuple = ()
        self.static_lost = None
        self.not_stuck0 = None
        self.stuck1 = None
        # Unconditional cross-cell effects (redirect/echo value placement
        # plus CFst aggressor-side forcing), pre-merged by polarity.
        self.set1: Optional[_Scatter] = None
        self.set0: Optional[_Scatter] = None
        self.setdef: Optional[_Scatter] = None
        # Aggressor-transition-gated coupling effects.
        self.cw1: Optional[_Scatter] = None
        self.cw0: Optional[_Scatter] = None
        self.cwi: Optional[_Scatter] = None
        self.cwdef: Optional[_Scatter] = None
        #: CFst victim-side re-enforcement: (aggressor, state, forced, mask).
        self.cfst_victim: Tuple = ()
        #: Aggressor old-value polarity completing a transition for this
        #: written value (old == 1 - v).
        self.transit_old = True


class _ReadProgram:
    """Everything a read at one address does, pre-merged and tiled."""

    __slots__ = (
        "rules", "force_not2", "force_or2", "redirect",
        "combine_own", "combine_own_not", "combine_and", "combine_or",
        "force_set1", "force_set0", "force_setdef", "sof_here",
        "not_sof_here", "sof_tracking",
    )

    def __init__(self) -> None:
        #: Conditional rules: (mask, old, flip_store, flip_report).
        self.rules: Tuple = ()
        #: Stuck/dead forcing as one (2, tiles) pair over the stacked
        #: (value, defined) report: ``rep2 = (rep2 & not2) | or2``.
        self.force_not2 = None
        self.force_or2 = None
        #: Decoder read-redirects + ADF-C "other" model (same formula).
        self.redirect: Optional[_Gather] = None
        #: ADF-C "own" model: report the cell's own content for the lane.
        self.combine_own = None
        self.combine_own_not = None
        #: ADF-C "and"/"or" conflict models.
        self.combine_and: Optional[_Gather] = None
        self.combine_or: Optional[_Gather] = None
        #: CFrd: victims forced by any read of this (aggressor) address.
        self.force_set1: Optional[_Scatter] = None
        self.force_set0: Optional[_Scatter] = None
        self.force_setdef: Optional[_Scatter] = None
        self.sof_here = None
        self.not_sof_here = None
        self.sof_tracking = None


class TiledSimulation:
    """A lane-tiled fault-simulation instance for one case set.

    Drop-in equivalent of :class:`~repro.simulator.bitengine.
    PackedSimulation` -- same constructor signature, same
    :meth:`run_variant` / :meth:`worst_case_verdicts` contract, same
    lane layout -- with the packed state held in ``(cells, tiles)``
    uint64 NumPy arrays instead of Python bignums.  The plan is
    read-only after construction, so one instance serves any number of
    runs and can be cached across candidate tests.
    """

    def __init__(
        self,
        cases: Sequence[FaultCase],
        size: int,
        dense_limit: int = DENSE_WORD_LIMIT,
    ) -> None:
        require_numpy()
        # Reuse the bignum engine's whole compilation pipeline: instance
        # encoders, MaskTransition rules, coupling groups, SOF latch.
        packed = PackedSimulation(cases, size)
        self.size = size
        self.cases = packed.cases
        self.lanes = packed.lanes
        self.tiles = max(1, -(-self.lanes // WORD_BITS))
        self._dense = size * self.tiles <= dense_limit
        self._convert(packed.plan)
        self._index_cases()

    # -- plan conversion --------------------------------------------------------

    def _convert(self, plan: LanePlan) -> None:
        n, tiles, dense = self.size, self.tiles, self._dense
        self.full = _tiles_of(plan.full, tiles)
        self.zeros = _np.zeros(tiles, dtype=_np.uint64)
        self.latch_init = _tiles_of(plan.sof_latch_init, tiles)
        self.sof_any = bool(plan.sof_lanes)
        self.wait_rules = tuple(
            (cell, _tiles_of(mask, tiles), bool(old))
            for cell, mask, old in plan.wait_rules
        )
        self.writes = [
            [self._write_program(plan, cell, v) for v in (0, 1)]
            for cell in range(n)
        ]
        self.reads = [self._read_program(plan, cell) for cell in range(n)]

    def _scatter(self, entries) -> Optional[_Scatter]:
        entries = [(row, mask) for row, mask in entries if mask]
        if not entries:
            return None
        return _Scatter(entries, self.size, self.tiles, self._dense)

    def _gather(self, entries) -> Optional[_Gather]:
        entries = [(row, mask) for row, mask in entries if mask]
        if not entries:
            return None
        return _Gather(entries, self.size, self.tiles, self._dense)

    def _write_program(self, plan: LanePlan, cell: int, v: int):
        tiles = self.tiles
        program = _WriteProgram()
        program.transit_old = v == 0  # old == 1 completes a down transition
        merged = {}
        for mask, trigger, old, flip_store, lose in plan.write_rules[cell]:
            if trigger != v:
                continue
            key = (bool(old), bool(flip_store), bool(lose))
            merged[key] = merged.get(key, 0) | mask
        program.rules = tuple(
            (_tiles_of(mask, tiles), old, flip_store, lose)
            for (old, flip_store, lose), mask in merged.items()
        )
        if plan.write_lost[cell]:
            program.static_lost = _tiles_of(plan.write_lost[cell], tiles)
        if plan.stuck0[cell] or plan.stuck1[cell]:
            program.not_stuck0 = ~_tiles_of(plan.stuck0[cell], tiles)
            program.stuck1 = _tiles_of(plan.stuck1[cell], tiles)
        # Unconditional placements: decoder redirect/echo write the
        # written value into other rows; CFst aggressor entry forces
        # victims while the aggressor holds the just-written state.
        placed = plan.write_redirect[cell] + plan.write_echo[cell]
        set1 = [(t, m) for t, m in placed] if v else []
        set0 = [(t, m) for t, m in placed] if not v else []
        setdef = list(placed)
        for victim, forced, mask in plan.cfst_write[cell][v]:
            (set1 if forced else set0).append((victim, mask))
            setdef.append((victim, mask))
        program.set1 = self._scatter(set1)
        program.set0 = self._scatter(set0)
        program.setdef = self._scatter(setdef)
        # Transition-gated coupling (CFid forces, CFin inversions).
        cw1, cw0, cwi, cwdef = [], [], [], []
        for victim, action, mask in plan.cf_write[cell][v]:
            if action == INVERT:
                cwi.append((victim, mask))
            elif action:
                cw1.append((victim, mask))
                cwdef.append((victim, mask))
            else:
                cw0.append((victim, mask))
                cwdef.append((victim, mask))
        program.cw1 = self._scatter(cw1)
        program.cw0 = self._scatter(cw0)
        program.cwi = self._scatter(cwi)
        program.cwdef = self._scatter(cwdef)
        program.cfst_victim = tuple(
            (agg, bool(state), bool(forced), _tiles_of(mask, tiles))
            for agg, state, forced, mask in plan.cfst_victim[cell]
        )
        return program

    def _read_program(self, plan: LanePlan, cell: int):
        tiles = self.tiles
        program = _ReadProgram()
        merged = {}
        for mask, old, flip_store, flip_report in plan.read_rules[cell]:
            key = (bool(old), bool(flip_store), bool(flip_report))
            merged[key] = merged.get(key, 0) | mask
        program.rules = tuple(
            (_tiles_of(mask, tiles), old, flip_store, flip_report)
            for (old, flip_store, flip_report), mask in merged.items()
        )
        force0 = plan.stuck0[cell] | plan.dead0[cell]
        force1 = plan.stuck1[cell] | plan.dead1[cell]
        if force0 or force1:
            # Value plane: clear force0, set force1; defined plane:
            # clear nothing, set force0|force1.
            program.force_not2 = _np.stack(
                [~_tiles_of(force0, tiles), ~self.zeros]
            )
            program.force_or2 = _np.stack(
                [_tiles_of(force1, tiles), _tiles_of(force0 | force1, tiles)]
            )
        redirect = list(plan.read_redirect[cell])
        own = 0
        combine_and, combine_or = [], []
        for other, model, mask in plan.read_combine[cell]:
            if model == "own":
                own |= mask
            elif model == "other":
                redirect.append((other, mask))
            elif model == "and":
                combine_and.append((other, mask))
            else:  # "or"
                combine_or.append((other, mask))
        program.redirect = self._gather(redirect)
        if own:
            program.combine_own = _tiles_of(own, tiles)
            program.combine_own_not = ~program.combine_own
        program.combine_and = self._gather(combine_and)
        program.combine_or = self._gather(combine_or)
        fs1 = [(v, m) for v, forced, m in plan.cf_read[cell] if forced]
        fs0 = [(v, m) for v, forced, m in plan.cf_read[cell] if not forced]
        program.force_set1 = self._scatter(fs1)
        program.force_set0 = self._scatter(fs0)
        program.force_setdef = self._scatter(
            [(v, m) for v, _forced, m in plan.cf_read[cell]]
        )
        if plan.sof_lanes:
            program.sof_here = _tiles_of(plan.sof_cell[cell], tiles)
            program.not_sof_here = ~program.sof_here
            program.sof_tracking = _tiles_of(
                plan.sof_lanes & ~plan.sof_cell[cell], tiles
            )
        return program

    def _index_cases(self) -> None:
        """Per-case contiguous lane ranges for vectorized verdicts."""
        starts, lane = [], 1
        for fault_case in self.cases:
            starts.append(lane - 1)  # relative to the fault-lane array
            lane += len(fault_case.variants)
        self.case_starts = _np.array(starts, dtype=_np.intp)
        fault_lanes = _np.arange(1, self.lanes, dtype=_np.intp)
        self._lane_tile = fault_lanes // WORD_BITS
        self._lane_shift = (fault_lanes % WORD_BITS).astype(_np.uint64)
        self.fault_mask = self.full.copy()
        if self.lanes > 1:
            self.fault_mask[0] &= ~_np.uint64(1)
        else:
            self.fault_mask[0] = _np.uint64(0)

    # -- execution --------------------------------------------------------------

    def run_variant(self, test: MarchTest):
        """One concrete order realization; returns the detected tiles.

        Bit ``L`` (lane ``L``) of the returned ``(tiles,)`` uint64 array
        is set when that lane observed at least one verifying read whose
        definite value differed from the expectation -- identical to
        :meth:`PackedSimulation.run_variant`, word for word.
        """
        n, tiles = self.size, self.tiles
        full, zeros = self.full, self.zeros
        # Stacked packed memory: plane 0 holds values, plane 1 holds
        # definedness, so read-side effects that transform both planes
        # with the same mask run as one (2, tiles) kernel.
        state = _np.zeros((2, n, tiles), dtype=_np.uint64)
        value = state[0]
        defined = state[1]
        detected = _np.zeros(tiles, dtype=_np.uint64)
        latch = self.latch_init.copy()
        writes, reads = self.writes, self.reads
        for element in test.elements:
            if isinstance(element, DelayElement):
                for cell, mask, old in self.wait_rules:
                    row = value[cell]
                    fired = mask & defined[cell]
                    fired &= row if old else ~row
                    row ^= fired
                continue
            assert isinstance(element, MarchElement)
            ops = element.ops
            for a in element.order.addresses(n):
                for op in ops:
                    v = op.value
                    if op.is_write:
                        program = writes[a][v]
                        va = value[a]
                        da = defined[a]
                        lost = program.static_lost
                        flip = None
                        for mask, old, flip_store, lose in program.rules:
                            fired = mask & da
                            fired &= va if old else ~va
                            if fired.any():
                                if lose:
                                    lost = fired if lost is None \
                                        else lost | fired
                                elif flip_store:
                                    flip = fired if flip is None \
                                        else flip | fired
                        transit = None
                        if program.cwdef is not None or \
                                program.cwi is not None:
                            transit = da & (
                                va if program.transit_old else ~va
                            )
                            if not transit.any():
                                transit = None
                        if lost is None:
                            written = full
                            new_val = full if v else zeros
                            value[a] = new_val
                        else:
                            written = full & ~lost
                            new_val = va & lost
                            if v:
                                new_val |= written
                            va[:] = new_val
                        if program.not_stuck0 is not None:
                            va &= program.not_stuck0
                            va |= program.stuck1
                        if flip is not None:
                            va ^= flip
                        da |= written
                        if program.setdef is not None:
                            if program.set1 is not None:
                                program.set1.or_into(value)
                            if program.set0 is not None:
                                program.set0.andnot_into(value)
                            program.setdef.or_into(defined)
                        if transit is not None:
                            if program.cw1 is not None:
                                program.cw1.or_into(value, transit)
                            if program.cw0 is not None:
                                program.cw0.andnot_into(value, transit)
                            if program.cwi is not None:
                                program.cwi.xor_defined_into(
                                    value, defined, transit
                                )
                            if program.cwdef is not None:
                                program.cwdef.or_into(defined, transit)
                        for agg, held_state, forced, mask in \
                                program.cfst_victim:
                            agg_val = value[agg]
                            held = mask & defined[agg]
                            held &= agg_val if held_state else ~agg_val
                            if held.any():
                                if forced:
                                    va |= held
                                else:
                                    va &= ~held
                        continue
                    # -- read ------------------------------------------------
                    program = reads[a]
                    va = value[a]
                    da = defined[a]
                    # Private (reported, reported_def) pair: a stored
                    # flip must not leak into the report (DRDF) and a
                    # reported flip must not leak into the cell (IRF),
                    # so the pair detaches from the memory row up front.
                    rep2 = state[:, a].copy()
                    for mask, old, flip_store, flip_report in program.rules:
                        rep = rep2[0]
                        fired = mask & rep2[1]
                        fired &= rep if old else ~rep
                        if fired.any():
                            if flip_store:
                                va ^= fired
                            if flip_report:
                                rep ^= fired
                    if program.force_not2 is not None:
                        rep2 &= program.force_not2
                        rep2 |= program.force_or2
                    if program.redirect is not None:
                        g = program.redirect
                        rep2 &= g.not_union
                        rep2 |= g.summed2(state)
                    if program.combine_own is not None:
                        rep2 &= program.combine_own_not
                        rep2 |= state[:, a] & program.combine_own
                    if program.combine_and is not None:
                        g = program.combine_and
                        masked = state[:, a] & g.summed2(state)
                        rep2 &= g.not_union
                        rep2 |= masked
                    if program.combine_or is not None:
                        g = program.combine_or
                        s2 = g.summed2(state)
                        rep2 &= g.not_union
                        rep2[0] |= (va & g.union) | s2[0]
                        rep2[1] |= da & s2[1]
                    if program.force_setdef is not None:
                        if program.force_set1 is not None:
                            program.force_set1.or_into(value)
                        if program.force_set0 is not None:
                            program.force_set0.andnot_into(value)
                        program.force_setdef.or_into(defined)
                    if program.sof_here is not None:
                        here = program.sof_here
                        if here.any():
                            rep2[0] &= program.not_sof_here
                            rep2[0] |= latch & here
                            rep2[1] |= here
                        reloaded = program.sof_tracking & da
                        if reloaded.any():
                            latch &= ~reloaded
                            latch |= va & reloaded
                    if v is not None:
                        expected = full if v else zeros
                        mismatch = rep2[0] ^ expected
                        mismatch &= rep2[1]
                        detected |= mismatch
        return detected

    def worst_case_verdicts(self, test: MarchTest) -> List[bool]:
        """Worst-case detection verdict per case, in input order.

        Same contract as the bignum engine: a case is detected only when
        **every** order realization of ``test`` detects **every** of its
        behavioural variant lanes.
        """
        agreed = self.full.copy()
        for variant in test.concrete_order_variants():
            agreed &= self.run_variant(variant)
            if not (agreed & self.fault_mask).any():
                break
        if not self.cases:
            return []
        lane_bits = (agreed[self._lane_tile] >> self._lane_shift) \
            & _np.uint64(1)
        verdicts = _np.bitwise_and.reduceat(lane_bits, self.case_starts)
        return [bool(flag) for flag in verdicts]


def tiled_detects(
    test: MarchTest, cases: Sequence[FaultCase], size: int
) -> List[bool]:
    """One-shot worst-case verdicts for lane-packable ``cases``."""
    return TiledSimulation(cases, size).worst_case_verdicts(test)


def chunk_cases(
    cases: Sequence[FaultCase], chunks: int
) -> List[List[FaultCase]]:
    """Split cases into ``chunks`` contiguous, lane-balanced slices.

    The unit of composition with the process backend: each slice
    becomes its own :class:`TiledSimulation` (own reference lane, own
    contiguous tile range), so workers never share mutable state and
    concatenating the per-slice verdict lists reproduces the
    single-simulation output exactly.
    """
    cases = list(cases)
    chunks = max(1, min(chunks, len(cases)))
    total_lanes = sum(len(c.variants) for c in cases)
    target = total_lanes / chunks
    out: List[List[FaultCase]] = []
    current: List[FaultCase] = []
    current_lanes = 0
    remaining = chunks
    for fault_case in cases:
        boundary = current and current_lanes >= target and remaining > 1
        if boundary:
            out.append(current)
            current, current_lanes = [], 0
            remaining -= 1
        current.append(fault_case)
        current_lanes += len(fault_case.variants)
    out.append(current)
    return out
