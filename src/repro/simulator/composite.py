"""Composite fault injection: several defects in one memory.

Production dies rarely carry exactly one defect.  A
:class:`CompositeFaultInstance` chains several single-fault instances:
each write/read/wait flows through every component in order, letting
defects interact (including masking, as with linked faults).

The chaining contract: component k's hooks see the memory as modified
by components 0..k-1 for the *same* operation.  For writes, each
component receives the original written value; for reads, the value
produced by the previous component is what the next one would sense.
This is a behavioural approximation adequate for escape-rate studies
(see ``examples/test_escape_study.py``).
"""

from __future__ import annotations

from typing import Sequence

from ..memory.array import MemoryArray, NullFaultInstance


class CompositeFaultInstance(NullFaultInstance):
    """Chain several fault instances over one memory.

    After every operation each component's :meth:`settle` hook runs,
    letting *persistent-state* defects (stuck cells, state couplings)
    re-assert themselves over later components' base writes.
    """

    def __init__(self, components: Sequence[object]) -> None:
        if not components:
            raise ValueError("composite needs at least one component")
        self.components = list(components)

    def _settle(self, memory: MemoryArray) -> None:
        for component in self.components:
            settle = getattr(component, "settle", None)
            if settle is not None:
                settle(memory)

    def on_write(self, memory: MemoryArray, address: int, value: int) -> None:
        for component in self.components:
            component.on_write(memory, address, value)
        self._settle(memory)

    def on_read(self, memory: MemoryArray, address: int) -> object:
        # Each component may disturb state; the *returned* value is the
        # last component's view (senses whatever earlier defects did to
        # the cell), with any definite corruption along the chain kept.
        value: object = memory.raw[address]
        for component in self.components:
            value = component.on_read(memory, address)
        self._settle(memory)
        return value

    def on_wait(self, memory: MemoryArray) -> None:
        for component in self.components:
            component.on_wait(memory)
        self._settle(memory)


def compose(*components: object) -> CompositeFaultInstance:
    """Convenience constructor.

    >>> from repro.faults.instances import StuckAtInstance
    >>> instance = compose(StuckAtInstance(0, 0), StuckAtInstance(1, 1))
    >>> len(instance.components)
    2
    """
    return CompositeFaultInstance(list(components))
