"""Memory fault simulator and coverage analysis (paper, Section 6).

The execution engine and set-cover helpers are eager imports; the
:mod:`~repro.simulator.faultsim` and :mod:`~repro.simulator.coverage`
re-exports resolve lazily (PEP 562) because those modules sit *above*
:mod:`repro.kernel` -- the kernel imports the engine from this package,
and an eager import here would close an import cycle.
"""

from .engine import (
    MarchRun,
    ReadRecord,
    count_verifying_reads,
    good_run,
    is_well_formed,
    run_march,
)
from .setcover import greedy_cover, is_exact_cover_needed, minimum_cover

_FAULTSIM_NAMES = frozenset(
    {
        "DEFAULT_SIZE",
        "SimulationReport",
        "detection_matrix",
        "detects_case",
        "simulate",
        "simulate_fault_list",
    }
)
_COVERAGE_NAMES = frozenset(
    {
        "CoverageMatrix",
        "ElementaryBlock",
        "coverage_matrix",
        "elementary_blocks",
    }
)

__all__ = [
    "MarchRun",
    "ReadRecord",
    "count_verifying_reads",
    "good_run",
    "is_well_formed",
    "run_march",
    "DEFAULT_SIZE",
    "SimulationReport",
    "detection_matrix",
    "detects_case",
    "simulate",
    "simulate_fault_list",
    "CoverageMatrix",
    "ElementaryBlock",
    "coverage_matrix",
    "elementary_blocks",
    "greedy_cover",
    "is_exact_cover_needed",
    "minimum_cover",
]


def __getattr__(name):
    if name in _FAULTSIM_NAMES:
        from . import faultsim

        return getattr(faultsim, name)
    if name in _COVERAGE_NAMES:
        from . import coverage

        return getattr(coverage, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(__all__))
