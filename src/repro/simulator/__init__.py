"""Memory fault simulator and coverage analysis (paper, Section 6)."""

from .engine import (
    MarchRun,
    ReadRecord,
    count_verifying_reads,
    good_run,
    is_well_formed,
    run_march,
)
from .faultsim import (
    DEFAULT_SIZE,
    SimulationReport,
    detection_matrix,
    detects_case,
    simulate,
    simulate_fault_list,
)
from .coverage import (
    CoverageMatrix,
    ElementaryBlock,
    coverage_matrix,
    elementary_blocks,
)
from .setcover import greedy_cover, is_exact_cover_needed, minimum_cover

__all__ = [
    "MarchRun",
    "ReadRecord",
    "count_verifying_reads",
    "good_run",
    "is_well_formed",
    "run_march",
    "DEFAULT_SIZE",
    "SimulationReport",
    "detection_matrix",
    "detects_case",
    "simulate",
    "simulate_fault_list",
    "CoverageMatrix",
    "ElementaryBlock",
    "coverage_matrix",
    "elementary_blocks",
    "greedy_cover",
    "is_exact_cover_needed",
    "minimum_cover",
]
