"""Set covering (paper, Section 6).

The non-redundancy check reduces to Set Covering over the Coverage
Matrix: find the minimum number of rows (elementary blocks) covering
every column (fault case).  If the minimum equals the total row count,
every block is necessary and the March test is non-redundant.

Exact branch and bound with a greedy upper bound; instances here are
tiny (tens of rows/columns).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Sequence, Set


def greedy_cover(
    rows: Sequence[FrozenSet[int]], universe: Set[int]
) -> List[int]:
    """Classic greedy set cover; returns selected row indices."""
    uncovered = set(universe)
    chosen: List[int] = []
    while uncovered:
        best_row = max(
            range(len(rows)),
            key=lambda r: (len(rows[r] & uncovered), -r),
        )
        gain = rows[best_row] & uncovered
        if not gain:
            raise ValueError("universe is not coverable by the given rows")
        chosen.append(best_row)
        uncovered -= gain
    return chosen


def minimum_cover(
    rows: Sequence[FrozenSet[int]], universe: Set[int]
) -> List[int]:
    """Exact minimum set cover by branch and bound.

    Branches on the least-covered element (fewest candidate rows),
    bounded by the greedy solution.
    """
    universe = set(universe)
    if not universe:
        return []
    coverable = set().union(*rows) if rows else set()
    if not universe <= coverable:
        raise ValueError("universe is not coverable by the given rows")

    best: List[int] = greedy_cover(rows, universe)

    candidates_by_element: Dict[int, List[int]] = {
        element: [r for r in range(len(rows)) if element in rows[r]]
        for element in universe
    }

    def recurse(uncovered: Set[int], chosen: List[int]) -> None:
        nonlocal best
        if not uncovered:
            if len(chosen) < len(best):
                best = list(chosen)
            return
        if len(chosen) + 1 >= len(best):
            # Even one more row cannot beat the incumbent.
            return
        pivot = min(uncovered, key=lambda e: len(candidates_by_element[e]))
        for row_index in candidates_by_element[pivot]:
            chosen.append(row_index)
            recurse(uncovered - rows[row_index], chosen)
            chosen.pop()

    recurse(universe, [])
    return best


def is_exact_cover_needed(
    rows: Sequence[FrozenSet[int]], universe: Set[int]
) -> bool:
    """True when *all* rows are needed: |minimum cover| == #rows.

    This is the paper's non-redundancy criterion.
    """
    useful_rows = [r for r in rows if r & set(universe)]
    if len(useful_rows) != len(rows):
        return False  # a row covering nothing is trivially redundant
    return len(minimum_cover(rows, universe)) == len(rows)
