"""Bit-parallel (word-packed) march-test fault simulation.

The scalar engine (:mod:`repro.simulator.engine`) walks a march test
one address and one fault instance at a time -- O(n) Python operations
per march operation per fault case.  This module packs many simulation
*lanes* into arbitrary-precision Python integers instead: lane 0 is the
fault-free reference machine, lanes 1..k hold one behavioural variant
of one fault case each.  Cell ``c`` of the packed memory is a bitmask
pair ``(value[c], defined[c])`` whose bit ``L`` is lane ``L``'s stored
value and whether that value is a definite binary value rather than
``'-'``.  One march operation then advances *every* lane with a
constant number of bitwise AND/OR/XOR operations on those words, and a
verifying read checks all lanes at once with a single XOR against the
expected-value mask::

    mismatch = (reported ^ expected_mask) & reported_defined

so a size-n memory carrying hundreds of fault instances costs O(ops)
word operations per march element instead of O(ops * n * k) scalar
steps -- the classic bit-parallel fault-simulation trick.

Lane encoding
-------------
A fault instance is *lane-packable* when its behaviour is expressible
as bitwise updates conditioned only on fixed cells of its own lane:

* conditional single-cell faults (TF, RDF, DRDF, IRF, WDF, DRF) compile
  to :class:`~repro.faults.primitives.MaskTransition` rules;
* state faults (SA, the ADF type-A dead cell) become forced-value
  masks applied on every access of their cell;
* coupling faults (CFid, CFin, CFst, CFrd) become per-aggressor-address
  victim-update groups;
* address-decoder faults B/C/D become per-address write/read redirect
  and combine groups;
* the stuck-open fault (SOF) packs through a dedicated per-lane *latch
  word*: each SOF lane carries one bit of shared sense-amplifier state
  that every read of a healthy cell reloads and every read of the open
  cell reports, so the "previous read" coupling that is non-local in
  cell space is still one bit per lane in lane space.

Unknown instance types (user-defined faults, composite multi-defect
injections) are conservatively unpackable: a subclass may override any
behavioural hook, so only exactly-known types are encoded.
:func:`lane_packable_case` is the partition predicate; the
``bitparallel`` kernel backend routes unpackable cases to the scalar
serial engine (see :mod:`repro.kernel.backends`).

Equivalence with the scalar engine over the full standard fault
library is property-tested in ``tests/kernel/test_equivalence.py``.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Sequence, Tuple, Type

from ..faults.instances import (
    CouplingIdempotentInstance,
    CouplingInversionInstance,
    CouplingStateInstance,
    DataRetentionInstance,
    DeadCellInstance,
    FaultCase,
    IncorrectReadInstance,
    MultiCellAccessInstance,
    ReadCouplingInstance,
    ReadDisturbInstance,
    SharedCellAccessInstance,
    StuckAtInstance,
    StuckOpenInstance,
    TransitionFaultInstance,
    WriteDisturbInstance,
    WrongCellAccessInstance,
)
from ..faults.primitives import (
    Effect,
    FaultPrimitive,
    MaskTransition,
    Sensitization,
)
from ..march.element import DelayElement, MarchElement
from ..march.test import MarchTest

#: Victim-action sentinel: invert the victim instead of forcing a value.
INVERT = -1


class UnpackableFaultError(TypeError):
    """A fault instance has no word-packed lane encoding."""


class LanePlan:
    """Per-address bitwise dispatch tables for one packed lane set.

    Built once per (fault cases, size) pair and immutable afterwards;
    every order-variant run shares the plan and keeps its own
    ``value``/``defined`` words, so a plan can be cached and reused
    across many candidate tests probing the same cases.
    """

    def __init__(self, size: int, lanes: int) -> None:
        self.size = size
        self.lanes = lanes
        self.full = (1 << lanes) - 1
        n = size
        # Unconditional state masks (applied on every access of the cell).
        self.stuck0 = [0] * n
        self.stuck1 = [0] * n
        self.dead0 = [0] * n
        self.dead1 = [0] * n
        #: Lanes whose write to the cell is unconditionally lost
        #: (dead cells, writes redirected to another cell).
        self.write_lost = [0] * n
        # Conditional single-cell rules compiled from MaskTransition.
        #   write: (mask, trigger_value, old_value, flip_store, lose_write)
        #   read:  (mask, old_value, flip_store, flip_report)
        #   wait:  (cell, mask, old_value)  -- flip_store implied
        self.write_rules: List[List[Tuple[int, int, int, bool, bool]]] = [
            [] for _ in range(n)
        ]
        self.read_rules: List[List[Tuple[int, int, bool, bool]]] = [
            [] for _ in range(n)
        ]
        self.wait_rules: List[Tuple[int, int, int]] = []
        # Coupling groups.  cf_write[a][v]: victims updated when a write
        # of v to a completes an aggressor transition (old == 1-v);
        # action is a forced value or INVERT.
        self.cf_write: List[Tuple[list, list]] = [([], []) for _ in range(n)]
        #: CFst aggressor side: victims forced when a holds the state.
        self.cfst_write: List[Tuple[list, list]] = [([], []) for _ in range(n)]
        #: CFst victim side: (aggressor, state, forced, mask) re-enforced
        #: after any write to the victim cell.
        self.cfst_victim: List[List[Tuple[int, int, int, int]]] = [
            [] for _ in range(n)
        ]
        #: CFrd: victims forced by any read of the aggressor.
        self.cf_read: List[List[Tuple[int, int, int]]] = [[] for _ in range(n)]
        # Stuck-open sense-amplifier latch: per-lane shared read state.
        #: Lanes whose open cell is ``c``: reads of ``c`` report the
        #: latch word and writes to ``c`` are lost (also in write_lost).
        self.sof_cell = [0] * n
        #: Union of all SOF lanes; a read of any *other* cell reloads
        #: their latch bit with the value the lane observed.
        self.sof_lanes = 0
        #: Power-up latch content per lane (adversarially enumerated).
        self.sof_latch_init = 0
        # Address-decoder redirections.
        self.write_redirect: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.write_echo: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.read_redirect: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self.read_combine: List[List[Tuple[int, str, int]]] = [
            [] for _ in range(n)
        ]

    def add_rule(self, cell: int, mask: int, rule: MaskTransition) -> None:
        """Register a compiled :class:`MaskTransition` for ``mask`` lanes."""
        if rule.trigger == "w":
            self.write_rules[cell].append(
                (mask, rule.trigger_value, rule.old_value, rule.flip_store,
                 rule.lose_write)
            )
        elif rule.trigger == "r":
            self.read_rules[cell].append(
                (mask, rule.old_value, rule.flip_store, rule.flip_report)
            )
        else:
            self.wait_rules.append((cell, mask, rule.old_value))


# -- instance encoders ---------------------------------------------------------
#
# Dispatch is on the *exact* instance type: a subclass may override any
# behavioural hook, so it must fall back to the scalar engine rather
# than silently inherit its base encoding.


def _enc_stuck(inst: StuckAtInstance, plan: LanePlan, m: int) -> None:
    (plan.stuck1 if inst.value else plan.stuck0)[inst.cell] |= m


def _enc_dead(inst: DeadCellInstance, plan: LanePlan, m: int) -> None:
    (plan.dead1 if inst.float_value else plan.dead0)[inst.cell] |= m
    plan.write_lost[inst.cell] |= m


def _enc_transition(inst: TransitionFaultInstance, plan: LanePlan,
                    m: int) -> None:
    sens = Sensitization.UP if inst.rising else Sensitization.DOWN
    primitive = FaultPrimitive(sens, Effect.NO_CHANGE, two_cell=False)
    for rule in primitive.mask_transitions():
        plan.add_rule(inst.cell, m, rule)


def _read_disturb_rule(value: int) -> MaskTransition:
    """RDF as the single-cell ``<r, forced>`` primitive."""
    effect = Effect.FORCE_0 if value else Effect.FORCE_1
    primitive = FaultPrimitive(Sensitization.READ, effect, two_cell=False)
    (rule,) = primitive.mask_transitions()
    return rule


def _enc_read_disturb(inst: ReadDisturbInstance, plan: LanePlan,
                      m: int) -> None:
    rule = _read_disturb_rule(inst.value)
    if inst.deceptive:  # DRDF: the flip happens but the read reports old
        rule = replace(rule, flip_report=False)
    plan.add_rule(inst.cell, m, rule)


def _enc_incorrect_read(inst: IncorrectReadInstance, plan: LanePlan,
                        m: int) -> None:
    # IRF: the wrong value is reported but the cell keeps its state.
    rule = replace(_read_disturb_rule(inst.value), flip_store=False)
    plan.add_rule(inst.cell, m, rule)


def _enc_write_disturb(inst: WriteDisturbInstance, plan: LanePlan,
                       m: int) -> None:
    # Non-transition write flips the cell: no <S,F> sensitization names
    # "a write of v onto v", so the rule is built directly.
    plan.add_rule(
        inst.cell, m,
        MaskTransition("w", old_value=inst.value, trigger_value=inst.value,
                       flip_store=True),
    )


def _enc_retention(inst: DataRetentionInstance, plan: LanePlan,
                   m: int) -> None:
    effect = Effect.FORCE_0 if inst.from_value else Effect.FORCE_1
    primitive = FaultPrimitive(Sensitization.WAIT, effect, two_cell=False)
    for rule in primitive.mask_transitions():
        plan.add_rule(inst.cell, m, rule)


def _enc_stuck_open(inst: StuckOpenInstance, plan: LanePlan, m: int) -> None:
    # SOF: the cell line is open.  Writes to the cell are lost; reads
    # of it report the lane's sense-amplifier latch bit, which every
    # read of a healthy cell reloads with the value it returned.  The
    # freshly-constructed instance's ``latch`` is the power-up content.
    plan.write_lost[inst.cell] |= m
    plan.sof_cell[inst.cell] |= m
    plan.sof_lanes |= m
    if inst.latch:
        plan.sof_latch_init |= m


def _enc_cfid(inst: CouplingIdempotentInstance, plan: LanePlan,
              m: int) -> None:
    written = 1 if inst.rising else 0
    plan.cf_write[inst.aggressor][written].append(
        (inst.victim, inst.force_value, m)
    )


def _enc_cfin(inst: CouplingInversionInstance, plan: LanePlan,
              m: int) -> None:
    written = 1 if inst.rising else 0
    plan.cf_write[inst.aggressor][written].append((inst.victim, INVERT, m))


def _enc_cfst(inst: CouplingStateInstance, plan: LanePlan, m: int) -> None:
    plan.cfst_write[inst.aggressor][inst.agg_state].append(
        (inst.victim, inst.forced_value, m)
    )
    plan.cfst_victim[inst.victim].append(
        (inst.aggressor, inst.agg_state, inst.forced_value, m)
    )


def _enc_cfrd(inst: ReadCouplingInstance, plan: LanePlan, m: int) -> None:
    plan.cf_read[inst.aggressor].append((inst.victim, inst.forced, m))


def _enc_wrong_cell(inst: WrongCellAccessInstance, plan: LanePlan,
                    m: int) -> None:
    # ADF-B: accesses to a land on b.
    plan.write_lost[inst.a] |= m
    plan.write_redirect[inst.a].append((inst.b, m))
    plan.read_redirect[inst.a].append((inst.b, m))


def _enc_shared_cell(inst: SharedCellAccessInstance, plan: LanePlan,
                     m: int) -> None:
    # ADF-D: accesses to b land on a (b is shadowed).
    plan.write_lost[inst.b] |= m
    plan.write_redirect[inst.b].append((inst.a, m))
    plan.read_redirect[inst.b].append((inst.a, m))


def _enc_multi_cell(inst: MultiCellAccessInstance, plan: LanePlan,
                    m: int) -> None:
    # ADF-C: writes to a also reach b; conflicting reads combine.
    plan.write_echo[inst.a].append((inst.b, m))
    plan.read_combine[inst.a].append((inst.b, inst.read_model, m))


_ENCODERS: Dict[Type, Callable[[object, LanePlan, int], None]] = {
    StuckAtInstance: _enc_stuck,
    DeadCellInstance: _enc_dead,
    TransitionFaultInstance: _enc_transition,
    ReadDisturbInstance: _enc_read_disturb,
    IncorrectReadInstance: _enc_incorrect_read,
    WriteDisturbInstance: _enc_write_disturb,
    DataRetentionInstance: _enc_retention,
    StuckOpenInstance: _enc_stuck_open,
    CouplingIdempotentInstance: _enc_cfid,
    CouplingInversionInstance: _enc_cfin,
    CouplingStateInstance: _enc_cfst,
    ReadCouplingInstance: _enc_cfrd,
    WrongCellAccessInstance: _enc_wrong_cell,
    SharedCellAccessInstance: _enc_shared_cell,
    MultiCellAccessInstance: _enc_multi_cell,
}


def lane_packable_case(case: FaultCase) -> bool:
    """True when every behavioural variant of ``case`` can be packed.

    The partition predicate of the ``bitparallel`` backend: packable
    cases share one packed run, the rest route to the scalar engine.
    """
    return all(type(factory()) in _ENCODERS for factory in case.variants)


def partition_cases(
    cases: Sequence[FaultCase],
) -> Tuple[List[FaultCase], List[FaultCase]]:
    """Split ``cases`` into (packable, unpackable) preserving order."""
    packable: List[FaultCase] = []
    unpackable: List[FaultCase] = []
    for case in cases:
        (packable if lane_packable_case(case) else unpackable).append(case)
    return packable, unpackable


class PackedSimulation:
    """A lane-packed fault-simulation instance for one case set.

    Lane 0 is the fault-free reference machine; lanes ``1..k`` carry
    one behavioural variant of one fault case each.  The plan is
    read-only after construction, so one ``PackedSimulation`` serves
    any number of :meth:`run_variant` calls (different tests, different
    order realizations) concurrently with the worst-case conjunction
    taken by :meth:`worst_case_verdicts`.
    """

    def __init__(self, cases: Sequence[FaultCase], size: int) -> None:
        if size <= 0:
            raise ValueError("memory size must be positive")
        self.size = size
        self.cases = tuple(cases)
        lane_specs = []
        for case_index, case in enumerate(self.cases):
            for factory in case.variants:
                lane_specs.append((case_index, factory()))
        self.lanes = 1 + len(lane_specs)
        plan = LanePlan(size, self.lanes)
        self.case_masks = [0] * len(self.cases)
        for bit, (case_index, instance) in enumerate(lane_specs, start=1):
            encoder = _ENCODERS.get(type(instance))
            if encoder is None:
                raise UnpackableFaultError(
                    f"{type(instance).__name__} (case"
                    f" {self.cases[case_index].name!r}) has no word-packed"
                    " lane encoding; route it to the scalar engine"
                )
            encoder(instance, plan, 1 << bit)
            self.case_masks[case_index] |= 1 << bit
        self.plan = plan
        self.full = plan.full

    # -- execution --------------------------------------------------------------

    def run_variant(self, test: MarchTest) -> int:
        """Run one concrete order realization; return the detected mask.

        Bit ``L`` of the result is set when lane ``L`` observed at
        least one verifying read whose definite value differed from the
        expectation -- exactly the scalar engine's ``MarchRun.detected``
        per lane.  Bit 0 (the fault-free reference) only sets for
        malformed tests expecting values the good machine never holds.
        """
        plan = self.plan
        n = self.size
        full = plan.full
        value = [0] * n
        defined = [0] * n
        detected = 0
        stuck0, stuck1 = plan.stuck0, plan.stuck1
        dead0, dead1 = plan.dead0, plan.dead1
        sof_lanes = plan.sof_lanes
        latch = plan.sof_latch_init
        for element in test.elements:
            if isinstance(element, DelayElement):
                for cell, mask, old in plan.wait_rules:
                    fired = mask & defined[cell] & (
                        value[cell] if old else ~value[cell]
                    )
                    if fired:
                        value[cell] ^= fired
                continue
            assert isinstance(element, MarchElement)
            ops = element.ops
            for a in element.order.addresses(n):
                for op in ops:
                    v = op.value
                    if op.is_write:
                        old_val = value[a]
                        old_def = defined[a]
                        lost = plan.write_lost[a]
                        flip = 0
                        for (mask, trigger, old, flip_store,
                             lose) in plan.write_rules[a]:
                            if trigger != v:
                                continue
                            fired = mask & old_def & (
                                old_val if old else ~old_val
                            )
                            if not fired:
                                continue
                            if lose:
                                lost |= fired
                            elif flip_store:
                                flip |= fired
                        written = full & ~lost
                        value_mask = full if v else 0
                        new_val = (old_val & lost) | (value_mask & written)
                        s0, s1 = stuck0[a], stuck1[a]
                        if s0 or s1:
                            new_val = (new_val & ~s0) | s1
                        if flip:
                            new_val ^= flip
                        value[a] = new_val
                        defined[a] = old_def | written
                        for target, mask in plan.write_redirect[a]:
                            value[target] = (
                                (value[target] & ~mask) | (value_mask & mask)
                            )
                            defined[target] |= mask
                        for other, mask in plan.write_echo[a]:
                            value[other] = (
                                (value[other] & ~mask) | (value_mask & mask)
                            )
                            defined[other] |= mask
                        coupled = plan.cf_write[a][v]
                        if coupled:
                            # The aggressor transition completes iff the
                            # old value was the complement of the write.
                            transit = old_def & (old_val if v == 0
                                                 else ~old_val)
                            if transit:
                                for victim, action, mask in coupled:
                                    fired = mask & transit
                                    if not fired:
                                        continue
                                    if action == INVERT:
                                        value[victim] ^= fired & defined[victim]
                                    elif action:
                                        value[victim] |= fired
                                        defined[victim] |= fired
                                    else:
                                        value[victim] &= ~fired
                                        defined[victim] |= fired
                        for victim, forced, mask in plan.cfst_write[a][v]:
                            if forced:
                                value[victim] |= mask
                            else:
                                value[victim] &= ~mask
                            defined[victim] |= mask
                        for agg, state, forced, mask in plan.cfst_victim[a]:
                            held = mask & defined[agg] & (
                                value[agg] if state else ~value[agg]
                            )
                            if not held:
                                continue
                            if forced:
                                value[a] |= held
                            else:
                                value[a] &= ~held
                        continue
                    # -- read ------------------------------------------------
                    raw_val = value[a]
                    raw_def = defined[a]
                    reported = raw_val
                    reported_def = raw_def
                    for mask, old, flip_store, flip_report in plan.read_rules[a]:
                        fired = mask & raw_def & (raw_val if old else ~raw_val)
                        if not fired:
                            continue
                        if flip_store:
                            value[a] ^= fired
                        if flip_report:
                            reported ^= fired
                    s0, s1 = stuck0[a], stuck1[a]
                    d0, d1 = dead0[a], dead1[a]
                    if s0 or s1 or d0 or d1:
                        force0 = s0 | d0
                        force1 = s1 | d1
                        reported = (reported & ~force0) | force1
                        reported_def |= force0 | force1
                    for source, mask in plan.read_redirect[a]:
                        reported = (reported & ~mask) | (value[source] & mask)
                        reported_def = (
                            (reported_def & ~mask) | (defined[source] & mask)
                        )
                    for other, model, mask in plan.read_combine[a]:
                        if model == "own":
                            sub_val, sub_def = value[a], defined[a]
                        elif model == "other":
                            sub_val, sub_def = value[other], defined[other]
                        elif model == "and":
                            sub_val = value[a] & value[other]
                            sub_def = defined[a] & defined[other]
                        else:  # "or"
                            sub_val = value[a] | value[other]
                            sub_def = defined[a] & defined[other]
                        reported = (reported & ~mask) | (sub_val & mask)
                        reported_def = (reported_def & ~mask) | (sub_def & mask)
                    for victim, forced, mask in plan.cf_read[a]:
                        if forced:
                            value[victim] |= mask
                        else:
                            value[victim] &= ~mask
                        defined[victim] |= mask
                    if sof_lanes:
                        sof_here = plan.sof_cell[a]
                        if sof_here:
                            # Reading the open cell reports the latch
                            # (always a definite binary value).
                            reported = (reported & ~sof_here) | (
                                latch & sof_here
                            )
                            reported_def |= sof_here
                        tracking = sof_lanes & ~sof_here
                        if tracking:
                            # Reading a healthy cell reloads the latch
                            # with the observed value where definite.
                            reloaded = tracking & defined[a]
                            if reloaded:
                                latch = (latch & ~reloaded) | (
                                    value[a] & reloaded
                                )
                    if v is not None:
                        expected = full if v else 0
                        detected |= (reported ^ expected) & reported_def
        return detected

    def worst_case_verdicts(self, test: MarchTest) -> List[bool]:
        """Worst-case detection verdict per case, in input order.

        Matches the scalar kernel's semantics exactly: a case is
        detected only when **every** order realization of ``test``
        detects **every** behavioural variant lane.
        """
        fault_lanes = self.full & ~1
        agreed = self.full
        for variant in test.concrete_order_variants():
            agreed &= self.run_variant(variant)
            if not (agreed & fault_lanes):
                break
        return [(agreed & mask) == mask for mask in self.case_masks]


def packed_detects(
    test: MarchTest, cases: Sequence[FaultCase], size: int
) -> List[bool]:
    """One-shot worst-case verdicts for lane-packable ``cases``."""
    return PackedSimulation(cases, size).worst_case_verdicts(test)
