"""Coverage Matrix and non-redundancy analysis (paper, Section 6).

A March test is split into *elementary blocks*; we operationalize a
block as one verifying read per cell position (the observation point of
an excite/observe pair -- the excitation context is whatever precedes
the read).  The Coverage Matrix CM has one row per block and one column
per target fault case; ``CM[block][case] = 1`` when the block alone
(all other reads demoted to non-verifying, so machine behaviour is
unchanged) detects the case.

The test detects everything iff each column has a 1; it is
non-redundant iff the minimum set cover of the columns needs **all**
rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..faults.instances import FaultCase
from ..kernel import (
    DEFAULT_SIZE,
    SimulationKernel,
    concrete_realization as _kernel_concrete_realization,
    get_default_kernel,
)
from ..march.element import MarchElement
from ..march.test import MarchTest
from .setcover import is_exact_cover_needed, minimum_cover


@dataclass(frozen=True)
class ElementaryBlock:
    """One observation point: the k-th verifying read (per cell) of the
    test, identified by element and in-element op index."""

    index: int
    element_index: int
    op_index: int

    def describe(self, test: MarchTest) -> str:
        element = test.elements[self.element_index]
        assert isinstance(element, MarchElement)
        return (
            f"block{self.index}"
            f"[elem{self.element_index}:{element.order.symbol}"
            f" op{self.op_index}:{element.ops[self.op_index]}]"
        )


def elementary_blocks(test: MarchTest) -> Tuple[ElementaryBlock, ...]:
    """Enumerate the verifying reads of a test, in execution order."""
    blocks: List[ElementaryBlock] = []
    for element_index, element in enumerate(test.elements):
        if not isinstance(element, MarchElement):
            continue
        for op_index, op in enumerate(element.ops):
            if op.is_read and op.value is not None:
                blocks.append(
                    ElementaryBlock(len(blocks), element_index, op_index)
                )
    return tuple(blocks)


@dataclass
class CoverageMatrix:
    """The CM of Section 6 plus the derived redundancy verdicts."""

    test: MarchTest
    blocks: Tuple[ElementaryBlock, ...]
    case_names: Tuple[str, ...]
    matrix: Tuple[Tuple[bool, ...], ...]  # [block][case]

    @property
    def covered_columns(self) -> Set[int]:
        return {
            c
            for c in range(len(self.case_names))
            if any(row[c] for row in self.matrix)
        }

    @property
    def covers_all(self) -> bool:
        return len(self.covered_columns) == len(self.case_names)

    def rows_as_sets(self) -> List[FrozenSet[int]]:
        return [
            frozenset(c for c, hit in enumerate(row) if hit)
            for row in self.matrix
        ]

    def minimum_blocks(self) -> List[int]:
        """Indices of a minimum block subset covering every case."""
        return minimum_cover(self.rows_as_sets(), self.covered_columns)

    def is_non_redundant(self) -> bool:
        """True when every elementary block is necessary (Section 6)."""
        if not self.covers_all:
            return False
        return is_exact_cover_needed(self.rows_as_sets(), self.covered_columns)

    def redundant_blocks(self) -> List[int]:
        """Blocks outside some minimum cover (empty iff non-redundant)."""
        if not self.covers_all:
            return []
        needed = set(self.minimum_blocks())
        return [b.index for b in self.blocks if b.index not in needed]


def _detects_with_blocks(
    test: MarchTest,
    variants,
    active: Set[Tuple[int, int]],
    size: int,
    kernel: Optional[SimulationKernel] = None,
) -> bool:
    """Worst-case detection with only the given blocks verifying.

    ``active`` holds ``(element_index, op_index)`` keys of the reads
    that keep their verification; all other reads still execute but do
    not verify, so machine behaviour is unchanged.  ``variants`` is a
    sequence of fault-instance factories that must all be caught.
    Simulation runs on the kernel's pooled, variant-hoisted path.
    """
    kernel = kernel or get_default_kernel()
    return kernel.detects_with_active_reads(test, variants, active, size)


def _variant_columns(cases: Sequence[FaultCase]):
    """One CM column per behavioural variant.

    Different variants of one worst-case fault (e.g. the two float
    values of a dead cell) may be observed by *different* elementary
    blocks, so the paper's per-BFE columns correspond to per-variant
    columns here.
    """
    columns = []
    for fault_case in cases:
        many = len(fault_case.variants) > 1
        for index, factory in enumerate(fault_case.variants):
            name = f"{fault_case.name}#{index}" if many else fault_case.name
            columns.append((name, factory))
    return columns


def concrete_realization(test: MarchTest, up: bool = True) -> MarchTest:
    """Resolve every ANY order to a concrete direction.

    The paper's Coverage Matrix is built over a concrete March test;
    an ``ANY`` element detects under *either* order, so per-block
    coverage is only meaningful once an order is fixed.  Delegates to
    the kernel's shared definition (also used for diagnosis syndromes)
    so the two semantics can never drift apart.
    """
    return _kernel_concrete_realization(test, up)


def coverage_matrix(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = DEFAULT_SIZE,
    realize_up: Optional[bool] = True,
    kernel: Optional[SimulationKernel] = None,
) -> CoverageMatrix:
    """Build the Coverage Matrix of a test against fault cases.

    ``realize_up`` fixes ANY orders to UP (True) or DOWN (False) before
    the analysis; pass ``None`` to keep the strict worst-case ANY
    semantics (blocks must detect under every realization alone).
    """
    kernel = kernel or get_default_kernel()
    if realize_up is not None:
        test = concrete_realization(test, realize_up)
    blocks = elementary_blocks(test)
    columns = _variant_columns(cases)
    matrix: List[Tuple[bool, ...]] = []
    for block in blocks:
        key = {(block.element_index, block.op_index)}
        row = tuple(
            _detects_with_blocks(test, (factory,), key, size, kernel)
            for _, factory in columns
        )
        matrix.append(row)
    return CoverageMatrix(
        test,
        blocks,
        tuple(name for name, _ in columns),
        tuple(matrix),
    )


def demotion_redundant_blocks(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = DEFAULT_SIZE,
    kernel: Optional[SimulationKernel] = None,
) -> List[ElementaryBlock]:
    """Blocks whose verification can be dropped without losing coverage.

    The robust necessity criterion (well-defined for ANY orders): block
    ``b`` is redundant when demoting *only* ``b`` to a plain read still
    detects every case in the worst case.  An empty result means every
    observation is load-bearing.
    """
    kernel = kernel or get_default_kernel()
    blocks = elementary_blocks(test)
    all_keys = {(b.element_index, b.op_index) for b in blocks}
    redundant: List[ElementaryBlock] = []
    for block in blocks:
        active = all_keys - {(block.element_index, block.op_index)}
        if all(
            _detects_with_blocks(test, fault_case.variants, active, size,
                                 kernel)
            for fault_case in cases
        ):
            redundant.append(block)
    return redundant


def is_non_redundant(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = DEFAULT_SIZE,
    kernel: Optional[SimulationKernel] = None,
) -> bool:
    """True when no single observation can be demoted (Section 6)."""
    return not demotion_redundant_blocks(test, cases, size, kernel)
