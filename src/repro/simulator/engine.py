"""March test execution engine.

Runs a March test on a :class:`~repro.memory.array.MemoryArray`
(fault-free or with an injected fault instance) and records every read
observation.  A fault is *detected* when some read-and-verify operation
returns a definite binary value different from the expected one; an
indeterminate ``'-'`` observation is conservatively treated as matching
(a floating line may happen to read back the expected value).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from ..march.element import DelayElement, MarchElement
from ..march.test import MarchTest
from ..memory.array import MemoryArray


@dataclass(frozen=True)
class ReadRecord:
    """One observed read during a March run."""

    element_index: int
    op_index: int
    address: int
    expected: Optional[int]
    actual: object

    @property
    def is_verifying(self) -> bool:
        return self.expected is not None

    @property
    def mismatch(self) -> bool:
        """Definite detection: a binary value differing from expected."""
        return (
            self.expected is not None
            and self.actual in (0, 1)
            and self.actual != self.expected
        )


@dataclass(frozen=True)
class MarchRun:
    """The outcome of running a March test on one memory."""

    reads: Tuple[ReadRecord, ...]
    final_contents: Tuple[object, ...]

    @property
    def detected(self) -> bool:
        return any(r.mismatch for r in self.reads)

    @property
    def first_detection(self) -> Optional[ReadRecord]:
        for record in self.reads:
            if record.mismatch:
                return record
        return None

    def verifying_reads(self) -> Tuple[ReadRecord, ...]:
        return tuple(r for r in self.reads if r.is_verifying)


def run_march(
    test: MarchTest,
    memory: MemoryArray,
    active_reads: Optional[set] = None,
) -> MarchRun:
    """Execute ``test`` on ``memory`` and collect read observations.

    ``active_reads`` optionally restricts which verifying reads keep
    their expectation, identified by ``(element_index, op_index)``
    pairs; all other reads still execute -- they may disturb the memory
    -- but are recorded as plain reads.  This supports the Coverage
    Matrix construction of Section 6.
    """
    records: List[ReadRecord] = []
    for element_index, element in enumerate(test.elements):
        if isinstance(element, DelayElement):
            memory.wait()
            continue
        assert isinstance(element, MarchElement)
        for address in element.order.addresses(memory.size):
            for op_index, op in enumerate(element.ops):
                if op.is_write:
                    memory.write(address, op.value)
                    continue
                actual = memory.read(address)
                expected = op.value
                if (
                    expected is not None
                    and active_reads is not None
                    and (element_index, op_index) not in active_reads
                ):
                    expected = None
                records.append(
                    ReadRecord(element_index, op_index, address, expected, actual)
                )
    return MarchRun(tuple(records), memory.snapshot())


def count_verifying_reads(test: MarchTest, size: int) -> int:
    """Number of verifying-read executions on an n-cell memory."""
    per_cell = sum(
        1
        for element in test.march_elements
        for op in element.ops
        if op.is_read and op.value is not None
    )
    return per_cell * size


def good_run(test: MarchTest, size: int) -> MarchRun:
    """Run the test on a fault-free memory (sanity reference).

    On a good memory every verifying read must match; a test whose good
    run mismatches is *malformed* (it expects a value the good machine
    does not produce).
    """
    memory = MemoryArray(size)
    return run_march(test, memory)


def is_well_formed(test: MarchTest, size: int = 4) -> bool:
    """True when all verifying reads match on a fault-free memory,
    under every realization of the ANY address orders."""
    for variant in test.concrete_order_variants():
        if good_run(variant, size).detected:
            return False
    return True
