"""Fault simulation: does a March test detect a fault list?

This is the paper's validation instrument (Section 6): every generated
March test is run against each injected fault case; a case counts as
detected only when **every** behavioural variant is detected under
**every** realization of the test's ANY-order elements (worst-case
semantics).

Compatibility shim: the implementation lives in
:mod:`repro.kernel` -- a process-wide :class:`SimulationKernel`
memoizes verdicts, pools memories and batches work across pluggable
backends.  These module-level functions keep the historical signatures
and route through :func:`repro.kernel.get_default_kernel`.
"""

from __future__ import annotations

from typing import Dict, Sequence

from ..faults.faultlist import FaultList
from ..faults.instances import FaultCase
from ..kernel import (
    DEFAULT_SIZE,
    SimulationReport,
    get_default_kernel,
)
from ..march.test import MarchTest

__all__ = [
    "DEFAULT_SIZE",
    "SimulationReport",
    "detects_case",
    "simulate",
    "simulate_fault_list",
    "detection_matrix",
]


def detects_case(
    test: MarchTest, fault_case: FaultCase, size: int = DEFAULT_SIZE
) -> bool:
    """True when the test detects the case in the worst case."""
    return get_default_kernel().detects(test, fault_case, size)


def simulate(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = DEFAULT_SIZE,
) -> SimulationReport:
    """Simulate every fault case and report detection."""
    return get_default_kernel().simulate(test, cases, size)


def simulate_fault_list(
    test: MarchTest,
    faults: FaultList,
    size: int = DEFAULT_SIZE,
) -> SimulationReport:
    """Simulate all behavioural instances of a fault list."""
    return get_default_kernel().simulate_fault_list(test, faults, size)


def detection_matrix(
    tests: Sequence[MarchTest],
    faults: FaultList,
    size: int = DEFAULT_SIZE,
) -> Dict[str, Dict[str, bool]]:
    """Cross table: test name -> fault case name -> detected?"""
    return get_default_kernel().detection_matrix(tests, faults, size)
