"""Fault simulation: does a March test detect a fault list?

This is the paper's validation instrument (Section 6): every generated
March test is run against each injected fault case; a case counts as
detected only when **every** behavioural variant is detected under
**every** realization of the test's ANY-order elements (worst-case
semantics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..faults.faultlist import FaultList
from ..faults.instances import FaultCase
from ..march.test import MarchTest
from ..memory.array import MemoryArray
from .engine import run_march

#: Memory size used for validation.  Three cells exercise every
#: aggressor/victim ordering with a bystander cell in all positions.
DEFAULT_SIZE = 3


def detects_case(
    test: MarchTest, fault_case: FaultCase, size: int = DEFAULT_SIZE
) -> bool:
    """True when the test detects the case in the worst case."""
    for variant_test in test.concrete_order_variants():
        for make_instance in fault_case.variants:
            memory = MemoryArray(size, fault=make_instance())
            if not run_march(variant_test, memory).detected:
                return False
    return True


@dataclass
class SimulationReport:
    """Outcome of simulating a test against a set of fault cases."""

    test: MarchTest
    size: int
    detected: List[str] = field(default_factory=list)
    missed: List[str] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return not self.missed

    @property
    def coverage(self) -> float:
        total = len(self.detected) + len(self.missed)
        if total == 0:
            return 1.0
        return len(self.detected) / total

    def __str__(self) -> str:
        return (
            f"{self.test.name or self.test}: "
            f"{len(self.detected)}/{len(self.detected) + len(self.missed)}"
            f" fault cases detected"
        )


def simulate(
    test: MarchTest,
    cases: Sequence[FaultCase],
    size: int = DEFAULT_SIZE,
) -> SimulationReport:
    """Simulate every fault case and report detection."""
    report = SimulationReport(test, size)
    for fault_case in cases:
        if detects_case(test, fault_case, size):
            report.detected.append(fault_case.name)
        else:
            report.missed.append(fault_case.name)
    return report


def simulate_fault_list(
    test: MarchTest,
    faults: FaultList,
    size: int = DEFAULT_SIZE,
) -> SimulationReport:
    """Simulate all behavioural instances of a fault list."""
    return simulate(test, faults.instances(size), size)


def detection_matrix(
    tests: Sequence[MarchTest],
    faults: FaultList,
    size: int = DEFAULT_SIZE,
) -> Dict[str, Dict[str, bool]]:
    """Cross table: test name -> fault case name -> detected?"""
    cases = faults.instances(size)
    out: Dict[str, Dict[str, bool]] = {}
    for test in tests:
        name = test.name or str(test)
        out[name] = {
            fault_case.name: detects_case(test, fault_case, size)
            for fault_case in cases
        }
    return out
