"""Markdown and LaTeX rendering of tests, reports and tables.

For papers and lab reports: March tests in the conventional arrow
notation, generation reports as table rows, and detection matrices as
Markdown/LaTeX tables.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .core.report import GenerationReport
from .march.element import AddressOrder, DelayElement, MarchElement
from .march.test import MarchTest

_LATEX_ORDER = {
    AddressOrder.UP: r"\Uparrow",
    AddressOrder.DOWN: r"\Downarrow",
    AddressOrder.ANY: r"\Updownarrow",
}


def march_to_latex(test: MarchTest) -> str:
    """A March test in LaTeX math notation.

    >>> from repro.march.catalog import MATS
    >>> march_to_latex(MATS)
    '\\\\{\\\\Updownarrow(w0);\\\\ \\\\Updownarrow(r0,w1);\\\\ \\\\Updownarrow(r1)\\\\}'
    """
    parts = []
    for element in test.elements:
        if isinstance(element, DelayElement):
            parts.append(r"\mathrm{Del}")
            continue
        assert isinstance(element, MarchElement)
        ops = ",".join(str(op) for op in element.ops)
        parts.append(f"{_LATEX_ORDER[element.order]}({ops})")
    return r"\{" + r";\ ".join(parts) + r"\}"


def report_to_markdown_row(report: GenerationReport) -> str:
    """One Markdown table row in the shape of the paper's Table 3."""
    known = report.equivalent_known or "—"
    return (
        f"| {'+'.join(report.fault_names)} | `{report.test}` |"
        f" {report.complexity_label} | {report.elapsed_seconds:.2f}s |"
        f" {known} |"
    )


def table3_markdown(reports: Sequence[GenerationReport]) -> str:
    """A full Markdown reproduction table."""
    lines = [
        "| Fault list | Generated March test | Complexity | CPU | Known |",
        "|---|---|---|---|---|",
    ]
    lines.extend(report_to_markdown_row(r) for r in reports)
    return "\n".join(lines)


def detection_matrix_markdown(
    matrix: Mapping[str, Mapping[str, bool]]
) -> str:
    """Render a test x fault-case detection matrix as Markdown.

    Input shape matches :func:`repro.simulator.detection_matrix`.
    """
    if not matrix:
        return ""
    case_names = sorted(next(iter(matrix.values())))
    lines = [
        "| test | " + " | ".join(case_names) + " |",
        "|---|" + "---|" * len(case_names),
    ]
    for test_name in sorted(matrix):
        row = matrix[test_name]
        cells = " | ".join("x" if row[c] else " " for c in case_names)
        lines.append(f"| {test_name} | {cells} |")
    return "\n".join(lines)


def coverage_summary_markdown(
    coverage: Mapping[str, Mapping[str, float]]
) -> str:
    """Model-level coverage ratios (test -> model -> ratio) as Markdown."""
    if not coverage:
        return ""
    models = sorted(next(iter(coverage.values())))
    lines = [
        "| test | " + " | ".join(models) + " |",
        "|---|" + "---|" * len(models),
    ]
    for test_name in sorted(coverage):
        row = coverage[test_name]
        cells = " | ".join(
            "full" if row[m] >= 1.0 else f"{row[m] * 100:.0f}%"
            for m in models
        )
        lines.append(f"| {test_name} | {cells} |")
    return "\n".join(lines)
