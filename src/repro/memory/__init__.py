"""Memory model substrate: operations, states, Mealy machines, arrays."""

from .operations import (
    Operation,
    OpKind,
    SYMBOLIC_CELLS,
    alphabet,
    cell_order,
    format_sequence,
    parse_operation,
    parse_sequence,
    read,
    wait,
    write,
)
from .state import DASH, MemoryState, all_states
from .mealy import MealyMachine, good_machine, machines_equal
from .array import MemoryArray, NullFaultInstance

__all__ = [
    "Operation",
    "OpKind",
    "SYMBOLIC_CELLS",
    "alphabet",
    "cell_order",
    "format_sequence",
    "parse_operation",
    "parse_sequence",
    "read",
    "wait",
    "write",
    "DASH",
    "MemoryState",
    "all_states",
    "MealyMachine",
    "good_machine",
    "machines_equal",
    "MemoryArray",
    "NullFaultInstance",
]
