"""Deterministic Mealy automata modelling good and faulty memories.

The paper models an n one-bit-cell memory as a Mealy machine
``M = (Q, X, Y, delta, lambda)`` (f.2.1) and a faulty memory as a
machine ``Mi`` whose transition function ``delta_i`` or output function
``lambda_i`` deviates from the fault-free machine ``M0`` (f.2.2).

:func:`good_machine` builds ``M0`` for ``k`` cells -- for ``k == 2``
this is exactly the machine of Figure 1.  Faulty machines are built by
applying :class:`~repro.faults.bfe.BasicFaultEffect` deviations, see
:mod:`repro.faults`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple

from .operations import Operation, alphabet
from .state import DASH, MemoryState, all_states

#: Key type of the transition/output tables.
TransitionKey = Tuple[MemoryState, Operation]


def _machine_input(op: Operation) -> Operation:
    """Canonicalize an operation to a machine input symbol.

    Read-and-verify operations are test-pattern artifacts; the machine
    input alphabet only contains plain reads (the verify value lives in
    the TP, not in X).
    """
    if op.is_verifying_read:
        return op.plain_read()
    return op


@dataclass
class MealyMachine:
    """A deterministic Mealy automaton over memory states.

    Attributes
    ----------
    cells:
        Symbolic cells of the machine, in address order.
    delta:
        Transition table mapping ``(state, input)`` to the next state.
    lam:
        Output table mapping ``(state, input)`` to an output in
        ``{0, 1, '-'}`` (writes and waits output ``'-'``).
    name:
        Diagnostic label (``"M0"`` for the good machine).
    """

    cells: Tuple[str, ...]
    delta: Dict[TransitionKey, MemoryState] = field(default_factory=dict)
    lam: Dict[TransitionKey, object] = field(default_factory=dict)
    name: str = "M"

    # -- evaluation ----------------------------------------------------------

    def step(self, state: MemoryState, op: Operation) -> Tuple[MemoryState, object]:
        """Apply one input; return ``(next_state, output)``."""
        key = (state, _machine_input(op))
        try:
            return self.delta[key], self.lam[key]
        except KeyError:
            raise KeyError(
                f"{self.name} has no transition from {state} on {op}"
            ) from None

    def run(
        self, state: MemoryState, ops: Iterable[Operation]
    ) -> Tuple[MemoryState, Tuple[object, ...]]:
        """Run an operation sequence; return final state and all outputs."""
        outputs = []
        for op in ops:
            state, out = self.step(state, op)
            outputs.append(out)
        return state, tuple(outputs)

    @property
    def states(self) -> Tuple[MemoryState, ...]:
        seen = []
        for state, _ in self.delta:
            if state not in seen:
                seen.append(state)
        return tuple(seen)

    @property
    def inputs(self) -> Tuple[Operation, ...]:
        seen = []
        for _, op in self.delta:
            if op not in seen:
                seen.append(op)
        return tuple(seen)

    # -- derivation ------------------------------------------------------------

    def copy(self, name: Optional[str] = None) -> "MealyMachine":
        return MealyMachine(
            self.cells, dict(self.delta), dict(self.lam), name or self.name
        )

    def with_transition(
        self, state: MemoryState, op: Operation, target: MemoryState
    ) -> "MealyMachine":
        """Return a copy whose ``delta(state, op)`` is redirected."""
        op = _machine_input(op)
        key = (state, op)
        if key not in self.delta:
            raise KeyError(f"no base transition {state} --{op}-->")
        clone = self.copy()
        clone.delta[key] = target
        return clone

    def with_output(
        self, state: MemoryState, op: Operation, output: object
    ) -> "MealyMachine":
        """Return a copy whose ``lambda(state, op)`` is overridden."""
        op = _machine_input(op)
        key = (state, op)
        if key not in self.lam:
            raise KeyError(f"no base output for {state} --{op}-->")
        clone = self.copy()
        clone.lam[key] = output
        return clone

    def deviations_from(
        self, other: "MealyMachine"
    ) -> Tuple[Tuple[str, TransitionKey], ...]:
        """List the (kind, key) pairs where this machine differs from *other*.

        ``kind`` is ``"delta"`` or ``"lambda"``.  Used by tests to verify
        that a BFE-derived machine differs from M0 in exactly one entry
        (the definition of a BFE, paper Section 3).
        """
        diffs = []
        for key, target in self.delta.items():
            if other.delta.get(key) != target:
                diffs.append(("delta", key))
        for key, out in self.lam.items():
            if other.lam.get(key) != out:
                diffs.append(("lambda", key))
        return tuple(diffs)


def good_machine(cells: Iterable[str] = ("i", "j"), name: str = "M0") -> MealyMachine:
    """Build the fault-free machine ``M0`` over the given cells.

    For two cells this is the machine of Figure 1 of the paper: states
    {00, 01, 10, 11} plus the non-initialized state, inputs
    ``{r_i, r_j, w0_*, w1_*, T}``:

    * ``wd_c`` moves to the state where cell *c* holds ``d``, output '-';
    * ``r_c`` is a self-loop and outputs the value of cell *c*;
    * ``T`` is a self-loop with output '-'.

    The non-initialized states (any state containing '-') are included so
    a simulation may start from power-up: writes define cells one by one,
    reads of a '-' cell output '-'.
    """
    machine = MealyMachine(tuple(cells), name=name)
    ops = alphabet(machine.cells)

    def add(state: MemoryState) -> None:
        for op in ops:
            key = (state, op)
            if op.is_write:
                machine.delta[key] = state.set(op.cell, op.value)
                machine.lam[key] = DASH
            elif op.is_read:
                machine.delta[key] = state
                machine.lam[key] = state[op.cell]
            else:  # wait
                machine.delta[key] = state
                machine.lam[key] = DASH

    for state in all_states(machine.cells):
        add(state)
    # Non-initialized states: enumerate every state containing at least
    # one dash (for two cells: --, -0, -1, 0-, 1-).
    from itertools import product as _product

    for combo in _product((0, 1, DASH), repeat=len(machine.cells)):
        if DASH not in combo:
            continue
        add(MemoryState(machine.cells, combo))
    return machine


def machines_equal(a: MealyMachine, b: MealyMachine) -> bool:
    """Structural equality of two machines (same tables)."""
    return a.cells == b.cells and a.delta == b.delta and a.lam == b.lam
