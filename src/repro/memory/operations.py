"""Memory operation alphabet.

This module defines the input alphabet ``X`` of the memory model used
throughout the library (paper, f.2.1)::

    X = { r_i, w0_i, w1_i | 0 <= i <= n-1 } + { T }

* ``r_i``  -- read cell *i* (optionally *read-and-verify*: the expected
  value travels with the operation, paper f.2.3);
* ``wd_i`` -- write value ``d`` in {0, 1} to cell *i*;
* ``T``    -- wait for a defined period of time (used by data-retention
  faults).

Cells are referred to by *symbolic* indices while generating tests for
the k-cell fault machine (conventionally ``i`` and ``j`` with
``address(i) < address(j)``) and by integer addresses when a test is
executed on a simulated n-cell memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Optional, Tuple


class OpKind(enum.Enum):
    """The three kinds of memory operations of the model."""

    READ = "r"
    WRITE = "w"
    WAIT = "T"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


#: Symbolic cell names accepted for k-cell machines, ordered by address.
SYMBOLIC_CELLS: Tuple[str, ...] = ("i", "j", "k", "l")


def cell_order(cell: str) -> int:
    """Return the address rank of a symbolic cell name.

    The paper fixes the convention ``address(i) < address(j)``; we extend
    it alphabetically for machines with more than two cells.

    >>> cell_order("i"), cell_order("j")
    (0, 1)
    """
    try:
        return SYMBOLIC_CELLS.index(cell)
    except ValueError:
        raise ValueError(
            f"unknown symbolic cell {cell!r}; expected one of {SYMBOLIC_CELLS}"
        ) from None


@dataclass(frozen=True, order=True)
class Operation:
    """A single memory operation.

    Attributes
    ----------
    kind:
        ``OpKind.READ``, ``OpKind.WRITE`` or ``OpKind.WAIT``.
    cell:
        Symbolic cell name (``"i"``, ``"j"``, ...) the operation acts on.
        ``None`` for ``WAIT`` which is a global operation.
    value:
        For writes: the value written (0 or 1).  For reads: the expected
        value of a *read-and-verify* operation, or ``None`` for a plain
        read.  Always ``None`` for ``WAIT``.
    """

    kind: OpKind
    cell: Optional[str] = None
    value: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind is OpKind.WAIT:
            if self.cell is not None or self.value is not None:
                raise ValueError("WAIT takes neither a cell nor a value")
            return
        if self.cell is None:
            raise ValueError(f"{self.kind} requires a target cell")
        if self.kind is OpKind.WRITE:
            if self.value not in (0, 1):
                raise ValueError("WRITE requires a value in {0, 1}")
        elif self.value not in (None, 0, 1):
            raise ValueError("READ verify value must be None, 0 or 1")

    # -- classification helpers ------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.kind is OpKind.READ

    @property
    def is_write(self) -> bool:
        return self.kind is OpKind.WRITE

    @property
    def is_wait(self) -> bool:
        return self.kind is OpKind.WAIT

    @property
    def is_verifying_read(self) -> bool:
        """True for a read-and-verify ``rd_i`` (paper, f.2.3)."""
        return self.is_read and self.value is not None

    # -- derived operations ----------------------------------------------

    def on_cell(self, cell: str) -> "Operation":
        """Return the same operation retargeted to another cell."""
        if self.is_wait:
            return self
        return Operation(self.kind, cell, self.value)

    def plain_read(self) -> "Operation":
        """Drop the verify value from a read operation."""
        if not self.is_read:
            raise ValueError("plain_read() only applies to reads")
        return Operation(OpKind.READ, self.cell, None)

    # -- text form ---------------------------------------------------------

    def __str__(self) -> str:
        if self.is_wait:
            return "T"
        if self.is_write:
            return f"w{self.value}{self.cell}"
        if self.value is None:
            return f"r{self.cell}"
        return f"r{self.value}{self.cell}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Operation({self})"


# -- constructors ----------------------------------------------------------


def read(cell: str, expect: Optional[int] = None) -> Operation:
    """Build a read (``expect=None``) or read-and-verify operation."""
    return Operation(OpKind.READ, cell, expect)


def write(cell: str, value: int) -> Operation:
    """Build a write operation ``wd_cell``."""
    return Operation(OpKind.WRITE, cell, value)


def wait() -> Operation:
    """Build the wait operation ``T``."""
    return Operation(OpKind.WAIT)


def parse_operation(text: str) -> Operation:
    """Parse the textual form produced by :meth:`Operation.__str__`.

    >>> parse_operation("w1i")
    Operation(w1i)
    >>> parse_operation("r0j")
    Operation(r0j)
    >>> parse_operation("rj")
    Operation(rj)
    >>> parse_operation("T")
    Operation(T)
    """
    text = text.strip()
    if text == "T":
        return wait()
    if not text:
        raise ValueError("empty operation string")
    head, rest = text[0], text[1:]
    if head == "w":
        if len(rest) < 2 or rest[0] not in "01":
            raise ValueError(f"malformed write operation {text!r}")
        return write(rest[1:], int(rest[0]))
    if head == "r":
        if rest and rest[0] in "01":
            return read(rest[1:], int(rest[0]))
        return read(rest)
    raise ValueError(f"malformed operation {text!r}")


def parse_sequence(text: str, separator: str = ",") -> Tuple[Operation, ...]:
    """Parse a separated list of operations (a GTS in text form)."""
    parts = [p for p in (s.strip() for s in text.split(separator)) if p]
    return tuple(parse_operation(p) for p in parts)


def format_sequence(ops: Iterable[Operation], separator: str = ", ") -> str:
    """Format a sequence of operations as text."""
    return separator.join(str(op) for op in ops)


def alphabet(cells: Iterable[str], include_wait: bool = True) -> Tuple[Operation, ...]:
    """The full input alphabet X for the given cells (paper, f.2.1).

    Reads are returned *without* verify values -- the alphabet models
    machine inputs, and verification is a property of test patterns.
    """
    ops = []
    for cell in cells:
        ops.append(read(cell))
        ops.append(write(cell, 0))
        ops.append(write(cell, 1))
    if include_wait:
        ops.append(wait())
    return tuple(ops)
