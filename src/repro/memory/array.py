"""A simulated n-cell RAM with fault-instance injection.

This is the substrate the paper's "ad hoc memory fault simulator"
(Section 6) runs on: a word of ``n`` one-bit cells supporting read,
write and wait operations addressed by integer cell index, with hooks
that let an injected fault instance intercept the good behaviour.

The array intentionally knows nothing about fault *models*; it only
exposes the mechanics (pre/post write hooks, read interception).  Fault
instances live in :mod:`repro.simulator.faultsim`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Protocol

from .state import DASH


class FaultInstance(Protocol):
    """Behavioural hooks a fault instance may implement.

    Every hook is optional in spirit; the provided base class
    :class:`NullFaultInstance` implements the identity behaviour, and
    concrete instances override what they need.
    """

    def on_write(self, memory: "MemoryArray", address: int, value: int) -> None:
        """Perform the write (possibly faultily) on ``memory.raw``."""

    def on_read(self, memory: "MemoryArray", address: int) -> object:
        """Return the value produced by reading ``address``."""

    def on_wait(self, memory: "MemoryArray") -> None:
        """React to a wait/retention period."""


class NullFaultInstance:
    """The fault-free behaviour; also a convenient base class."""

    def on_write(self, memory: "MemoryArray", address: int, value: int) -> None:
        memory.raw[address] = value

    def on_read(self, memory: "MemoryArray", address: int) -> object:
        return memory.raw[address]

    def on_wait(self, memory: "MemoryArray") -> None:
        return None


@dataclass
class MemoryArray:
    """An n-cell one-bit-per-cell memory with a pluggable fault instance.

    Attributes
    ----------
    size:
        Number of cells.
    raw:
        Backing store; each cell holds 0, 1 or ``'-'`` (non-initialized).
    fault:
        The active fault instance (``NullFaultInstance`` when fault-free).
    log:
        When enabled, a trace of ``(op, address, value)`` records.
    """

    size: int
    raw: List[object] = field(default_factory=list)
    fault: FaultInstance = field(default_factory=NullFaultInstance)
    trace: bool = False
    log: List[tuple] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.size <= 0:
            raise ValueError("memory size must be positive")
        if not self.raw:
            self.raw = [DASH] * self.size
        elif len(self.raw) != self.size:
            raise ValueError("raw contents must match the declared size")

    # -- operations -----------------------------------------------------------

    def write(self, address: int, value: int) -> None:
        """Write ``value`` to ``address`` through the fault instance."""
        self._check_address(address)
        if value not in (0, 1):
            raise ValueError("written value must be 0 or 1")
        self.fault.on_write(self, address, value)
        if self.trace:
            self.log.append(("w", address, value))

    def read(self, address: int) -> object:
        """Read ``address`` through the fault instance."""
        self._check_address(address)
        value = self.fault.on_read(self, address)
        if self.trace:
            self.log.append(("r", address, value))
        return value

    def wait(self) -> None:
        """Let a retention period elapse."""
        self.fault.on_wait(self)
        if self.trace:
            self.log.append(("T", None, None))

    def fill(self, value: int) -> None:
        """Write ``value`` to every cell in ascending order."""
        for address in range(self.size):
            self.write(address, value)

    def snapshot(self) -> tuple:
        """An immutable copy of the raw contents."""
        return tuple(self.raw)

    def reset(self, fault: "FaultInstance" = None) -> "MemoryArray":
        """Return the array to its freshly-constructed state.

        Clears every cell back to non-initialized, installs ``fault``
        (fault-free when omitted) and drops any trace log.  Used by the
        simulation kernel to pool arrays across runs instead of
        allocating a new one per (test, fault-instance) pair.
        """
        for address in range(self.size):
            self.raw[address] = DASH
        self.fault = fault if fault is not None else NullFaultInstance()
        if self.log:
            self.log.clear()
        return self

    def _check_address(self, address: int) -> None:
        if not 0 <= address < self.size:
            raise IndexError(f"address {address} out of range [0, {self.size})")

    def __len__(self) -> int:
        return self.size
