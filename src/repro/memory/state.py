"""k-cell memory states with don't-care support.

A state assigns each symbolic cell a value in ``{0, 1, '-'}`` where
``'-'`` is the value of a non-initialized cell (paper, f.2.1).  States
double as *initialization requirements* of test patterns, where ``'-'``
means "any value is acceptable"; the Hamming distance of f.4.1 treats a
don't-care as distance 0 to anything.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Dict, Iterable, Iterator, Optional, Tuple

from .operations import SYMBOLIC_CELLS, Operation, cell_order

#: The unknown / don't-care cell value.
DASH = "-"

CellValue = object  # 0 | 1 | "-"


def _normalize_value(value: object) -> object:
    if value in (0, 1):
        return int(value)  # type: ignore[arg-type]
    if value in (DASH, None):
        return DASH
    if value in ("0", "1"):
        return int(value)  # type: ignore[arg-type]
    raise ValueError(f"invalid cell value {value!r}; expected 0, 1 or '-'")


@dataclass(frozen=True)
class MemoryState:
    """An immutable assignment of values to the cells of a k-cell machine.

    Cells are kept in address order (``i`` before ``j`` ...).

    >>> s = MemoryState.parse("01")
    >>> s["i"], s["j"]
    (0, 1)
    >>> str(s)
    '01'
    """

    cells: Tuple[str, ...]
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if len(self.cells) != len(self.values):
            raise ValueError("cells and values must have equal length")
        if tuple(sorted(self.cells, key=cell_order)) != self.cells:
            raise ValueError("cells must be listed in address order")
        object.__setattr__(
            self, "values", tuple(_normalize_value(v) for v in self.values)
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def of(cls, **assignments: object) -> "MemoryState":
        """Build a state from keyword cell assignments.

        >>> str(MemoryState.of(i=0, j=1))
        '01'
        """
        cells = tuple(sorted(assignments, key=cell_order))
        return cls(cells, tuple(assignments[c] for c in cells))

    @classmethod
    def parse(cls, text: str, cells: Optional[Iterable[str]] = None) -> "MemoryState":
        """Parse a compact state string such as ``"01"`` or ``"1-"``.

        Cells default to the symbolic names ``i, j, ...`` in order.
        """
        text = text.strip()
        if cells is None:
            cells = SYMBOLIC_CELLS[: len(text)]
        cells = tuple(cells)
        if len(cells) != len(text):
            raise ValueError("state string length must match cell count")
        return cls(cells, tuple(text))

    @classmethod
    def uniform(cls, cells: Iterable[str], value: object) -> "MemoryState":
        """A state assigning the same value to every cell."""
        cells = tuple(sorted(cells, key=cell_order))
        return cls(cells, tuple(value for _ in cells))

    @classmethod
    def unknown(cls, cells: Iterable[str]) -> "MemoryState":
        """The fully non-initialized state (all cells ``'-'``)."""
        return cls.uniform(cells, DASH)

    # -- accessors ---------------------------------------------------------

    def __getitem__(self, cell: str) -> object:
        try:
            return self.values[self.cells.index(cell)]
        except ValueError:
            raise KeyError(cell) from None

    def __contains__(self, cell: str) -> bool:
        return cell in self.cells

    def __iter__(self) -> Iterator[Tuple[str, object]]:
        return iter(zip(self.cells, self.values))

    def as_dict(self) -> Dict[str, object]:
        return dict(zip(self.cells, self.values))

    @property
    def is_concrete(self) -> bool:
        """True when no cell holds a don't-care."""
        return DASH not in self.values

    @property
    def dash_count(self) -> int:
        return sum(1 for v in self.values if v is DASH or v == DASH)

    # -- algebra -------------------------------------------------------------

    def set(self, cell: str, value: object) -> "MemoryState":
        """Return a copy with one cell changed."""
        if cell not in self.cells:
            raise KeyError(cell)
        values = tuple(
            _normalize_value(value) if c == cell else v for c, v in self
        )
        return MemoryState(self.cells, values)

    def apply(self, op: Operation) -> "MemoryState":
        """State after a *good-machine* operation (reads/waits are identity)."""
        if op.is_write:
            return self.set(op.cell, op.value)
        return self

    def matches(self, other: "MemoryState") -> bool:
        """True when *other* satisfies this state as a requirement.

        A don't-care in ``self`` matches any value of ``other``.  A
        concrete value only matches itself (a don't-care in *other* does
        not satisfy a concrete requirement).
        """
        self._check_compatible(other)
        for (_, mine), (_, theirs) in zip(self, other):
            if mine == DASH:
                continue
            if mine != theirs:
                return False
        return True

    def hamming(self, other: "MemoryState") -> int:
        """Hamming distance with don't-care semantics (paper, f.4.1).

        A don't-care on either side contributes 0: it represents a cell
        whose value the target pattern does not constrain, hence no write
        operation is needed to fix it.
        """
        self._check_compatible(other)
        distance = 0
        for (_, mine), (_, theirs) in zip(self, other):
            if mine == DASH or theirs == DASH:
                continue
            if mine != theirs:
                distance += 1
        return distance

    def merge(self, other: "MemoryState") -> "MemoryState":
        """Refine don't-cares of ``self`` with values from ``other``.

        Concrete values of ``self`` win over *other*'s.
        """
        self._check_compatible(other)
        values = tuple(
            theirs if mine == DASH else mine
            for (_, mine), (_, theirs) in zip(self, other)
        )
        return MemoryState(self.cells, values)

    def completions(self) -> Iterator["MemoryState"]:
        """Yield every concrete state obtained by filling don't-cares."""
        option_sets = [(v,) if v != DASH else (0, 1) for v in self.values]
        for combo in product(*option_sets):
            yield MemoryState(self.cells, combo)

    def fill_operations(self, target: "MemoryState") -> Tuple[Operation, ...]:
        """Writes needed to take ``self`` to satisfy ``target``.

        One write per cell where the target is concrete and differs (or
        where ``self`` is unknown).  This realizes the edge weight of the
        TPG: ``len(fill_operations) == weight`` whenever ``self`` is
        concrete.
        """
        from .operations import write as _write

        self._check_compatible(target)
        ops = []
        for (cell, mine), (_, wanted) in zip(self, target):
            if wanted == DASH:
                continue
            if mine != wanted:
                ops.append(_write(cell, wanted))
        return tuple(ops)

    def _check_compatible(self, other: "MemoryState") -> None:
        if self.cells != other.cells:
            raise ValueError(
                f"states over different cells: {self.cells} vs {other.cells}"
            )

    # -- text ----------------------------------------------------------------

    def __str__(self) -> str:
        return "".join(str(v) for v in self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MemoryState({self})"


def all_states(cells: Iterable[str]) -> Tuple[MemoryState, ...]:
    """All concrete states of a k-cell machine, in binary order."""
    cells = tuple(sorted(cells, key=cell_order))
    return tuple(
        MemoryState(cells, combo) for combo in product((0, 1), repeat=len(cells))
    )
