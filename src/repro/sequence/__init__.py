"""Global Test Sequences and the rewrite-rule engine."""

from .gts import Color, GlobalTestSequence, GTSSymbol, Role, build_gts, gts_text
from .rewrite import minimize, reorder, reorder_and_minimize

__all__ = [
    "Color",
    "GlobalTestSequence",
    "GTSSymbol",
    "Role",
    "build_gts",
    "gts_text",
    "minimize",
    "reorder",
    "reorder_and_minimize",
]
