"""Rewrite rules turning a raw GTS into a March-ready symbol stream.

The paper drives this phase with string rewrite rules (Tables 1 and 2)
over the extended regular-expression formalism (terminal, Red and Blue
operators).  The published tables are OCR-corrupted in the only
available full text, so this module implements a reconstruction with
the same mechanics and the same outcomes (see DESIGN.md):

* **Reordering** (Section 4.1): setup writes are value-grouped (done at
  GTS construction) and every *observation read* immediately followed
  by an *excitation write on the same cell* is marked Red/Blue -- the
  nucleus ``[r]_R [w]_B`` of a future March element (Table 1, rule M4).
* **Minimization** (Section 4.2): adjacent same-operation symbols are
  merged across cells (a March operation is applied to every cell, so
  ``w_d^i w_d^j`` collapses to a single cell-agnostic ``w_d``;
  Table 2, rules 1-2) and duplicate operations on the same cell are
  dropped (Table 2 diagonal rules).  Passes repeat to fixpoint.

Every transformation is semantics-checked downstream: the generated
March test must pass fault simulation (Section 6), exactly as the
paper validates its own output.
"""

from __future__ import annotations

from typing import List, Optional

from .gts import Color, GlobalTestSequence, GTSSymbol, Role


def reorder(gts: GlobalTestSequence) -> GlobalTestSequence:
    """The reordering phase: mark element nuclei and finalize symbols.

    Returns a new GTS whose symbols are all terminal, with Red/Blue
    marks on observe/excite adjacencies targeting the same cell.
    """
    symbols = [s for s in gts.symbols]
    out: List[GTSSymbol] = []
    for position, symbol in enumerate(symbols):
        nxt = symbols[position + 1] if position + 1 < len(symbols) else None
        if (
            symbol.role is Role.OBSERVE
            and nxt is not None
            and nxt.role is Role.EXCITE
            and nxt.op.is_write
            and nxt.op.cell == symbol.op.cell
        ):
            out.append(symbol.colored(Color.RED).as_terminal())
        elif (
            symbol.role is Role.EXCITE
            and symbol.op.is_write
            and out
            and out[-1].color is Color.RED
            and out[-1].op.cell == symbol.op.cell
        ):
            out.append(symbol.colored(Color.BLUE).as_terminal())
        else:
            out.append(symbol.as_terminal())
    return GlobalTestSequence(out, gts.tour)


def _same_operation(a: GTSSymbol, b: GTSSymbol) -> bool:
    """Same kind and value (ignoring the cell)."""
    return (
        a.op.kind == b.op.kind
        and a.op.value == b.op.value
        and not a.op.is_wait
        and not b.op.is_wait
    )


def _merge_pair(a: GTSSymbol, b: GTSSymbol) -> GTSSymbol:
    """Fuse two mergeable symbols, keeping the strongest metadata."""
    role_rank = {Role.EXCITE: 2, Role.OBSERVE: 1, Role.SETUP: 0}
    keep = a if role_rank[a.role] >= role_rank[b.role] else b
    color = a.color or b.color
    merged = keep.as_merged()
    if color is not None and merged.color is None:
        merged = merged.colored(color)
    return merged.as_terminal()


def _minimize_once(symbols: List[GTSSymbol]) -> Optional[List[GTSSymbol]]:
    """Apply the first applicable minimization rule; None at fixpoint."""
    for k in range(len(symbols) - 1):
        a, b = symbols[k], symbols[k + 1]
        if not _same_operation(a, b):
            continue
        if a.cell is not None and b.cell is not None and a.cell != b.cell:
            # Table 2 rules 1-2: w_d^i w_d^j -> w_d ; r_d^i r_d^j -> r_d
            return symbols[:k] + [_merge_pair(a, b)] + symbols[k + 2:]
        if a.cell == b.cell or a.cell is None or b.cell is None:
            # Duplicate op on the same cell (or one already merged):
            # keep one symbol, merged if either side was.
            fused = _merge_pair(a, b)
            if a.cell is not None and b.cell is not None:
                # Same concrete cell on both sides: stay cell-tagged.
                fused = a if (a.color or not b.color) else b
            return symbols[:k] + [fused] + symbols[k + 2:]
    return None


def minimize(gts: GlobalTestSequence) -> GlobalTestSequence:
    """The minimization phase: repeat rules to fixpoint (Section 4.2)."""
    symbols = list(gts.symbols)
    while True:
        step = _minimize_once(symbols)
        if step is None:
            return GlobalTestSequence(symbols, gts.tour)
        symbols = step


def reorder_and_minimize(gts: GlobalTestSequence) -> GlobalTestSequence:
    """The full Section 4.1 + 4.2 pipeline."""
    return minimize(reorder(gts))
