"""Global Test Sequences (paper, Section 4).

A GTS is a sequence of memory operations able to detect all target
BFEs, obtained by concatenating test patterns along an ATSP tour of the
TPG: between consecutive patterns only the *setup writes* bridging the
observation state of the first to the initialization state of the
second are inserted (a 0-weight edge needs none).

Each GTS symbol carries provenance (setup / excite / observe, and the
tour position of the owning pattern) plus the *color* marks of the
rewrite formalism (Section 4: the Red and Blue operators delimiting
future March element nuclei).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

from ..memory.operations import Operation, format_sequence
from ..memory.state import MemoryState
from ..patterns.tpg import TestPatternGraph


class Role(enum.Enum):
    """Provenance of a GTS symbol."""

    SETUP = "setup"      # initialization write bridging two patterns
    EXCITE = "excite"    # the E operation of a pattern
    OBSERVE = "observe"  # the O operation of a pattern


class Color(enum.Enum):
    """The Red/Blue marks of the rewrite formalism (Section 4)."""

    RED = "R"
    BLUE = "B"


@dataclass(frozen=True)
class GTSSymbol:
    """One operation of a GTS with rewrite-engine metadata.

    ``cell`` mirrors ``op.cell`` but may be cleared (``None``) by the
    minimization rules when a symbol is merged across cells -- a merged
    symbol stands for "this operation on every cell".
    """

    op: Operation
    role: Role
    tour_position: int
    color: Optional[Color] = None
    terminal: bool = False
    merged: bool = False

    @property
    def cell(self) -> Optional[str]:
        return None if self.merged else self.op.cell

    def colored(self, color: Color) -> "GTSSymbol":
        return replace(self, color=color)

    def as_terminal(self) -> "GTSSymbol":
        return replace(self, terminal=True)

    def as_merged(self) -> "GTSSymbol":
        return replace(self, merged=True)

    def __str__(self) -> str:
        text = str(self.op)
        if self.merged and not self.op.is_wait:
            text = text[:-1]  # drop the cell suffix
        if self.terminal:
            text += "^"
        if self.color is not None:
            text = f"[{text}]{self.color.value}"
        return text


@dataclass
class GlobalTestSequence:
    """An annotated operation sequence plus its tour provenance."""

    symbols: List[GTSSymbol] = field(default_factory=list)
    tour: Tuple[int, ...] = ()

    @property
    def operations(self) -> Tuple[Operation, ...]:
        return tuple(s.op for s in self.symbols)

    @property
    def length(self) -> int:
        """Number of memory operations (the GTS cost, f.4.3 + setup)."""
        return len(self.symbols)

    def per_cell_length(self, cells: Sequence[str]) -> int:
        """Operations seen by the busiest cell (a complexity lower bound)."""
        counts = {c: 0 for c in cells}
        for symbol in self.symbols:
            if symbol.merged or symbol.op.is_wait:
                for c in counts:
                    counts[c] += 1
            elif symbol.op.cell in counts:
                counts[symbol.op.cell] += 1
        return max(counts.values()) if counts else 0

    def __str__(self) -> str:
        return ", ".join(str(s) for s in self.symbols)

    def __len__(self) -> int:
        return len(self.symbols)

    def __iter__(self):
        return iter(self.symbols)


def build_gts(
    tpg: TestPatternGraph,
    order: Sequence[int],
    power_up: Optional[MemoryState] = None,
) -> GlobalTestSequence:
    """Concatenate the tour's patterns into a raw GTS.

    Setup writes are emitted value-grouped (both cells' writes of the
    same value adjacent) so the later cross-cell merge rules apply; this
    mirrors the reordering the paper performs in Section 4.1.
    """
    if not order:
        return GlobalTestSequence([], ())
    cells = tpg.nodes[order[0]].pattern.cells
    state = power_up if power_up is not None else MemoryState.unknown(cells)

    symbols: List[GTSSymbol] = []
    for position, node_index in enumerate(order):
        pattern = tpg.nodes[node_index].pattern
        setup = sorted(
            pattern.setup_operations(state),
            key=lambda op: (op.value, op.cell),
        )
        for op in setup:
            symbols.append(GTSSymbol(op, Role.SETUP, position))
            state = state.apply(op)
        state = state.merge(pattern.init)
        if pattern.excite is not None:
            symbols.append(GTSSymbol(pattern.excite, Role.EXCITE, position))
            state = state.apply(pattern.excite)
        symbols.append(GTSSymbol(pattern.observe, Role.OBSERVE, position))
    return GlobalTestSequence(symbols, tuple(order))


def gts_text(gts: GlobalTestSequence) -> str:
    """Plain operation text (the form printed in the paper)."""
    return format_sequence(gts.operations)
