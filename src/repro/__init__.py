"""repro: automatic generation of March tests for RAM testing.

A from-scratch reproduction of *"An Optimal Algorithm for the Automatic
Generation of March Tests"* (Benso, Di Carlo, Di Natale, Prinetto --
DATE 2002): memory fault modelling with Mealy automata, Basic Fault
Effects, Test Pattern Graphs, exact ATSP tour search, GTS rewrite rules
and simulator-validated March test synthesis.

Quickstart::

    from repro import generate_march_test
    report = generate_march_test("SAF", "TF")
    print(report.test, report.complexity_label)
"""

from .core.config import GeneratorConfig
from .core.generator import (
    GenerationError,
    MarchTestGenerator,
    generate_march_test,
)
from .core.report import GenerationReport
from .faults.faultlist import BFEClass, FaultList, FaultModel
from .kernel import (
    SimulationKernel,
    SimulationReport,
    get_default_kernel,
)
from .march.catalog import CATALOG, by_name
from .march.test import MarchTest, march, parse_march
from .simulator.faultsim import simulate_fault_list

__version__ = "1.2.0"

__all__ = [
    "GeneratorConfig",
    "GenerationError",
    "MarchTestGenerator",
    "generate_march_test",
    "GenerationReport",
    "BFEClass",
    "FaultList",
    "FaultModel",
    "CATALOG",
    "by_name",
    "MarchTest",
    "march",
    "parse_march",
    "SimulationKernel",
    "SimulationReport",
    "get_default_kernel",
    "simulate_fault_list",
    "__version__",
]
