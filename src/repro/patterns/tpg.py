"""The Test Pattern Graph (paper, Section 4, Figure 4).

The TPG is a strongly connected weighted digraph with one node per test
pattern.  The weight of edge (u, v) is the number of memory operations
needed to reach v's initialization state from u's observation state
(f.4.1: the Hamming distance between S_S and S_T, extended to
don't-care cells which cost nothing).

The number of possible Global Test Sequences over a TPG with V nodes is
V! (f.4.2); :func:`TestPatternGraph.gts_count` reproduces the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..memory.state import MemoryState
from .test_pattern import TestPattern


@dataclass
class TPGNode:
    """A TPG node: one test pattern plus the classes it covers."""

    index: int
    pattern: TestPattern
    covers: Set[str] = field(default_factory=set)

    def __str__(self) -> str:
        return f"TP{self.index + 1}{self.pattern}"


@dataclass
class TestPatternGraph:
    """Complete weighted digraph over de-duplicated test patterns.

    ``weight_mode`` selects the edge cost function: ``"hamming"`` is
    the paper's f.4.1 (setup writes needed between patterns);
    ``"uniform"`` charges 1 for any state change (the ablation showing
    why the Hamming weights matter).
    """

    __test__ = False  # not a pytest class, despite the Test* name

    nodes: List[TPGNode] = field(default_factory=list)
    _index_by_key: Dict[Tuple, int] = field(default_factory=dict)
    weight_mode: str = "hamming"

    @classmethod
    def from_patterns(
        cls,
        patterns: Iterable[TestPattern],
        covers: Optional[Sequence[str]] = None,
    ) -> "TestPatternGraph":
        """Build a TPG, de-duplicating structurally identical patterns.

        ``covers`` optionally gives the class name covered by each
        pattern (aligned with ``patterns``).
        """
        graph = cls()
        covers_list = list(covers) if covers is not None else None
        for position, pattern in enumerate(patterns):
            name = covers_list[position] if covers_list else pattern.label
            graph.add(pattern, name)
        return graph

    def add(self, pattern: TestPattern, covered_class: str = "") -> TPGNode:
        """Insert a pattern (or merge into an existing identical node)."""
        key = pattern.key()
        if key in self._index_by_key:
            node = self.nodes[self._index_by_key[key]]
            if covered_class:
                node.covers.add(covered_class)
            return node
        node = TPGNode(len(self.nodes), pattern)
        if covered_class:
            node.covers.add(covered_class)
        self.nodes.append(node)
        self._index_by_key[key] = node.index
        return node

    # -- weights ---------------------------------------------------------------

    def weight(self, source: int, target: int) -> int:
        """Edge weight (f.4.1): operations to set up the target pattern."""
        ss = self.nodes[source].pattern.observation_state
        cost = self.nodes[target].pattern.setup_cost(ss)
        if self.weight_mode == "uniform":
            return 1 if cost else 0
        if self.weight_mode != "hamming":
            raise ValueError(f"unknown weight mode {self.weight_mode!r}")
        return cost

    def start_weight(self, target: int, power_up: Optional[MemoryState] = None) -> int:
        """Setup cost from the power-up (all don't-care) state."""
        if power_up is None:
            cells = self.nodes[target].pattern.cells
            power_up = MemoryState.unknown(cells)
        return self.nodes[target].pattern.setup_cost(power_up)

    def weight_matrix(self) -> List[List[int]]:
        """Full V x V matrix of f.4.1 weights (diagonal is 0)."""
        size = len(self.nodes)
        return [
            [0 if r == c else self.weight(r, c) for c in range(size)]
            for r in range(size)
        ]

    def path_matrix(self) -> Tuple[List[List[int]], int, int]:
        """Weight matrix augmented with the two dummy nodes of Section 4.

        The paper closes the open GTS path into an ATSP cycle with two
        dummy nodes.  We use the standard equivalent construction with a
        single combined depot node: ``depot -> v`` costs the power-up
        setup of v, ``v -> depot`` costs 0, giving exactly the open-path
        optimum.  Returns ``(matrix, depot_index, size)``.
        """
        size = len(self.nodes)
        matrix = self.weight_matrix()
        depot = size
        for row_index, row in enumerate(matrix):
            row.append(0)  # v -> depot closes the path for free
        start_row = [self.start_weight(t) for t in range(size)]
        start_row.append(0)
        matrix.append(start_row)
        return matrix, depot, size + 1

    # -- bookkeeping -------------------------------------------------------------

    def gts_count(self) -> int:
        """Number of possible GTSs: V! (paper, f.4.2)."""
        return math.factorial(len(self.nodes))

    def classes_covered(self) -> Set[str]:
        out: Set[str] = set()
        for node in self.nodes:
            out |= node.covers
        return out

    def __len__(self) -> int:
        return len(self.nodes)

    def __iter__(self):
        return iter(self.nodes)
