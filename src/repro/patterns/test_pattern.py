"""Test Patterns (paper, f.2.3).

A test pattern is the triplet ``TP = (I, E, O)``:

* ``I`` -- the initialization state (a :class:`MemoryState`, possibly
  with don't-cares for cells the pattern does not constrain);
* ``E`` -- the operation exciting the BFE (a write, a read for
  destructive-read faults, the wait ``T`` for retention faults, or
  ``None`` when the observation itself excites the fault);
* ``O`` -- the *read-and-verify* operation observing the fault effect
  (``rd_c``: read cell ``c`` and verify the value equals ``d``).

TPs are derived mechanically from BFEs: a delta-BFE is observed on any
cell where the good and faulty next states disagree (each choice yields
an alternative TP); a lambda-BFE is observed by the deviating read
itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..faults.bfe import BasicFaultEffect, BFEKind
from ..memory.operations import Operation, read
from ..memory.state import DASH, MemoryState


@dataclass(frozen=True)
class TestPattern:
    """An (I, E, O) triplet covering one BFE."""

    __test__ = False  # not a pytest class, despite the Test* name

    init: MemoryState
    excite: Optional[Operation]
    observe: Operation
    label: str = ""

    def __post_init__(self) -> None:
        if not self.observe.is_verifying_read:
            raise ValueError("O must be a read-and-verify operation")
        if self.excite is not None and self.excite.is_verifying_read:
            # Canonicalize: the excitation read carries its good value so
            # it can double as a verifying read in the final test.
            pass

    # -- derived values -------------------------------------------------------

    @property
    def cells(self) -> Tuple[str, ...]:
        return self.init.cells

    @property
    def observation_state(self) -> MemoryState:
        """The good-machine state after ``I`` then ``E`` (the TPG's S_S).

        Reads and waits leave the state unchanged; don't-cares persist.
        """
        if self.excite is None:
            return self.init
        return self.init.apply(self.excite)

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """E then O (the pattern body, without initialization writes)."""
        if self.excite is None:
            return (self.observe,)
        return (self.excite, self.observe)

    def setup_cost(self, from_state: MemoryState) -> int:
        """Writes needed to satisfy ``init`` starting from ``from_state``.

        This realizes the TPG edge weight (f.4.1): for concrete states it
        equals the Hamming distance; an unknown source cell needing a
        concrete value costs one write.
        """
        return len(from_state.fill_operations(self.init))

    def setup_operations(self, from_state: MemoryState) -> Tuple[Operation, ...]:
        return from_state.fill_operations(self.init)

    def key(self) -> Tuple[str, Optional[str], str]:
        """Structural identity (used to de-duplicate TPG nodes)."""
        return (
            str(self.init),
            None if self.excite is None else str(self.excite),
            str(self.observe),
        )

    def __str__(self) -> str:
        excite = "-" if self.excite is None else str(self.excite)
        return f"({self.init}, {excite}, {self.observe})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TestPattern{self}"


def patterns_for_bfe(bfe: BasicFaultEffect) -> Tuple[TestPattern, ...]:
    """All alternative TPs covering one BFE.

    * lambda-BFE: one TP -- drive to the state and read-and-verify the
      good value (the faulty machine answers differently).
    * delta-BFE: one TP per cell on which the good and faulty next
      states disagree *and* whose good value is concrete.  The
      excitation is the deviating input; write excitations double as
      part of the observation epoch.
    """
    if bfe.kind is BFEKind.LAMBDA:
        cell = bfe.op.cell
        good_value = bfe.state[cell]
        if good_value == DASH:
            raise ValueError(
                f"lambda-BFE {bfe} reads a cell with unknown good value"
            )
        return (
            TestPattern(
                bfe.state,
                None,
                read(cell, good_value),
                label=bfe.label,
            ),
        )

    good_next = _good_next(bfe.state, bfe.op)
    assert bfe.faulty_next is not None
    patterns = []
    for cell, faulty_value in bfe.faulty_next:
        if faulty_value == DASH:
            continue
        good_value = good_next[cell]
        if good_value == DASH or good_value == faulty_value:
            continue
        excite = bfe.op
        if excite.is_read:
            # Canonicalize a destructive-read excitation to a verifying
            # read of its good value.
            value = bfe.state[excite.cell]
            if value != DASH:
                excite = read(excite.cell, value)
        patterns.append(
            TestPattern(
                bfe.state,
                excite,
                read(cell, good_value),
                label=bfe.label,
            )
        )
    if not patterns:
        raise ValueError(f"delta-BFE {bfe} has no observable deviation")
    return tuple(patterns)


def _good_next(state: MemoryState, op: Operation) -> MemoryState:
    return state.apply(op)
