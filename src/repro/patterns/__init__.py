"""Test patterns and the Test Pattern Graph."""

from .test_pattern import TestPattern, patterns_for_bfe
from .tpg import TestPatternGraph, TPGNode

__all__ = ["TestPattern", "patterns_for_bfe", "TestPatternGraph", "TPGNode"]
