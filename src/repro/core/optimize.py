"""Simulation-checked optimization of March tests.

The paper's rewrite rules aim at a *minimal* March test; because the
published rule tables are OCR-corrupted (see DESIGN.md), this module
closes the gap with a deterministic local search whose every step is
validated by the fault simulator: an operation or element is removed
(or two elements merged) only when the shrunken test still detects the
whole target fault list.  The result is non-redundant by construction
at operation granularity.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple, Union

from ..faults.instances import FaultCase
from ..kernel import SimulationKernel, get_default_kernel
from ..march.builder import normalize_expectations
from ..march.element import AddressOrder, DelayElement, MarchElement
from ..march.test import MarchTest

Element = Union[MarchElement, DelayElement]
Verifier = Callable[[MarchTest], bool]


def make_verifier(
    cases: Sequence[FaultCase],
    size: int,
    kernel: Optional[SimulationKernel] = None,
) -> Verifier:
    """A predicate: well-formed and detects every fault case.

    Fail-fast with fault-dictionary caching; the implementation is
    :meth:`repro.kernel.SimulationKernel.verifier` (the process-wide
    kernel unless one is supplied).
    """
    return (kernel or get_default_kernel()).verifier(cases, size)


def _metric(test: MarchTest) -> Tuple[int, int]:
    return (test.complexity, len(test.elements))


def _with_op_removed(
    test: MarchTest, element_index: int, op_index: int
) -> Optional[MarchTest]:
    elements: List[Element] = list(test.elements)
    element = elements[element_index]
    if not isinstance(element, MarchElement):
        return None
    ops = element.ops[:op_index] + element.ops[op_index + 1:]
    if ops:
        elements[element_index] = MarchElement(element.order, ops)
    else:
        del elements[element_index]
    if not elements:
        return None
    return normalize_expectations(MarchTest(tuple(elements), test.name))


def _with_element_removed(test: MarchTest, element_index: int) -> Optional[MarchTest]:
    elements = list(test.elements)
    del elements[element_index]
    if not elements:
        return None
    return normalize_expectations(MarchTest(tuple(elements), test.name))


def _merged_neighbors(
    test: MarchTest, element_index: int
) -> List[MarchTest]:
    """Candidates merging element k into k+1 under either order."""
    elements = list(test.elements)
    if element_index + 1 >= len(elements):
        return []
    first = elements[element_index]
    second = elements[element_index + 1]
    if not (
        isinstance(first, MarchElement) and isinstance(second, MarchElement)
    ):
        return []
    orders = {first.order, second.order}
    out = []
    for order in orders:
        merged = MarchElement(order, first.ops + second.ops)
        candidate = (
            elements[:element_index]
            + [merged]
            + elements[element_index + 2:]
        )
        normalized = normalize_expectations(
            MarchTest(tuple(candidate), test.name)
        )
        if normalized is not None:
            out.append(normalized)
    return out


def _improving_candidates(test: MarchTest) -> List[MarchTest]:
    """All one-step shrink candidates, best first."""
    candidates: List[MarchTest] = []
    for element_index, element in enumerate(test.elements):
        if isinstance(element, MarchElement):
            for op_index in range(len(element.ops)):
                shrunk = _with_op_removed(test, element_index, op_index)
                if shrunk is not None:
                    candidates.append(shrunk)
        removed = _with_element_removed(test, element_index)
        if removed is not None:
            candidates.append(removed)
    for element_index in range(len(test.elements) - 1):
        candidates.extend(_merged_neighbors(test, element_index))
    candidates.sort(key=_metric)
    return candidates


def tighten(test: MarchTest, verify: Verifier) -> MarchTest:
    """Hill-climb: apply verified shrinking moves until fixpoint.

    Every accepted candidate detects the full fault list, so the result
    is at least as good as the input and every remaining operation is
    load-bearing with respect to single-op removal.
    """
    current = test
    current_metric = _metric(test)
    improved = True
    while improved:
        improved = False
        for candidate in _improving_candidates(current):
            if _metric(candidate) >= current_metric:
                continue
            if verify(candidate):
                current = candidate
                current_metric = _metric(candidate)
                improved = True
                break
    return current


def canonicalize_orders(test: MarchTest, verify: Verifier) -> MarchTest:
    """Relax element orders to ``ANY`` wherever both realizations pass.

    ``ANY`` is the strongest claim (the element works marching either
    way); the verifier checks all realizations, so relaxation is sound.
    """
    elements = list(test.elements)
    for element_index, element in enumerate(elements):
        if not isinstance(element, MarchElement):
            continue
        if element.order is AddressOrder.ANY:
            continue
        relaxed = list(elements)
        relaxed[element_index] = element.with_order(AddressOrder.ANY)
        candidate = MarchTest(tuple(relaxed), test.name)
        if verify(candidate):
            elements = relaxed
    return MarchTest(tuple(elements), test.name)


def optimize(
    test: MarchTest,
    verify: Verifier,
    do_tighten: bool = True,
    do_canonicalize: bool = True,
) -> MarchTest:
    """Tighten then canonicalize (both optional)."""
    out = test
    if do_tighten:
        out = tighten(out, verify)
    if do_canonicalize:
        out = canonicalize_orders(out, verify)
    return out
