"""Core: the automatic March test generation pipeline."""

from .config import GeneratorConfig
from .exhaustive import SearchStats, exhaustive_search
from .generator import GenerationError, MarchTestGenerator, generate_march_test
from .optimize import canonicalize_orders, make_verifier, optimize, tighten
from .report import GenerationReport
from .selection import (
    Selection,
    class_candidates,
    enumerate_selections,
    selection_space_size,
)

__all__ = [
    "GeneratorConfig",
    "SearchStats",
    "exhaustive_search",
    "GenerationError",
    "MarchTestGenerator",
    "generate_march_test",
    "canonicalize_orders",
    "make_verifier",
    "optimize",
    "tighten",
    "GenerationReport",
    "Selection",
    "class_candidates",
    "enumerate_selections",
    "selection_space_size",
]
