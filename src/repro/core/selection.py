"""Section 5: enumeration of BFE equivalence-class selections.

Each :class:`BFEClass` may be covered by any one of its member BFEs,
and each member BFE by any one of its alternative observation TPs.
The paper enumerates the ``E = prod |Ci|`` combinations, solving one
ATSP per combination and keeping the best GTS.  For large user fault
lists the raw product explodes, so candidates are ranked (shared TPs
first -- selections that reuse a pattern shrink the TPG) and the
product is truncated to a configurable budget.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..faults.faultlist import BFEClass
from ..patterns.test_pattern import TestPattern, patterns_for_bfe


@dataclass(frozen=True)
class ClassCandidates:
    """All alternative TPs able to cover one class, ranked."""

    cls: BFEClass
    patterns: Tuple[TestPattern, ...]


@dataclass(frozen=True)
class Selection:
    """One TP choice per class."""

    choices: Tuple[Tuple[str, TestPattern], ...]  # (class name, pattern)

    @property
    def patterns(self) -> Tuple[TestPattern, ...]:
        """Unique patterns of the selection, in class order."""
        seen = {}
        for _, pattern in self.choices:
            seen.setdefault(pattern.key(), pattern)
        return tuple(seen.values())

    @property
    def unique_count(self) -> int:
        return len({p.key() for _, p in self.choices})


def class_candidates(cls: BFEClass) -> ClassCandidates:
    """Collect and de-duplicate the TPs of all class members."""
    seen: Dict[Tuple, TestPattern] = {}
    for member in cls.members:
        for pattern in patterns_for_bfe(member):
            seen.setdefault(pattern.key(), pattern)
    return ClassCandidates(cls, tuple(seen.values()))


def _rank_candidates(
    candidates: Sequence[ClassCandidates],
) -> List[ClassCandidates]:
    """Rank each class's TPs: shared across classes first, then less
    constrained initializations, then uniform-init friendliness."""
    counts: Dict[Tuple, int] = {}
    for cand in candidates:
        for pattern in cand.patterns:
            counts[pattern.key()] = counts.get(pattern.key(), 0) + 1

    def score(pattern: TestPattern) -> Tuple:
        concrete = [v for _, v in pattern.init if v != "-"]
        uniform = len(set(concrete)) <= 1
        return (
            -counts[pattern.key()],          # shared with other classes
            -pattern.init.dash_count,        # fewer constraints
            0 if uniform else 1,             # f.4.4 friendliness
            str(pattern),                    # determinism
        )

    return [
        ClassCandidates(c.cls, tuple(sorted(c.patterns, key=score)))
        for c in candidates
    ]


def _truncate_to_budget(
    ranked: List[ClassCandidates], limit: int
) -> List[ClassCandidates]:
    """Shrink per-class candidate lists until the product fits."""
    sizes = [len(c.patterns) for c in ranked]

    def product() -> int:
        total = 1
        for s in sizes:
            total *= s
            if total > limit:
                return total
        return total

    while product() > limit:
        largest = max(range(len(sizes)), key=lambda k: sizes[k])
        if sizes[largest] <= 1:
            break
        sizes[largest] -= 1
    return [
        ClassCandidates(c.cls, c.patterns[: sizes[k]])
        for k, c in enumerate(ranked)
    ]


def enumerate_selections(
    classes: Sequence[BFEClass], limit: int = 128
) -> Iterator[Selection]:
    """Yield TP selections, most promising first, within the budget.

    With ``limit == 1`` this degrades to the greedy single selection
    (the ablation's "no equivalence enumeration" mode).
    """
    candidates = _rank_candidates([class_candidates(c) for c in classes])
    if limit <= 1:
        yield Selection(
            tuple((c.cls.name, c.patterns[0]) for c in candidates)
        )
        return
    truncated = _truncate_to_budget(candidates, limit)
    names = [c.cls.name for c in truncated]
    pools = [c.patterns for c in truncated]
    emitted = 0
    for combo in itertools.product(*pools):
        yield Selection(tuple(zip(names, combo)))
        emitted += 1
        if emitted >= limit:
            return


def selection_space_size(classes: Sequence[BFEClass]) -> int:
    """The paper's E = prod |Ci| (Section 5), at TP granularity."""
    total = 1
    for cls in classes:
        total *= len(class_candidates(cls).patterns)
    return total
