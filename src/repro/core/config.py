"""Generator configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple


@dataclass
class GeneratorConfig:
    """Tunable knobs of the March test generator.

    Attributes
    ----------
    cells:
        Symbolic cells of the fault machine (the paper's two-cell model).
    verify_size:
        Memory size used for candidate verification inside the search
        loop (2 cells exercise both aggressor/victim orders).
    confirm_size:
        Memory size of the final confirmation run (3 adds a bystander
        cell in every position).
    prefer_uniform_start:
        Apply the f.4.4 optimization: restrict tours to start at test
        patterns whose initialization is compatible with the all-0 /
        all-1 state.  Falls back to unrestricted when infeasible.
    equivalence_enumeration:
        Enumerate the Section 5 equivalence-class selections (up to
        ``selection_limit`` combinations); when off, a single greedy
        selection is used.
    selection_limit:
        Maximum number of class-member selections explored.
    atsp_method:
        Method forwarded to :func:`repro.atsp.solve_path`.
    tighten:
        Run the simulation-checked local optimizer on the built test.
    repair:
        On pipeline verification failure, fall back to the direct
        per-pattern realization and re-optimize.
    canonicalize_orders:
        Replace element orders by ``ANY`` when both realizations verify
        (stronger, more conventional notation).
    check_redundancy:
        Build the Section 6 Coverage Matrix and report non-redundancy.
    polish:
        After local optimization, run a budgeted iterative-deepening
        search strictly below the incumbent complexity, starting at the
        GTS-derived lower bound; finds the global optimum whenever the
        budget allows.
    polish_budget:
        Maximum candidates the polish phase may simulate.
    polish_max_elements:
        Element-count cap of the polish search grammar.
    weight_mode:
        TPG edge cost: ``"hamming"`` (f.4.1) or ``"uniform"`` (ablation).
    backend:
        Execution backend of the simulation kernel: ``"bitparallel"``
        (default -- word-packed simulation: every standard fault
        instance advances in one machine word per march operation,
        with scalar fallback for unknown user types),
        ``"bitparallel-np"`` (the same lanes tiled onto fixed-width
        uint64 NumPy arrays -- constant vectorized cost per 64-lane
        word; requires the ``[fast]`` extra and degrades to
        ``bitparallel`` with a warning without it), ``"serial"``
        (scalar in-process evaluation) or ``"process"``
        (multiprocessing over fault-case chunks).  The default flipped
        from ``serial`` after profiling the generator's verify-size-2
        single-probe path: bitparallel is ~1.25x faster end-to-end on
        the Table 3 rows and never slower.  Unknown names raise
        ``ValueError`` at construction time.  See
        :mod:`repro.kernel.backends` and the README section "Choosing
        a backend".
    sim_cache_size:
        Bound of the kernel's fault-dictionary cache (LRU beyond it).
    store_path:
        Path of the persistent fault-dictionary store
        (:mod:`repro.store`), layered under the in-memory cache so
        repeated invocations share verdicts across processes; ``None``
        disables persistence.
    store_readonly:
        Open the store for lookups only (no verdict writes).
    telemetry:
        A live :class:`repro.telemetry.Telemetry` handle threaded into
        the kernel (metrics registry + span tracer, what the CLI's
        ``--metrics``/``--trace`` flags create); ``None`` (default)
        keeps the zero-cost no-op telemetry.
    """

    cells: Tuple[str, ...] = ("i", "j")
    verify_size: int = 2
    confirm_size: int = 3
    prefer_uniform_start: bool = True
    equivalence_enumeration: bool = True
    selection_limit: int = 128
    atsp_method: str = "auto"
    tighten: bool = True
    repair: bool = True
    canonicalize_orders: bool = True
    check_redundancy: bool = True
    polish: bool = True
    polish_budget: int = 30000
    polish_max_elements: int = 7
    weight_mode: str = "hamming"
    backend: str = "bitparallel"
    sim_cache_size: int = 1_000_000
    store_path: Optional[str] = None
    store_readonly: bool = False
    # Typed loosely (Any-ish via Optional[object]) on purpose: core
    # must stay importable without pulling repro.telemetry in here.
    telemetry: Optional[object] = None

    def __post_init__(self) -> None:
        # Imported lazily: core must stay importable without pulling
        # the kernel package in at module-import time.
        from ..kernel.backends import validate_backend_name

        validate_backend_name(self.backend)
