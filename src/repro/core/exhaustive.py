"""Bounded exhaustive March test search (the Section 2 baseline).

Earlier generators ([2][3][4] van de Goor & Smit) search a *transition
tree* whose paths enumerate candidate March tests, bounded in depth and
checked one by one -- exhaustive and increasingly slow.  This module
reimplements that strategy as an iterative-deepening enumeration over
well-formed March structures, used:

* as the paper's point of comparison in the benchmarks (pipeline vs
  exhaustive runtime);
* as a last-resort fallback guaranteeing a minimal test exists below a
  bound.

The enumeration is restricted to the classic March grammar: an optional
initializing write element, then elements made of a read of the current
background followed by alternating writes (each possibly re-read), each
element marching up or down.  This matches the structure of every test
in the literature catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

from ..march.element import AddressOrder, MarchElement, MarchOp
from ..march.test import MarchTest
from .optimize import Verifier


@dataclass
class SearchStats:
    """Instrumentation of the exhaustive search."""

    candidates_tested: int = 0
    nodes_expanded: int = 0
    complexity_reached: int = 0


def _element_bodies(
    background: int, max_ops: int
) -> Iterator[Tuple[Tuple[MarchOp, ...], int]]:
    """Yield canonical element bodies valid on a ``background`` value.

    Bodies start with a read of the background (the transition-tree
    branching of [2]); writes then evolve the tracked value, each
    optionally re-read; a repeated read probes destructive-read faults.
    Yields ``(ops, new_background)``.
    """

    def extend(
        ops: Tuple[MarchOp, ...], value: int, budget: int
    ) -> Iterator[Tuple[Tuple[MarchOp, ...], int]]:
        yield ops, value
        if budget == 0:
            return
        last = ops[-1]
        # Writes: flip the value, or repeat it (write-disturb probing),
        # but never two identical consecutive writes.
        for new_value in (1 - value, value):
            if last.is_write and last.value == new_value:
                continue
            for tail in extend(
                ops + (MarchOp("w", new_value),), new_value, budget - 1
            ):
                yield tail
        # A verifying read after a write, or one repeated read.
        if last.is_write or (len(ops) < 2 or not ops[-2].is_read):
            for tail in extend(
                ops + (MarchOp("r", value),), value, budget - 1
            ):
                yield tail

    first = (MarchOp("r", background),)
    yield from extend(first, background, max_ops - 1)


def _marches(
    max_complexity: int,
    max_elements: int,
    stats: SearchStats,
) -> Iterator[MarchTest]:
    """Enumerate canonical candidate tests up to the complexity bound.

    Canonical form: an initial write-only element (one or two writes,
    order fixed UP -- the mirror test is equivalent up to cell
    relabelling for direction-symmetric fault lists), followed by
    read-first elements marching either way.
    """

    def grow(
        elements: Tuple[MarchElement, ...],
        background: int,
        budget: int,
    ) -> Iterator[MarchTest]:
        if elements:
            yield MarchTest(elements)
        if budget == 0 or len(elements) >= max_elements:
            return
        for body, new_background in _element_bodies(background, budget):
            stats.nodes_expanded += 1
            for order in (AddressOrder.UP, AddressOrder.DOWN):
                element = MarchElement(order, body)
                yield from grow(
                    elements + (element,), new_background, budget - len(body)
                )

    for initial_value in (0, 1):
        single = MarchElement(
            AddressOrder.UP, (MarchOp("w", initial_value),)
        )
        yield from grow((single,), initial_value, max_complexity - 1)
        if max_complexity >= 2:
            double = MarchElement(
                AddressOrder.UP,
                (MarchOp("w", initial_value), MarchOp("w", 1 - initial_value)),
            )
            yield from grow((double,), 1 - initial_value, max_complexity - 2)


def exhaustive_search(
    verify: Verifier,
    max_complexity: int = 10,
    max_elements: int = 6,
    min_complexity: int = 2,
    budget: Optional[int] = None,
    stats: Optional[SearchStats] = None,
) -> Optional[MarchTest]:
    """Find a minimal-complexity March test passing ``verify``.

    Iterative deepening on complexity guarantees the first hit is
    minimal within the grammar.  Returns ``None`` when no test of
    complexity <= ``max_complexity`` exists (or the candidate ``budget``
    runs out first).
    """
    stats = stats if stats is not None else SearchStats()
    for bound in range(max(2, min_complexity), max_complexity + 1):
        stats.complexity_reached = bound
        seen = set()
        for candidate in _marches(bound, max_elements, stats):
            if candidate.complexity != bound:
                continue
            key = str(candidate)
            if key in seen:
                continue
            seen.add(key)
            stats.candidates_tested += 1
            if budget is not None and stats.candidates_tested > budget:
                return None
            if verify(candidate):
                return candidate
    return None
