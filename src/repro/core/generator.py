"""The end-to-end March test generator (paper, Section 4).

Pipeline, per equivalence-class selection (Section 5):

1. model the target faults as BFEs and derive their test patterns;
2. build the Test Pattern Graph with f.4.1 weights;
3. find a minimum open path (ATSP with dummy/depot closure), preferring
   tours that start from a uniform 00/11 initialization (f.4.4);
4. concatenate the tour into a Global Test Sequence;
5. reorder + minimize + segment the GTS into a March test (rewrite
   rules of Sections 4.1-4.3, reconstructed -- see DESIGN.md);
6. validate by fault simulation and, if the reconstructed rules fall
   short, repair with the direct per-pattern realization;
7. shrink with the simulation-checked optimizer and keep the best
   result across selections.

The generated test is finally re-verified on a larger memory and
checked non-redundant through the Coverage Matrix / Set Covering
procedure of Section 6.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple

from ..atsp.solver import solve_path
from ..faults.faultlist import FaultList
from ..kernel import SimulationKernel
from ..march.builder import build_march, sequential_march
from ..march.catalog import CATALOG
from ..march.test import MarchTest
from ..patterns.tpg import TestPatternGraph
from ..sequence.gts import GlobalTestSequence, build_gts
from ..sequence.rewrite import reorder_and_minimize
from ..simulator.coverage import is_non_redundant
from .config import GeneratorConfig
from .optimize import Verifier, optimize
from .report import GenerationReport
from .selection import Selection, enumerate_selections, selection_space_size


class GenerationError(RuntimeError):
    """Raised when no verified March test could be produced."""


@dataclass
class _Attempt:
    test: MarchTest
    gts: Optional[GlobalTestSequence]
    tour: Tuple[int, ...]
    tpg_size: int
    used_repair: bool

    @property
    def metric(self) -> Tuple[int, int]:
        return (self.test.complexity, len(self.test.elements))


class MarchTestGenerator:
    """Generates an optimal March test for an unconstrained fault list.

    >>> from repro.faults import FaultList
    >>> generator = MarchTestGenerator()
    >>> report = generator.generate(FaultList.from_names("SAF"))
    >>> report.complexity
    4
    """

    def __init__(
        self,
        config: Optional[GeneratorConfig] = None,
        kernel: Optional[SimulationKernel] = None,
    ) -> None:
        self.config = config or GeneratorConfig()
        #: All fault simulation -- search-loop verification, final
        #: confirmation, non-redundancy analysis -- goes through this
        #: kernel, so verdicts are memoized across pipeline stages.
        self.kernel = kernel or SimulationKernel.from_config(self.config)

    # -- public API -------------------------------------------------------------

    def generate(self, faults: FaultList) -> GenerationReport:
        """Generate, validate and optimize a March test for ``faults``."""
        config = self.config
        started = time.perf_counter()

        classes = faults.classes(config.cells)
        if not classes:
            raise GenerationError("the fault list produced no BFE classes")
        cases = faults.instances(config.verify_size)
        if not cases:
            raise GenerationError(
                "the fault list has no behavioural instances to verify against"
            )
        verify = self.kernel.verifier(cases, config.verify_size)

        space = selection_space_size(classes)
        limit = config.selection_limit if config.equivalence_enumeration else 1

        attempts: List[_Attempt] = []
        seen_pattern_sets: Set[frozenset] = set()
        explored = 0
        for selection in enumerate_selections(classes, limit):
            explored += 1
            pattern_set = frozenset(p.key() for p in selection.patterns)
            if pattern_set in seen_pattern_sets:
                continue
            seen_pattern_sets.add(pattern_set)
            attempt = self._attempt(selection, verify)
            if attempt is not None:
                attempts.append(attempt)
        if not attempts:
            raise GenerationError(
                "no selection produced a simulator-verified March test"
            )

        attempts.sort(key=lambda a: a.metric)
        finalists = attempts[:4]
        best: Optional[_Attempt] = None
        for attempt in finalists:
            improved = optimize(
                attempt.test,
                verify,
                do_tighten=config.tighten,
                do_canonicalize=config.canonicalize_orders,
            )
            candidate = _Attempt(
                improved, attempt.gts, attempt.tour, attempt.tpg_size,
                attempt.used_repair,
            )
            if best is None or candidate.metric < best.metric:
                best = candidate
        assert best is not None

        lower_bound = min(
            -(-a.gts.length // 2) for a in attempts if a.gts is not None
        ) if any(a.gts is not None for a in attempts) else 2
        notes: List[str] = []
        if config.polish and best.test.complexity > lower_bound:
            polished = self._polish(best, verify, lower_bound)
            if polished is not None:
                best = polished
        if best.test.complexity <= lower_bound:
            notes.append(
                f"complexity matches the GTS lower bound ({lower_bound}n):"
                " provably minimal for the selected patterns"
            )

        elapsed = time.perf_counter() - started
        report = self._finalize(best, faults, explored, space, elapsed)
        report.notes.extend(notes)
        return report

    def _polish(
        self, best: _Attempt, verify: Verifier, lower_bound: int
    ) -> Optional[_Attempt]:
        """Budgeted global search strictly below the incumbent."""
        from .exhaustive import exhaustive_search

        config = self.config
        found = exhaustive_search(
            verify,
            max_complexity=best.test.complexity - 1,
            max_elements=config.polish_max_elements,
            min_complexity=lower_bound,
            budget=config.polish_budget,
        )
        if found is None:
            return None
        improved = optimize(
            found.renamed("generated"),
            verify,
            do_tighten=False,
            do_canonicalize=config.canonicalize_orders,
        )
        return _Attempt(improved, best.gts, best.tour, best.tpg_size, True)

    # -- pipeline ----------------------------------------------------------------

    def _attempt(
        self, selection: Selection, verify: Verifier
    ) -> Optional[_Attempt]:
        config = self.config
        patterns = selection.patterns
        tpg = TestPatternGraph(weight_mode=config.weight_mode)
        for class_name, pattern in selection.choices:
            tpg.add(pattern, class_name)

        matrix = tpg.weight_matrix()
        start_costs = [tpg.start_weight(k) for k in range(len(tpg))]
        order = self._solve_tour(tpg, matrix, start_costs)
        gts = build_gts(tpg, order)
        minimized = reorder_and_minimize(gts)
        candidate = build_march(minimized, name="generated")

        if candidate is not None and verify(candidate):
            return _Attempt(candidate, gts, tuple(order), len(tpg), False)

        if not config.repair:
            return None
        ordered_patterns = [tpg.nodes[k].pattern for k in order]
        fallback = sequential_march(ordered_patterns, name="generated")
        if fallback is not None and verify(fallback):
            return _Attempt(fallback, gts, tuple(order), len(tpg), True)
        return None

    def _solve_tour(
        self,
        tpg: TestPatternGraph,
        matrix: Sequence[Sequence[float]],
        start_costs: Sequence[float],
    ) -> List[int]:
        config = self.config
        if config.prefer_uniform_start:
            allowed = {
                k
                for k, node in enumerate(tpg.nodes)
                if _uniform_init(node.pattern.init)
            }
            if allowed:
                try:
                    order, _ = solve_path(
                        matrix,
                        start_costs,
                        allowed_starts=allowed,
                        method=config.atsp_method,
                    )
                    return order
                except ValueError:
                    pass  # constraint infeasible: fall back (paper f.4.4)
        order, _ = solve_path(matrix, start_costs, method=config.atsp_method)
        return order

    # -- finalization -------------------------------------------------------------

    def _finalize(
        self,
        best: _Attempt,
        faults: FaultList,
        explored: int,
        space: int,
        elapsed: float,
    ) -> GenerationReport:
        config = self.config
        confirm_cases = faults.instances(config.confirm_size)
        confirm_verify = self.kernel.verifier(
            confirm_cases, config.confirm_size
        )
        verified = confirm_verify(best.test)

        non_redundant: Optional[bool] = None
        if config.check_redundancy and verified:
            non_redundant = is_non_redundant(
                best.test, confirm_cases, config.confirm_size,
                kernel=self.kernel,
            )

        equivalent = _known_equivalent(
            best.test, confirm_verify
        )

        report = GenerationReport(
            test=best.test,
            fault_names=faults.names,
            elapsed_seconds=elapsed,
            verified=verified,
            non_redundant=non_redundant,
            equivalent_known=equivalent,
            gts=best.gts,
            tour=best.tour,
            tpg_size=best.tpg_size,
            selections_explored=explored,
            selection_space=space,
            used_repair=best.used_repair,
        )
        if not verified:
            report.notes.append(
                f"confirmation at size {config.confirm_size} failed"
            )
        return report


def _uniform_init(init) -> bool:
    """True when the initialization is compatible with 00..0 or 11..1
    (the f.4.4 start-state preference; don't-cares are compatible with
    both)."""
    concrete = [v for _, v in init if v != "-"]
    return len(set(concrete)) <= 1


def _known_equivalent(test: MarchTest, verify: Verifier) -> Optional[str]:
    """A literature test with the same complexity covering the same
    fault list, as reported in Table 3's last column."""
    for name, known in sorted(CATALOG.items()):
        if known.complexity == test.complexity and verify(known):
            return f"{name} ({known.complexity_label})"
    return None


def generate_march_test(
    *fault_names: str, config: Optional[GeneratorConfig] = None
) -> GenerationReport:
    """One-call convenience API.

    >>> report = generate_march_test("SAF", "TF")
    >>> report.complexity <= 5
    True
    """
    faults = FaultList.from_names(*fault_names)
    return MarchTestGenerator(config).generate(faults)
