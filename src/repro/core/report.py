"""Generation reports."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..march.test import MarchTest
from ..sequence.gts import GlobalTestSequence


@dataclass
class GenerationReport:
    """Everything the paper reports per generated March test (Table 3):
    the test, its complexity, the generation CPU time, plus the
    validation verdicts of Section 6."""

    test: MarchTest
    fault_names: Tuple[str, ...]
    elapsed_seconds: float
    verified: bool
    non_redundant: Optional[bool] = None
    equivalent_known: Optional[str] = None
    gts: Optional[GlobalTestSequence] = None
    tour: Tuple[int, ...] = ()
    tpg_size: int = 0
    selections_explored: int = 0
    selection_space: int = 0
    used_repair: bool = False
    notes: List[str] = field(default_factory=list)

    @property
    def complexity(self) -> int:
        return self.test.complexity

    @property
    def complexity_label(self) -> str:
        return self.test.complexity_label

    def summary(self) -> str:
        lines = [
            f"fault list : {', '.join(self.fault_names)}",
            f"march test : {self.test}",
            f"complexity : {self.complexity_label}",
            f"cpu time   : {self.elapsed_seconds:.3f}s",
            f"verified   : {self.verified}",
        ]
        if self.non_redundant is not None:
            lines.append(f"non-redundant : {self.non_redundant}")
        if self.equivalent_known:
            lines.append(f"known equivalent : {self.equivalent_known}")
        if self.tpg_size:
            lines.append(
                f"tpg nodes  : {self.tpg_size}"
                f" (selections {self.selections_explored}"
                f"/{self.selection_space})"
            )
        if self.used_repair:
            lines.append("note       : repair fallback used")
        lines.extend(f"note       : {n}" for n in self.notes)
        return "\n".join(lines)
