"""Exporting March tests to executable test programs.

A March test is an abstract recipe; production use needs the concrete
operation stream for an n-cell memory.  This module compiles a
:class:`MarchTest` to:

* :func:`operation_trace` -- the flat `(op, address, data)` sequence;
* :func:`to_csv` -- the same trace in CSV form for testbench replay;
* :func:`to_assembly` -- a tiny BIST-style microprogram listing with
  loop structure preserved (one loop per element, not per operation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .march.element import AddressOrder, DelayElement, MarchElement
from .march.test import MarchTest


@dataclass(frozen=True)
class TraceEntry:
    """One concrete memory operation of the compiled test."""

    index: int
    kind: str                 # "w", "r" or "T"
    address: Optional[int]
    data: Optional[int]       # written value or expected read value

    def __str__(self) -> str:
        if self.kind == "T":
            return f"{self.index:6d}  wait"
        data = "-" if self.data is None else str(self.data)
        return f"{self.index:6d}  {self.kind} @{self.address} {data}"


def operation_trace(test: MarchTest, size: int) -> Iterator[TraceEntry]:
    """The flat operation stream on an n-cell memory.

    ANY orders are realized ascending (the conventional default for
    test programs; use :func:`repro.march.transforms.mirror` or concrete
    orders for the other realization).
    """
    index = 0
    for element in test.elements:
        if isinstance(element, DelayElement):
            yield TraceEntry(index, "T", None, None)
            index += 1
            continue
        assert isinstance(element, MarchElement)
        for address in element.order.addresses(size):
            for op in element.ops:
                yield TraceEntry(index, op.kind, address, op.value)
                index += 1


def to_csv(test: MarchTest, size: int, header: bool = True) -> str:
    """CSV form: ``index,op,address,data``."""
    lines: List[str] = []
    if header:
        lines.append("index,op,address,data")
    for entry in operation_trace(test, size):
        address = "" if entry.address is None else str(entry.address)
        data = "" if entry.data is None else str(entry.data)
        lines.append(f"{entry.index},{entry.kind},{address},{data}")
    return "\n".join(lines)


_DIRECTION = {
    AddressOrder.UP: ("0", "N-1", "+1"),
    AddressOrder.DOWN: ("N-1", "0", "-1"),
    AddressOrder.ANY: ("0", "N-1", "+1"),
}


def to_assembly(test: MarchTest) -> str:
    """A loop-structured BIST microprogram listing.

    The output is symbolic in the memory size ``N`` -- the march
    property that makes the algorithm O(n) with constant program size.
    """
    lines = [f"; {test.name or 'march test'}: {test}",
             f"; complexity {test.complexity_label}"]
    for number, element in enumerate(test.elements, 1):
        if isinstance(element, DelayElement):
            lines.append(f"E{number}:  WAIT Tret")
            continue
        assert isinstance(element, MarchElement)
        start, stop, step = _DIRECTION[element.order]
        lines.append(
            f"E{number}:  FOR a = {start} TO {stop} STEP {step}"
            + ("    ; order free" if element.order is AddressOrder.ANY else "")
        )
        for op in element.ops:
            if op.is_write:
                lines.append(f"       WRITE mem[a] <- {op.value}")
            elif op.value is None:
                lines.append("       READ  mem[a]")
            else:
                lines.append(f"       READ  mem[a] EXPECT {op.value}")
        lines.append("     END")
    return "\n".join(lines)


def trace_length(test: MarchTest, size: int) -> int:
    """Number of trace entries (march linearity: complexity * n + delays)."""
    delays = sum(
        1 for e in test.elements if isinstance(e, DelayElement)
    )
    return test.complexity * size + delays
