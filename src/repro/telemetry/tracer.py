"""Lightweight span tracer: nested, monotonic-clock timed scopes.

Where the metrics registry answers "how many / how long in
aggregate", spans answer "what happened, in what order, inside what".
A :class:`Span` is a context manager; entering pushes it onto the
tracer's stack (so spans opened inside it become its children) and
exiting records its duration.  A campaign job traced this way yields
one tree per job -- ``simulate`` wrapping per-batch ``detect_batch``
spans -- which ``run_campaign`` serializes into the manifest and
``--trace`` renders as a JSONL log.

The clock is injectable (``SpanTracer(clock=...)``) so tests drive a
fake monotonic clock and assert *exact* start/duration schedules; the
default is :func:`time.monotonic`.  Span content is deterministic in
shape: names, attribute key sets and nesting are stable between runs,
only the timing values vary (and ``normalized_manifest`` strips the
whole block).

The stack is thread-local: concurrent threads (daemon workers, fork
pools) each build their own trees instead of corrupting a shared
parent pointer.  A ``max_spans`` cap bounds memory on runaway loops;
drops are counted, never silent.
"""

from __future__ import annotations

import json
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanTracer", "flatten_span_trees", "write_span_log"]


class Span:
    """One timed scope.  Use via ``with tracer.span(name, **attrs):``."""

    __slots__ = ("name", "attrs", "start", "seconds", "children", "_tracer")

    def __init__(
        self,
        name: str,
        attrs: Dict[str, Any],
        tracer: Optional["SpanTracer"] = None,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.start: Optional[float] = None
        self.seconds: Optional[float] = None
        self.children: List["Span"] = []
        self._tracer = tracer

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-scope (batch sizes etc.)."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        if self._tracer is not None:
            self._tracer._enter(self)
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if self._tracer is not None:
            self._tracer._exit(self)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-native tree form (stable key set; values vary)."""
        node: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "seconds": self.seconds,
        }
        if self.attrs:
            node["attrs"] = {str(k): self.attrs[k] for k in sorted(self.attrs)}
        if self.children:
            node["children"] = [child.to_dict() for child in self.children]
        return node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, start={self.start},"
            f" seconds={self.seconds}, children={len(self.children)})"
        )


class _NullSpan:
    """Shared no-op span handed out when tracing is off or saturated."""

    __slots__ = ()

    def annotate(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


NULL_SPAN = _NullSpan()


class SpanTracer:
    """Builds span trees against an injectable monotonic clock."""

    def __init__(
        self,
        clock: Optional[Callable[[], float]] = None,
        max_spans: int = 100_000,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self.max_spans = max_spans
        self.roots: List[Span] = []
        self.recorded = 0
        self.dropped = 0
        self._local = threading.local()
        self._lock = threading.Lock()

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def span(self, name: str, **attrs: Any) -> Any:
        """A context manager timing the enclosed scope.

        Beyond ``max_spans`` recorded spans the tracer hands out the
        shared null span (and counts the drop) so a runaway loop
        cannot grow the trace without bound.
        """
        with self._lock:
            if self.recorded >= self.max_spans:
                self.dropped += 1
                return NULL_SPAN
            self.recorded += 1
        return Span(name, dict(attrs), tracer=self)

    def _enter(self, span: Span) -> None:
        span.start = self.clock()
        self._stack().append(span)

    def _exit(self, span: Span) -> None:
        span.seconds = self.clock() - (span.start or 0.0)
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        parent = stack[-1] if stack else None
        if parent is not None:
            parent.children.append(span)
        else:
            with self._lock:
                self.roots.append(span)

    def span_trees(self) -> List[Dict[str, Any]]:
        """Completed root spans as JSON-native trees."""
        with self._lock:
            return [span.to_dict() for span in self.roots]

    def clear(self) -> None:
        with self._lock:
            self.roots = []
            self.recorded = 0
            self.dropped = 0
        self._local = threading.local()


def flatten_span_trees(
    trees: List[Dict[str, Any]]
) -> Iterator[Dict[str, Any]]:
    """Depth-first flattening of span trees into log lines.

    Each yielded dict carries the span's ``name``, timing, sorted
    ``attrs``, its ``depth`` and its ``parent`` span name -- the shape
    ``--trace`` writes one-JSON-object-per-line.
    """

    def walk(
        node: Dict[str, Any], depth: int, parent: Optional[str]
    ) -> Iterator[Dict[str, Any]]:
        line: Dict[str, Any] = {
            "name": node.get("name"),
            "depth": depth,
            "parent": parent,
            "start": node.get("start"),
            "seconds": node.get("seconds"),
        }
        if node.get("attrs"):
            line["attrs"] = node["attrs"]
        yield line
        for child in node.get("children", ()):  # pre-order: parents first
            for grandchild in walk(child, depth + 1, node.get("name")):
                yield grandchild

    for tree in trees:
        for line in walk(tree, 0, None):
            yield line


def write_span_log(trees: List[Dict[str, Any]], path: str) -> int:
    """Write flattened span trees as JSONL; returns the line count."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for line in flatten_span_trees(trees):
            handle.write(json.dumps(line, sort_keys=True))
            handle.write("\n")
            count += 1
    return count
