"""Unified telemetry layer: metrics registry + span tracing (PR 8).

One :class:`Telemetry` object bundles the two observability surfaces
-- a :class:`~repro.telemetry.metrics.MetricsRegistry` and a
:class:`~repro.telemetry.tracer.SpanTracer` -- behind the small facade
the rest of the stack threads around: the kernel, tiered cache, store,
verdict daemon and campaign runner all accept one ``telemetry`` handle
and never touch globals.

Zero cost when off
------------------
The default everywhere is :data:`TELEMETRY_OFF`, a shared
:class:`NullTelemetry` whose spans and instruments are no-ops and
whose ``enabled`` flag is ``False`` -- hot paths guard their timing
code with ``if telemetry.enabled:`` so the uninstrumented run pays
one attribute check per *batch*, not per fault.  The bench suite
pins this down: instrumented serial Table 3 must stay within 5% of
the seed (``test_telemetry_overhead_guard``).

This package must stay dependency-free and must never import from
:mod:`repro.kernel` / :mod:`repro.store` at module level -- they
import us, and a cycle here would deadlock the package graph
(``repro.telemetry.report`` uses function-level imports for exactly
this reason).
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable, Dict, List, Optional

from .metrics import (
    DEFAULT_BOUNDS,
    MAX_SERIES_PER_METRIC,
    SNAPSHOT_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_total,
    merge_snapshots,
)
from .tracer import NULL_SPAN, Span, SpanTracer, flatten_span_trees, write_span_log

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NullTelemetry",
    "Span",
    "SpanTracer",
    "TELEMETRY_OFF",
    "Telemetry",
    "DEFAULT_BOUNDS",
    "MAX_SERIES_PER_METRIC",
    "SNAPSHOT_SCHEMA",
    "counter_total",
    "flatten_span_trees",
    "merge_snapshots",
    "write_snapshot",
    "write_span_log",
]


class Telemetry:
    """Live telemetry: a real registry plus a real tracer.

    ``clock`` (default :func:`time.monotonic`) feeds both span
    timings and the hot-path duration measurements, so a fake clock
    injected here makes every recorded timing exact in tests.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[SpanTracer] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self.clock = clock if clock is not None else time.monotonic
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else SpanTracer(clock=self.clock)

    # Registry pass-throughs ---------------------------------------------------

    def counter(self, name: str, **labels: Any) -> Counter:
        return self.registry.counter(name, **labels)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self.registry.gauge(name, **labels)

    def histogram(self, name: str, bounds: Any = None, **labels: Any) -> Histogram:
        return self.registry.histogram(name, bounds=bounds, **labels)

    def adopt(self, name: str, instrument: Any, **labels: Any) -> Any:
        return self.registry.adopt(name, instrument, **labels)

    def collector(self, name: str, sample: Callable[[], Any],
                  kind: str = "counter") -> None:
        self.registry.collector(name, sample, kind=kind)

    def snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()

    # Tracer pass-throughs -----------------------------------------------------

    def span(self, name: str, **attrs: Any) -> Any:
        return self.tracer.span(name, **attrs)

    def span_trees(self) -> List[Dict[str, Any]]:
        return self.tracer.span_trees()


class NullTelemetry:
    """The zero-cost default: every operation is a cheap no-op.

    Hot paths check ``telemetry.enabled`` before doing any timing
    work; everything else (``span``, ``counter``...) still *works* so
    call sites never need two code paths -- they just feed shared
    instruments that nobody reads.
    """

    enabled = False

    def __init__(self) -> None:
        self.clock = time.monotonic
        self._counter = Counter()
        self._gauge = Gauge()
        self._histogram = Histogram()

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._counter

    def gauge(self, name: str, **labels: Any) -> Gauge:
        return self._gauge

    def histogram(self, name: str, bounds: Any = None, **labels: Any) -> Histogram:
        return self._histogram

    def adopt(self, name: str, instrument: Any, **labels: Any) -> Any:
        return instrument

    def collector(self, name: str, sample: Callable[[], Any],
                  kind: str = "counter") -> None:
        pass

    def span(self, name: str, **attrs: Any) -> Any:
        return NULL_SPAN

    def span_trees(self) -> List[Dict[str, Any]]:
        return []

    def snapshot(self) -> Dict[str, Any]:
        return {"schema": SNAPSHOT_SCHEMA, "metrics": {}}


#: Shared process-wide null telemetry; the default handle everywhere.
TELEMETRY_OFF = NullTelemetry()


def write_snapshot(snapshot: Dict[str, Any], path: str) -> None:
    """Write one metrics snapshot as deterministic, diffable JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
