"""Trend tracking over telemetry artifacts: ``repro report``.

The registry gave every run a deterministic snapshot; the campaign
manifest and ``BENCH_kernel.json`` already were deterministic records.
This module is the read side: load any one of the three, render it as
a table (or ``--json``), and *diff* two of a kind so CI can gate on
trend -- coverage deltas per fault model, per-backend timing ratios,
store-population growth -- instead of only fixed-point guards.

Payload kinds are recognized structurally (no filename conventions):

* **metrics** -- a registry snapshot (``{"schema", "metrics"}``), from
  ``--metrics``, the daemon's ``metrics`` op, or a manifest's
  ``telemetry`` block;
* **manifest** -- a campaign manifest (``{"campaign", "totals"}``);
* **bench** -- a benchmark record (``{"benchmark", "workloads"}``).

Regression policy (``repro report diff A B --fail-on-regression T``):

* manifests: any result row whose coverage dropped by more than ``T``
  (absolute), any result row that vanished, or a growth in failed
  jobs is a regression.  Two manifests that are identical after
  :func:`~repro.store.campaign.normalized_manifest` can never regress.
* bench records: any shared ``seconds`` scenario whose B/A ratio
  exceeds ``1 + T`` is a regression (timings compare as ratios, not
  absolutes, so one threshold covers microsecond and minute
  workloads).
* metrics snapshots diff informationally (counter deltas, histogram
  mean ratios); they carry no self-contained correctness contract to
  gate on.

Imports from :mod:`repro.store` happen inside functions: the telemetry
package is imported *by* the kernel and store, so a module-level import
here would cycle.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

__all__ = [
    "ReportError",
    "classify_payload",
    "load_payload",
    "report_json",
    "render_report",
    "diff_payloads",
    "render_diff",
]


class ReportError(ValueError):
    """The report input is unreadable or not a known payload kind."""


def classify_payload(data: Any) -> str:
    """``"metrics"`` / ``"manifest"`` / ``"bench"``, or raise."""
    if isinstance(data, dict):
        if "campaign" in data and "totals" in data:
            return "manifest"
        if "workloads" in data and "benchmark" in data:
            return "bench"
        if "metrics" in data and "schema" in data:
            return "metrics"
    raise ReportError(
        "unrecognized report payload: expected a metrics snapshot,"
        " a campaign manifest, or a BENCH_kernel.json record"
    )


def load_payload(path: Union[str, Path]) -> Tuple[str, Dict[str, Any]]:
    """Read and classify one report input file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as error:
        raise ReportError(f"cannot read {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise ReportError(
            f"{path} is not valid JSON: {error}"
        ) from error
    try:
        return classify_payload(data), data
    except ReportError as error:
        raise ReportError(f"{path}: {error}") from None


# -- single-payload rendering ---------------------------------------------------


def _format_labels(labels: Dict[str, Any]) -> str:
    return ",".join(f"{k}={v}" for k, v in sorted(labels.items())) or "-"


def _table(rows: List[Tuple[str, ...]], header: Tuple[str, ...]) -> str:
    widths = [
        max(len(str(row[col])) for row in [header, *rows])
        for col in range(len(header))
    ]
    lines = []
    for row in [header, *rows]:
        lines.append(
            "  ".join(
                str(cell).ljust(width)
                for cell, width in zip(row, widths)
            ).rstrip()
        )
    return "\n".join(lines)


def _metrics_rows(snapshot: Dict[str, Any]) -> List[Tuple[str, ...]]:
    rows: List[Tuple[str, ...]] = []
    for name, metric in sorted(snapshot.get("metrics", {}).items()):
        for entry in metric["series"]:
            if metric["type"] == "histogram":
                mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
                value = (
                    f"count={entry['count']}"
                    f" sum={entry['sum']:.6f}s mean={mean * 1e3:.3f}ms"
                )
            else:
                value = str(entry["value"])
            rows.append(
                (name, metric["type"], _format_labels(entry["labels"]),
                 value)
            )
    return rows


def report_json(kind: str, data: Dict[str, Any]) -> Dict[str, Any]:
    """The machine form of one rendered report (``--json``)."""
    if kind == "metrics":
        return {"kind": kind, "snapshot": data}
    if kind == "manifest":
        return {
            "kind": kind,
            "campaign": data.get("campaign"),
            "schema": data.get("schema"),
            "totals": data.get("totals"),
            "results": data.get("results"),
            "per_model": per_model_coverage(data),
        }
    return {
        "kind": kind,
        "benchmark": data.get("benchmark"),
        "schema": data.get("schema"),
        "workloads": {
            name: workload.get("seconds", {})
            for name, workload in sorted(data.get("workloads", {}).items())
        },
    }


def render_report(kind: str, data: Dict[str, Any]) -> str:
    """One payload as a human-readable table."""
    if kind == "metrics":
        rows = _metrics_rows(data)
        if not rows:
            return "metrics snapshot: empty registry"
        return _table(rows, ("metric", "type", "labels", "value"))
    if kind == "manifest":
        lines = []
        totals = data.get("totals", {})
        lines.append(
            f"campaign '{data.get('campaign')}' (manifest schema"
            f" {data.get('schema')}): {totals.get('jobs')} jobs,"
            f" {totals.get('failed')} failed,"
            f" {totals.get('verdicts_simulated')} simulated,"
            f" {totals.get('verdicts_from_store')} from store"
        )
        rows = [
            (
                row["test"], row["backend"], str(row["size"]),
                f"{row['detected']}/{row['fault_cases']}",
                f"{row['coverage'] * 100:.1f}%",
            )
            for row in data.get("results", ())
        ]
        if rows:
            lines.append(
                _table(rows, ("test", "backend", "size", "detected",
                              "coverage"))
            )
        per_model = per_model_coverage(data)
        if per_model:
            lines.append("coverage by fault model:")
            lines.append(_table(
                [
                    (model, f"{stats['detected']}/{stats['cases']}",
                     f"{stats['coverage'] * 100:.1f}%")
                    for model, stats in sorted(per_model.items())
                ],
                ("model", "detected", "coverage"),
            ))
        telemetry = (data.get("telemetry") or {}).get("metrics")
        if telemetry:
            lines.append("telemetry:")
            lines.append(_table(
                _metrics_rows(telemetry),
                ("metric", "type", "labels", "value"),
            ))
        return "\n".join(lines)
    lines = [
        f"benchmark '{data.get('benchmark')}' (schema"
        f" {data.get('schema')})"
    ]
    rows = []
    for name, workload in sorted(data.get("workloads", {}).items()):
        for scenario, seconds in sorted(
            (workload.get("seconds") or {}).items()
        ):
            rows.append((name, scenario, f"{seconds * 1e3:.2f} ms"))
    if rows:
        lines.append(_table(rows, ("workload", "scenario", "seconds")))
    return "\n".join(lines)


# -- per-model coverage ---------------------------------------------------------


def per_model_coverage(
    manifest: Dict[str, Any]
) -> Dict[str, Dict[str, Any]]:
    """Aggregate result rows into per-fault-model coverage.

    Result rows carry full-set coverage plus the missed case names;
    case names map back to their model through the fault library (the
    same instance derivation the jobs ran), aggregated across every
    result row.  Unknown models (a manifest from a newer library)
    yield an empty dict rather than failing the report.
    """
    from ..faults.faultlist import FaultList  # lazy: avoid import cycle

    models = [
        str(model)
        for model in (manifest.get("spec") or {}).get("faults", ())
    ]
    results = manifest.get("results") or []
    if not models or not results:
        return {}
    per_model: Dict[str, Dict[str, Any]] = {
        model: {"cases": 0, "detected": 0} for model in models
    }
    name_cache: Dict[Tuple[str, int], Dict[str, set]] = {}
    for row in results:
        size = row.get("size")
        key = ("|".join(models), size)
        names = name_cache.get(key)
        if names is None:
            try:
                names = {
                    model: {
                        case.name
                        for case in FaultList.from_names(model)
                        .instances(size)
                    }
                    for model in models
                }
            except Exception:  # unknown model: report without the split
                return {}
            name_cache[key] = names
        missed = set(row.get("missed") or ())
        for model in models:
            cases = names[model]
            per_model[model]["cases"] += len(cases)
            per_model[model]["detected"] += len(cases - (missed & cases))
    for stats in per_model.values():
        stats["coverage"] = (
            stats["detected"] / stats["cases"] if stats["cases"] else 0.0
        )
    return per_model


# -- diffing --------------------------------------------------------------------


def _result_key(row: Dict[str, Any]) -> Tuple[str, str, Any]:
    return (str(row.get("test")), str(row.get("backend")),
            row.get("size"))


def _diff_manifests(
    a: Dict[str, Any], b: Dict[str, Any], threshold: float
) -> Dict[str, Any]:
    from ..store.campaign import normalized_manifest  # lazy: cycle

    identical = normalized_manifest(a) == normalized_manifest(b)
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []

    results_a = {_result_key(r): r for r in a.get("results") or ()}
    results_b = {_result_key(r): r for r in b.get("results") or ()}
    for key in sorted(results_a, key=str):
        row_a = results_a[key]
        row_b = results_b.get(key)
        label = f"{key[0]} [{key[1]} @ size {key[2]}]"
        if row_b is None:
            regressions.append(f"result row vanished: {label}")
            rows.append({
                "kind": "coverage", "key": label,
                "a": row_a.get("coverage"), "b": None, "delta": None,
            })
            continue
        delta = (row_b.get("coverage") or 0.0) - (row_a.get("coverage")
                                                  or 0.0)
        rows.append({
            "kind": "coverage", "key": label,
            "a": row_a.get("coverage"), "b": row_b.get("coverage"),
            "delta": delta,
        })
        if delta < -threshold:
            regressions.append(
                f"coverage regression: {label}"
                f" {row_a.get('coverage'):.4f} -> "
                f"{row_b.get('coverage'):.4f}"
            )
    for key in sorted(set(results_b) - set(results_a), key=str):
        rows.append({
            "kind": "coverage",
            "key": f"{key[0]} [{key[1]} @ size {key[2]}]",
            "a": None, "b": results_b[key].get("coverage"),
            "delta": None,
        })

    model_a = per_model_coverage(a)
    model_b = per_model_coverage(b)
    for model in sorted(set(model_a) | set(model_b)):
        cov_a = model_a.get(model, {}).get("coverage")
        cov_b = model_b.get(model, {}).get("coverage")
        delta = (
            cov_b - cov_a
            if cov_a is not None and cov_b is not None else None
        )
        rows.append({
            "kind": "model_coverage", "key": model,
            "a": cov_a, "b": cov_b, "delta": delta,
        })
        if delta is not None and delta < -threshold:
            regressions.append(
                f"fault-model coverage regression: {model}"
                f" {cov_a:.4f} -> {cov_b:.4f}"
            )

    failed_a = (a.get("totals") or {}).get("failed", 0)
    failed_b = (b.get("totals") or {}).get("failed", 0)
    rows.append({
        "kind": "failed_jobs", "key": "totals.failed",
        "a": failed_a, "b": failed_b, "delta": failed_b - failed_a,
    })
    if failed_b > failed_a:
        regressions.append(
            f"failed jobs grew: {failed_a} -> {failed_b}"
        )

    # Per-backend timing ratios (informational: wall-clock is
    # machine-dependent; the bench records own the gated timings).
    def backend_seconds(manifest: Dict[str, Any]) -> Dict[str, float]:
        seconds: Dict[str, float] = {}
        for job in manifest.get("jobs") or ():
            if job.get("seconds") is not None:
                seconds[job["backend"]] = (
                    seconds.get(job["backend"], 0.0) + job["seconds"]
                )
        return seconds

    seconds_a = backend_seconds(a)
    seconds_b = backend_seconds(b)
    for backend in sorted(set(seconds_a) & set(seconds_b)):
        ratio = (
            seconds_b[backend] / seconds_a[backend]
            if seconds_a[backend] else math.inf
        )
        rows.append({
            "kind": "backend_seconds", "key": backend,
            "a": seconds_a[backend], "b": seconds_b[backend],
            "ratio": ratio,
        })

    # Store-population growth: how much dictionary each run built.
    def store_writes(manifest: Dict[str, Any]) -> int:
        return sum(
            (job.get("store") or {}).get("writes", 0)
            for job in manifest.get("jobs") or ()
        )

    rows.append({
        "kind": "store_writes", "key": "store.writes",
        "a": store_writes(a), "b": store_writes(b),
        "delta": store_writes(b) - store_writes(a),
    })

    if identical:
        regressions = []
    return {
        "kind": "manifest",
        "identical": identical,
        "rows": rows,
        "regressions": regressions,
    }


def _diff_bench(
    a: Dict[str, Any], b: Dict[str, Any], threshold: float
) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []
    regressions: List[str] = []
    workloads_a = a.get("workloads") or {}
    workloads_b = b.get("workloads") or {}
    for name in sorted(set(workloads_a) & set(workloads_b)):
        seconds_a = workloads_a[name].get("seconds") or {}
        seconds_b = workloads_b[name].get("seconds") or {}
        for scenario in sorted(set(seconds_a) & set(seconds_b)):
            ratio = (
                seconds_b[scenario] / seconds_a[scenario]
                if seconds_a[scenario] else math.inf
            )
            rows.append({
                "kind": "seconds", "key": f"{name}/{scenario}",
                "a": seconds_a[scenario], "b": seconds_b[scenario],
                "ratio": ratio,
            })
            if ratio > 1.0 + threshold:
                regressions.append(
                    f"timing regression: {name}/{scenario}"
                    f" {seconds_a[scenario]:.6f}s -> "
                    f"{seconds_b[scenario]:.6f}s"
                    f" ({ratio:.2f}x)"
                )
    for name in sorted(set(workloads_a) - set(workloads_b)):
        rows.append({
            "kind": "workload", "key": name, "a": "present", "b": None,
        })
    identical = rows and all(
        row.get("ratio") == 1.0 for row in rows
        if row["kind"] == "seconds"
    ) or False
    return {
        "kind": "bench",
        "identical": bool(identical),
        "rows": rows,
        "regressions": regressions,
    }


def _diff_metrics(
    a: Dict[str, Any], b: Dict[str, Any]
) -> Dict[str, Any]:
    rows: List[Dict[str, Any]] = []

    def series_map(snapshot: Dict[str, Any]) -> Dict[Tuple[str, str],
                                                     Dict[str, Any]]:
        flat = {}
        for name, metric in (snapshot.get("metrics") or {}).items():
            for entry in metric["series"]:
                flat[(name, _format_labels(entry["labels"]))] = (
                    metric["type"], entry
                )
        return flat

    flat_a = series_map(a)
    flat_b = series_map(b)
    for key in sorted(set(flat_a) | set(flat_b)):
        name, labels = key
        kind_a, entry_a = flat_a.get(key, (None, None))
        kind_b, entry_b = flat_b.get(key, (None, None))
        kind = kind_a or kind_b
        if kind == "histogram":
            def mean(entry: Optional[Dict[str, Any]]) -> Optional[float]:
                if entry is None or not entry.get("count"):
                    return None
                return entry["sum"] / entry["count"]

            rows.append({
                "kind": "histogram_mean",
                "key": f"{name}{{{labels}}}",
                "a": mean(entry_a), "b": mean(entry_b),
            })
        else:
            value_a = entry_a.get("value") if entry_a else None
            value_b = entry_b.get("value") if entry_b else None
            delta = (
                value_b - value_a
                if value_a is not None and value_b is not None else None
            )
            rows.append({
                "kind": kind, "key": f"{name}{{{labels}}}",
                "a": value_a, "b": value_b, "delta": delta,
            })
    return {
        "kind": "metrics",
        "identical": flat_a == flat_b,
        "rows": rows,
        "regressions": [],
    }


def diff_payloads(
    kind_a: str,
    a: Dict[str, Any],
    kind_b: str,
    b: Dict[str, Any],
    threshold: float = 0.0,
) -> Dict[str, Any]:
    """Compare two same-kind payloads; see the module docstring for
    what counts as a regression under ``threshold``."""
    if kind_a != kind_b:
        raise ReportError(
            f"cannot diff a {kind_a} payload against a {kind_b} payload"
        )
    if kind_a == "manifest":
        return _diff_manifests(a, b, threshold)
    if kind_a == "bench":
        return _diff_bench(a, b, threshold)
    return _diff_metrics(a, b)


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def render_diff(diff: Dict[str, Any]) -> str:
    """The human-readable form of one :func:`diff_payloads` result."""
    lines = [
        f"{diff['kind']} diff:"
        f" {'identical' if diff['identical'] else 'changed'}"
        f" ({len(diff['regressions'])} regression(s))"
    ]
    rows = [
        (
            row["kind"], row["key"], _format_value(row.get("a")),
            _format_value(row.get("b")),
            _format_value(row.get("delta", row.get("ratio"))),
        )
        for row in diff["rows"]
    ]
    if rows:
        lines.append(_table(rows, ("kind", "key", "a", "b",
                                   "delta/ratio")))
    for regression in diff["regressions"]:
        lines.append(f"REGRESSION: {regression}")
    return "\n".join(lines)
