"""Catalog of every ``repro.*`` telemetry series name (PR 10).

One declaration per series the stack may ever register.  The catalog
exists so that a typo'd metric name -- ``repro.sevice.requests`` --
cannot silently create a parallel series nobody reads: the
``metric-catalog`` lint rule (:mod:`repro.devtools.lint.rules.metric_names`)
checks that every metric-name literal in ``src/`` resolves against
this mapping, and a runtime cross-check test asserts that every series
a fully instrumented Table 3 campaign registers is declared here.

Keep this file boring on purpose: a flat mapping from series name to a
one-line description, no imports from the rest of the package.  Adding
a new instrument means adding a line here first -- the lint fails the
build otherwise, which is exactly the point.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

#: Every series name the stack registers, with a one-line description.
CATALOG: Dict[str, str] = {
    # -- kernel LRU tier (adopted KernelStats counters) ----------------------
    "repro.kernel.cache.hits": "in-memory LRU lookups answered locally",
    "repro.kernel.cache.misses": "in-memory LRU lookups that fell through",
    "repro.kernel.cache.evictions": "entries dropped by the LRU bound",
    "repro.kernel.cache.batches": "detect_batch calls that reached a backend",
    "repro.kernel.cache.stores": "verdicts written into the LRU tier",
    # -- simulation backends --------------------------------------------------
    "repro.backend.served": "verdicts computed, by backend and strategy",
    "repro.backend.detect.seconds": "backend batch latency histogram",
    "repro.backend.chunks": "tiled-backend fork-pool chunks simulated",
    # -- persistent store (file or service tier) ------------------------------
    "repro.store.hits": "store lookups answered from SQLite/service",
    "repro.store.misses": "store lookups that missed",
    "repro.store.writes": "verdict rows written through to the store",
    "repro.store.skipped_writes": "writes skipped (readonly/degraded store)",
    "repro.store.read_through.seconds": "tiered-cache store read latency",
    "repro.store.write_through.seconds": "tiered-cache store write latency",
    "repro.store.checkpoint.seconds": "WAL checkpoint latency, by mode",
    # -- verdict-service daemon ----------------------------------------------
    "repro.service.requests": "requests dispatched, by op",
    "repro.service.request.seconds": "request service-time histogram, by op",
    "repro.service.rejected": "connections refused, by reason",
    "repro.service.reaped_idle": "connections closed by the idle reaper",
    "repro.service.checkpoints": "daemon-triggered WAL checkpoints",
    "repro.service.errors": "loop/dispatch failures survived",
    "repro.service.rejected_full": "accepts refused at max_clients",
    "repro.service.quota_denied": "requests denied by tenant quota",
    "repro.service.connections": "currently connected clients (gauge)",
    "repro.service.hot_lru.hits": "daemon hot-LRU lookups answered",
    "repro.service.hot_lru.misses": "daemon hot-LRU lookups that missed",
    "repro.service.hot_lru.evictions": "daemon hot-LRU entries evicted",
    "repro.service.hot_lru.entries": "daemon hot-LRU population (gauge)",
    "repro.service.tenant.requests": "requests served, by tenant",
}

#: The declared names as a set -- what the lint rule and the runtime
#: cross-check test actually consult.
METRIC_SERIES: FrozenSet[str] = frozenset(CATALOG)


def is_declared(name: str) -> bool:
    """True when ``name`` is a catalogued series name."""
    return name in METRIC_SERIES


def declared_with_prefix(prefix: str) -> FrozenSet[str]:
    """Catalogued names starting with ``prefix`` (for f-string literals
    like ``f"repro.kernel.cache.{field}"`` the lint can only see the
    static prefix)."""
    return frozenset(name for name in METRIC_SERIES if name.startswith(prefix))
