"""Dependency-free metrics registry: counters, gauges, histograms.

Every tier of the stack grew its own ad-hoc counters over the PRs --
``KernelStats``, ``ExecutionBackend.served``, the store's
``StoreStats``, the verdict daemon's per-client ledger -- with
``describe_stats()`` free text as the only cross-tier view.  This
module is the uniform machine-readable surface underneath all of them:
a :class:`MetricsRegistry` holds named *instruments* (one per
``(name, labels)`` series) and renders one deterministic
:meth:`~MetricsRegistry.snapshot` dict that ``--metrics``, the verdict
service's ``metrics`` op and ``repro report`` all share.

Design rules
------------
* **Dependency-free and cheap.**  An instrument is a ``__slots__``
  object holding ints/floats; incrementing one costs the same as the
  dataclass fields it replaced.  Nothing here imports anything from
  :mod:`repro` -- the kernel and store import *us*.
* **Deterministic content.**  Only metric *values* vary between runs:
  metric names, label key sets and series ordering are stable
  (series sort by their label items), histogram bucket bounds are
  fixed at registration, and :meth:`snapshot` output round-trips
  through ``json.dumps(..., sort_keys=True)`` byte-stably.  This is
  what makes two snapshots diffable by ``repro report diff``.
* **Bounded cardinality.**  Labels are free-form, so a bug (or a
  hostile label source) could mint unbounded series.  Beyond
  :data:`MAX_SERIES_PER_METRIC` distinct label sets per metric name,
  new series collapse into one ``{"overflow": "true"}`` series
  instead of growing the registry without limit.
* **Two registration styles.**  ``counter()/gauge()/histogram()``
  create registry-owned instruments; :meth:`~MetricsRegistry.adopt`
  registers an instrument another object already owns (how
  ``KernelStats``' counters become the ``repro.kernel.cache.*``
  series without double accounting); :meth:`~MetricsRegistry.collector`
  registers a callback sampled at snapshot time (how dynamic sources
  like a backend's ``served`` dict join without per-event hooks).

Thread safety: series creation and snapshots are lock-protected;
*increments* are deliberately not (the hot paths are single-threaded
per kernel, and the verdict daemon serializes its updates under its
own state lock).
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

#: Generation of the snapshot payload layout.
SNAPSHOT_SCHEMA = 1

#: Fixed default histogram bucket bounds (seconds): 100 microseconds
#: to 10 seconds, the dynamic range between one packed march step and
#: one slow cold campaign job.  Values above the last bound land in
#: the overflow bucket.  Fixed and shared so any two snapshots of the
#: same metric are bucket-compatible and therefore mergeable/diffable.
DEFAULT_BOUNDS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Series-per-metric cardinality cap (see the module docstring).
MAX_SERIES_PER_METRIC = 64

#: The label set runaway series collapse into beyond the cap.
OVERFLOW_LABELS: Tuple[Tuple[str, str], ...] = (("overflow", "true"),)

LabelItems = Tuple[Tuple[str, str], ...]


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    """Canonical, hashable, deterministically ordered label identity."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotonically growing count (hot-path cheap: one slot)."""

    __slots__ = ("value",)

    def __init__(self, value: int = 0) -> None:
        self.value = value

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Gauge:
    """A point-in-time level (last write wins)."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0) -> None:
        self.value = value

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def sample(self) -> Dict[str, Any]:
        return {"value": self.value}


class Histogram:
    """A distribution over fixed, deterministic bucket bounds.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final
    extra bucket counts the overflow above the last bound.  Bounds are
    frozen at construction so every snapshot of one metric is
    bucket-compatible with every other.
    """

    __slots__ = ("bounds", "buckets", "count", "total")

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        bounds = tuple(bounds) if bounds is not None else DEFAULT_BOUNDS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram bounds must be non-empty and ascending,"
                f" got {bounds!r}"
            )
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        # bisect_left: a value exactly on a bound belongs to that
        # bound's bucket (inclusive upper bounds, le-style).
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def sample(self) -> Dict[str, Any]:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": self.total,
        }


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Named, labeled instruments with one deterministic snapshot.

    >>> registry = MetricsRegistry()
    >>> registry.counter("requests", op="ping").inc()
    >>> registry.snapshot()["metrics"]["requests"]["series"]
    [{'labels': {'op': 'ping'}, 'value': 1}]
    """

    def __init__(self, max_series: int = MAX_SERIES_PER_METRIC) -> None:
        self.max_series = max_series
        #: name -> {"kind": str, "series": {label items -> instrument}}
        self._metrics: Dict[str, Dict[str, Any]] = {}
        #: name -> (kind, callback) sampled at snapshot time.
        self._collectors: Dict[
            str, Tuple[str, Callable[[], Iterable[Tuple[Dict[str, Any],
                                                        Any]]]]
        ] = {}
        self._lock = threading.Lock()

    # -- registration -----------------------------------------------------------

    def _series(
        self, kind: str, name: str, labels: Dict[str, Any],
        factory: Callable[[], Any],
    ) -> Any:
        items = _label_items(labels)
        with self._lock:
            metric = self._metrics.setdefault(
                name, {"kind": kind, "series": {}}
            )
            if metric["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {metric['kind']},"
                    f" not a {kind}"
                )
            series = metric["series"]
            instrument = series.get(items)
            if instrument is None:
                if len(series) >= self.max_series \
                        and items not in series:
                    # Cardinality cap: collapse runaway label sets
                    # into one overflow series instead of growing
                    # without bound.
                    items = OVERFLOW_LABELS
                    instrument = series.get(items)
                    if instrument is not None:
                        return instrument
                instrument = factory()
                series[items] = instrument
        return instrument

    def counter(self, name: str, **labels: Any) -> Counter:
        """Get-or-create the counter series ``(name, labels)``."""
        return self._series("counter", name, labels, Counter)

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """Get-or-create the gauge series ``(name, labels)``."""
        return self._series("gauge", name, labels, Gauge)

    def histogram(
        self,
        name: str,
        bounds: Optional[Iterable[float]] = None,
        **labels: Any,
    ) -> Histogram:
        """Get-or-create the histogram series ``(name, labels)``.

        ``bounds`` only applies when the series is created; an
        existing series keeps its frozen bounds.
        """
        return self._series(
            "histogram", name, labels, lambda: Histogram(bounds)
        )

    def adopt(self, name: str, instrument: Any, **labels: Any) -> Any:
        """Register an externally-owned instrument as a series.

        This is how compatibility surfaces join the registry without
        double accounting: e.g. the kernel adopts the live
        ``KernelStats`` counters as ``repro.kernel.cache.*``, so the
        historical ``kernel.stats`` property and the snapshot read the
        same objects.  Re-adopting a ``(name, labels)`` pair replaces
        the previous instrument.
        """
        for kind, cls in _KINDS.items():
            if isinstance(instrument, cls):
                break
        else:
            raise TypeError(
                f"cannot adopt {type(instrument).__name__}:"
                " not a Counter/Gauge/Histogram"
            )
        items = _label_items(labels)
        with self._lock:
            metric = self._metrics.setdefault(
                name, {"kind": kind, "series": {}}
            )
            if metric["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {metric['kind']}, not a {kind}"
                )
            metric["series"][items] = instrument
        return instrument

    def collector(
        self,
        name: str,
        sample: Callable[[], Iterable[Tuple[Dict[str, Any], Any]]],
        kind: str = "counter",
    ) -> None:
        """Register a snapshot-time callback for dynamic series.

        ``sample()`` returns ``(labels dict, value)`` pairs; they are
        rendered into the snapshot as if they were owned instruments.
        One callback per name (re-registration replaces); use it for
        sources whose label sets appear as the run unfolds (a
        backend's ``served`` strategies) or that another object
        already counts (``StoreStats``).
        """
        if kind not in ("counter", "gauge"):
            raise ValueError(
                f"collectors sample scalar series, not {kind!r}"
            )
        with self._lock:
            owned = self._metrics.get(name)
            if owned is not None and owned["kind"] != kind:
                raise ValueError(
                    f"metric {name!r} is a {owned['kind']}, not a {kind}"
                )
            self._collectors[name] = (kind, sample)

    # -- read side --------------------------------------------------------------

    def series(self, name: str) -> List[Dict[str, Any]]:
        """The snapshot-form series list of one metric (empty when
        the metric does not exist yet)."""
        return (
            self.snapshot()["metrics"]
            .get(name, {})
            .get("series", [])
        )

    def snapshot(self) -> Dict[str, Any]:
        """One deterministic dict of everything the registry holds.

        Key sets and orderings are stable across runs (metric names
        and label items sort lexicographically); only the values vary.
        The payload is pure JSON-native data, safe to ``json.dumps``
        with ``sort_keys=True`` and diff.
        """
        with self._lock:
            metrics: Dict[str, Any] = {}
            for name, metric in self._metrics.items():
                rows = {
                    items: instrument.sample()
                    for items, instrument in metric["series"].items()
                }
                metrics[name] = {"kind": metric["kind"], "rows": rows}
            collectors = dict(self._collectors)
        for name, (kind, sample) in collectors.items():
            rows = metrics.setdefault(
                name, {"kind": kind, "rows": {}}
            )["rows"]
            for labels, value in sample():
                rows[_label_items(labels)] = {"value": value}
        return {
            "schema": SNAPSHOT_SCHEMA,
            "metrics": {
                name: {
                    "type": metric["kind"],
                    "series": [
                        {"labels": dict(items), **metric["rows"][items]}
                        for items in sorted(metric["rows"])
                    ],
                }
                for name, metric in sorted(metrics.items())
            },
        }

    def clear(self) -> None:
        """Drop every series and collector (tests, mostly)."""
        with self._lock:
            self._metrics.clear()
            self._collectors.clear()


def counter_total(snapshot: Dict[str, Any], name: str) -> int:
    """Sum of a counter metric's series values in a snapshot."""
    metric = snapshot.get("metrics", {}).get(name, {})
    return sum(row.get("value", 0) for row in metric.get("series", ()))


def merge_snapshots(
    snapshots: Iterable[Dict[str, Any]]
) -> Dict[str, Any]:
    """Fold many snapshots into one (campaign jobs -> campaign total).

    Counters and histograms add (same-bounds histograms add bucket by
    bucket; mismatched bounds refuse loudly rather than blend apples
    and oranges); gauges keep the maximum level seen, which is the
    useful aggregate for per-job levels like pool sizes.  Series
    ordering in the result follows the same deterministic rules as
    :meth:`MetricsRegistry.snapshot`.
    """
    merged: Dict[str, Dict[str, Any]] = {}
    kinds: Dict[str, str] = {}
    for snapshot in snapshots:
        for name, metric in snapshot.get("metrics", {}).items():
            kind = metric["type"]
            if kinds.setdefault(name, kind) != kind:
                raise ValueError(
                    f"cannot merge metric {name!r}: kind"
                    f" {kind!r} vs {kinds[name]!r}"
                )
            rows = merged.setdefault(name, {})
            for entry in metric["series"]:
                items = _label_items(entry["labels"])
                current = rows.get(items)
                if current is None:
                    rows[items] = {
                        k: (list(v) if isinstance(v, list) else v)
                        for k, v in entry.items() if k != "labels"
                    }
                    continue
                if kind == "counter":
                    current["value"] += entry["value"]
                elif kind == "gauge":
                    current["value"] = max(
                        current["value"], entry["value"]
                    )
                else:
                    if current["bounds"] != entry["bounds"]:
                        raise ValueError(
                            f"cannot merge histogram {name!r}:"
                            " bucket bounds differ"
                        )
                    current["count"] += entry["count"]
                    current["sum"] += entry["sum"]
                    current["buckets"] = [
                        a + b for a, b in zip(
                            current["buckets"], entry["buckets"]
                        )
                    ]
    return {
        "schema": SNAPSHOT_SCHEMA,
        "metrics": {
            name: {
                "type": kinds[name],
                "series": [
                    {"labels": dict(items), **rows[items]}
                    for items in sorted(rows)
                ],
            }
            for name, rows in sorted(merged.items())
        },
    }
