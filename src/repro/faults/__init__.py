"""Fault models: BFEs, primitives, equivalence classes, instances."""

from .bfe import BasicFaultEffect, BFEKind, delta_bfe, lambda_bfe
from .faultlist import BFEClass, FaultList, FaultModel
from .primitives import Effect, FaultPrimitive, Sensitization, parse_primitive
from .instances import FaultCase, case
from .generic import GenericPairFault, PairBFEInstance
from .linked import (
    LinkedIdempotentPair,
    LinkedInversionPair,
    linked_idempotent_cases,
    linked_inversion_cases,
)
from .library import (
    MODEL_REGISTRY,
    AddressDecoderFault,
    CouplingIdempotentFault,
    CouplingInversionFault,
    CouplingStateFault,
    DataRetentionFault,
    DeceptiveReadDisturbFault,
    IncorrectReadFault,
    ReadDisturbFault,
    StuckAtFault,
    StuckOpenFault,
    TransitionFault,
    UserDefinedFault,
    WriteDisturbFault,
)

__all__ = [
    "LinkedIdempotentPair",
    "LinkedInversionPair",
    "linked_idempotent_cases",
    "linked_inversion_cases",
    "GenericPairFault",
    "PairBFEInstance",
    "BasicFaultEffect",
    "BFEKind",
    "delta_bfe",
    "lambda_bfe",
    "BFEClass",
    "FaultList",
    "FaultModel",
    "Effect",
    "FaultPrimitive",
    "Sensitization",
    "parse_primitive",
    "FaultCase",
    "case",
    "MODEL_REGISTRY",
    "AddressDecoderFault",
    "CouplingIdempotentFault",
    "CouplingInversionFault",
    "CouplingStateFault",
    "DataRetentionFault",
    "DeceptiveReadDisturbFault",
    "IncorrectReadFault",
    "ReadDisturbFault",
    "StuckAtFault",
    "StuckOpenFault",
    "TransitionFault",
    "UserDefinedFault",
    "WriteDisturbFault",
]
